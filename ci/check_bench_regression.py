#!/usr/bin/env python3
"""Bench regression guard for the CI bench-smoke and megafleet-smoke jobs.

Two modes, dispatched on the fresh file's "benchmark" field:

- fast grid (default): compares the fresh fast-grid timing
  (bench-out/BENCH_grid.json, written by `repro grid --fast --time`)
  against the committed baseline (BENCH_grid.json, key
  optimized.grid_fast_secs) and fails when the fresh run is more than 2x
  slower.

- megafleet: compares the fresh per-host phase costs
  (bench-out/BENCH_megafleet.json, written by
  `repro megafleet --time --out`) against the committed per_host_ns rows
  in BENCH_step.json for the same fleet size. The steady row guards the
  sharded bank's whole-fleet replay; the shard_churn row guards the
  partial-invalidation path (one dirty segment must not re-resolve the
  rest — a regression to full re-resolve shows up as ~10x, far past 2x).

Shared CI runners are noisy and the guarded quantities are small, so each
threshold never drops below an absolute floor.

Usage: check_bench_regression.py [fresh.json] [baseline.json]
"""

import json
import sys

# Below this many seconds a 2x ratio is indistinguishable from scheduler
# noise on a shared runner; the grid guard only engages above it.
NOISE_FLOOR_SECS = 0.25
# Same idea for the per-host megafleet rows: the steady replay is ~6
# ns/host, where 2x is still scheduler jitter. A regression back to the
# full resolve path costs 56+ ns/host and clears this floor with margin.
NOISE_FLOOR_NS_PER_HOST = 25.0
MAX_SLOWDOWN = 2.0


def check(label: str, fresh_val: float, base_val: float, floor: float, unit: str) -> bool:
    limit = max(MAX_SLOWDOWN * base_val, floor)
    print(f"{label}: fresh {fresh_val:.4f} {unit}, committed {base_val:.4f} {unit}, "
          f"allowed {limit:.4f} {unit} (max of {MAX_SLOWDOWN}x baseline and "
          f"{floor} {unit} floor)")
    if fresh_val > limit:
        print(f"REGRESSION: {label} at {fresh_val:.4f} {unit}, "
              f"{fresh_val / base_val:.1f}x the committed baseline")
        return False
    return True


def check_grid(fresh: dict, base_path: str) -> int:
    with open(base_path) as f:
        base = json.load(f)
    ok = check("fast grid total", float(fresh["total_secs"]),
               float(base["optimized"]["grid_fast_secs"]),
               NOISE_FLOOR_SECS, "s")
    if not ok:
        return 1
    print("ok: within the regression budget")
    return 0


def check_megafleet(fresh: dict, base_path: str) -> int:
    with open(base_path) as f:
        base = json.load(f)
    per_host = base["per_host_ns"]
    hosts = int(fresh["hosts"])
    ok = True
    # steady: the settled whole-fleet replay; shard_churn: one dirty
    # segment per iteration with every other segment on the replay path.
    for phase, row in [("steady", f"fast_forward_{hosts}_hosts"),
                       ("shard_churn", f"shard_churn_{hosts}_hosts")]:
        if phase not in fresh["phases"]:
            continue
        if row not in per_host:
            print(f"note: no committed {row} baseline in {base_path}; "
                  f"skipping {phase}")
            continue
        ok &= check(f"megafleet {phase} ({hosts} hosts)",
                    float(fresh["phases"][phase]["ns_per_host"]),
                    float(per_host[row]), NOISE_FLOOR_NS_PER_HOST, "ns/host")
    if not ok:
        return 1
    print("ok: within the regression budget")
    return 0


def main() -> int:
    fresh_path = sys.argv[1] if len(sys.argv) > 1 else "bench-out/BENCH_grid.json"
    with open(fresh_path) as f:
        fresh = json.load(f)

    if fresh.get("benchmark") == "megafleet":
        base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_step.json"
        return check_megafleet(fresh, base_path)
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_grid.json"
    return check_grid(fresh, base_path)


if __name__ == "__main__":
    sys.exit(main())
