#!/usr/bin/env python3
"""Bench regression guard for the CI bench-smoke job.

Compares the fresh fast-grid timing (bench-out/BENCH_grid.json, written by
`repro grid --fast --time`) against the committed baseline (BENCH_grid.json,
key optimized.grid_fast_secs) and fails when the fresh run is more than 2x
slower. Shared CI runners are noisy and the fast grid is only a few
milliseconds, so the threshold never drops below an absolute floor.

Usage: check_bench_regression.py [fresh.json] [baseline.json]
"""

import json
import sys

# Below this many seconds a 2x ratio is indistinguishable from scheduler
# noise on a shared runner; the guard only engages above it.
NOISE_FLOOR_SECS = 0.25
MAX_SLOWDOWN = 2.0


def main() -> int:
    fresh_path = sys.argv[1] if len(sys.argv) > 1 else "bench-out/BENCH_grid.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_grid.json"

    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    fresh_secs = float(fresh["total_secs"])
    base_secs = float(base["optimized"]["grid_fast_secs"])
    limit = max(MAX_SLOWDOWN * base_secs, NOISE_FLOOR_SECS)

    print(f"fresh fast-grid:    {fresh_secs:.4f} s  ({fresh_path})")
    print(f"committed baseline: {base_secs:.4f} s  ({base_path})")
    print(f"allowed:            {limit:.4f} s  (max of {MAX_SLOWDOWN}x baseline and "
          f"{NOISE_FLOOR_SECS}s noise floor)")

    if fresh_secs > limit:
        print(f"REGRESSION: fast grid took {fresh_secs:.4f} s, "
              f"{fresh_secs / base_secs:.1f}x the committed baseline")
        return 1
    print("ok: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
