#!/usr/bin/env python3
"""Bench regression guard for the CI bench-smoke, megafleet-smoke, and
serve-smoke jobs.

Three modes, dispatched on the fresh file's "benchmark" field:

- fast grid (default): compares the fresh fast-grid timing
  (bench-out/BENCH_grid.json, written by `repro grid --fast --time`)
  against the committed baseline (BENCH_grid.json, key
  optimized.grid_fast_secs) and fails when the fresh run is more than 2x
  slower.

- megafleet: compares the fresh per-host phase costs
  (bench-out/BENCH_megafleet.json, written by
  `repro megafleet --time --out`) against the committed per_host_ns rows
  in BENCH_step.json for the same fleet size. The steady row guards the
  sharded bank's whole-fleet replay; the shard_churn row guards the
  partial-invalidation path (one dirty segment must not re-resolve the
  rest — a regression to full re-resolve shows up as ~10x, far past 2x).

- serve: compares the fresh loadgen run (bench-out/BENCH_serve.json,
  written by `repro loadgen --out`) against the committed
  BENCH_serve.json. p99 latency is relative-guarded like the others;
  throughput and correctness are absolute gates — the daemon must sustain
  at least MIN_SERVE_RPS completed requests/s and report zero transport
  errors, whatever the baseline says.

Shared CI runners are noisy and the guarded quantities are small, so each
threshold never drops below an absolute floor.

Usage: check_bench_regression.py [fresh.json] [baseline.json]
"""

import json
import sys

# Below this many seconds a 2x ratio is indistinguishable from scheduler
# noise on a shared runner; the grid guard only engages above it.
NOISE_FLOOR_SECS = 0.25
# Same idea for the per-host megafleet rows: the steady replay is ~6
# ns/host, where 2x is still scheduler jitter. A regression back to the
# full resolve path costs 56+ ns/host and clears this floor with margin.
NOISE_FLOOR_NS_PER_HOST = 25.0
# Sub-25ms p99s on a loaded shared runner are mostly scheduler jitter;
# the serve guard only engages above this.
NOISE_FLOOR_P99_MS = 25.0
# Absolute throughput gate for the serving plane (completed = answered:
# 200s, 429s, and 503s all count; hangs and resets do not).
MIN_SERVE_RPS = 1000.0
MAX_SLOWDOWN = 2.0


def check(label: str, fresh_val: float, base_val: float, floor: float, unit: str) -> bool:
    limit = max(MAX_SLOWDOWN * base_val, floor)
    print(f"{label}: fresh {fresh_val:.4f} {unit}, committed {base_val:.4f} {unit}, "
          f"allowed {limit:.4f} {unit} (max of {MAX_SLOWDOWN}x baseline and "
          f"{floor} {unit} floor)")
    if fresh_val > limit:
        print(f"REGRESSION: {label} at {fresh_val:.4f} {unit}, "
              f"{fresh_val / base_val:.1f}x the committed baseline")
        return False
    return True


def check_grid(fresh: dict, base_path: str) -> int:
    with open(base_path) as f:
        base = json.load(f)
    ok = check("fast grid total", float(fresh["total_secs"]),
               float(base["optimized"]["grid_fast_secs"]),
               NOISE_FLOOR_SECS, "s")
    if not ok:
        return 1
    print("ok: within the regression budget")
    return 0


def check_megafleet(fresh: dict, base_path: str) -> int:
    with open(base_path) as f:
        base = json.load(f)
    per_host = base["per_host_ns"]
    hosts = int(fresh["hosts"])
    ok = True
    # steady: the settled whole-fleet replay; shard_churn: one dirty
    # segment per iteration with every other segment on the replay path.
    for phase, row in [("steady", f"fast_forward_{hosts}_hosts"),
                       ("shard_churn", f"shard_churn_{hosts}_hosts")]:
        if phase not in fresh["phases"]:
            continue
        if row not in per_host:
            print(f"note: no committed {row} baseline in {base_path}; "
                  f"skipping {phase}")
            continue
        ok &= check(f"megafleet {phase} ({hosts} hosts)",
                    float(fresh["phases"][phase]["ns_per_host"]),
                    float(per_host[row]), NOISE_FLOOR_NS_PER_HOST, "ns/host")
    if not ok:
        return 1
    print("ok: within the regression budget")
    return 0


def check_serve(fresh: dict, base_path: str) -> int:
    with open(base_path) as f:
        base = json.load(f)
    ok = check("serve submit p99", float(fresh["p99_ms"]),
               float(base["p99_ms"]), NOISE_FLOOR_P99_MS, "ms")

    rps = float(fresh["rps"])
    print(f"serve throughput: fresh {rps:.0f} req/s, required {MIN_SERVE_RPS:.0f} req/s")
    if rps < MIN_SERVE_RPS:
        print(f"REGRESSION: serve throughput {rps:.0f} req/s below the "
              f"{MIN_SERVE_RPS:.0f} req/s floor")
        ok = False

    errors = int(fresh["errors"])
    print(f"serve errors: {errors} (must be 0)")
    if errors != 0:
        print(f"REGRESSION: {errors} transport error(s) — requests went "
              "unanswered instead of being admitted or shed")
        ok = False

    if not ok:
        return 1
    print("ok: within the regression budget")
    return 0


def main() -> int:
    fresh_path = sys.argv[1] if len(sys.argv) > 1 else "bench-out/BENCH_grid.json"
    with open(fresh_path) as f:
        fresh = json.load(f)

    if fresh.get("benchmark") == "megafleet":
        base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_step.json"
        return check_megafleet(fresh, base_path)
    if fresh.get("benchmark") == "serve":
        base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_serve.json"
        return check_serve(fresh, base_path)
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_grid.json"
    return check_grid(fresh, base_path)


if __name__ == "__main__":
    sys.exit(main())
