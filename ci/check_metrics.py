#!/usr/bin/env python3
"""Observability liveness guard for the CI metrics job.

Reads one or more `repro --metrics-out` JSON snapshots and fails when any
of the named counters is zero or missing — a zero here means an
optimization path (steady-state fast-forward, settled-ops cache,
characterization/load memo) silently stopped engaging even though the
code still produces correct numbers.

Usage: check_metrics.py <snapshot.json> <counter>[,<counter>...]

Every comma-separated counter must be present and nonzero. Both integer
counters ("counters") and float counters ("float_counters", e.g.
facility.wasted_node_hours) are searched.

Absent and zero are distinct failures (mirroring the registry API, where
`Snapshot::counter` returns an Option): MISSING means the counter was
never registered — the instrumented code path no longer runs at all or
the counter was renamed — while ZERO means the path ran but the guarded
branch inside it never engaged.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    path, names = sys.argv[1], sys.argv[2].split(",")

    with open(path) as f:
        snap = json.load(f)
    counters = dict(snap.get("counters", {}))
    counters.update(snap.get("float_counters", {}))

    failed = False
    for name in names:
        value = counters.get(name)
        if value is None:
            print(f"{name:32s} {'—':>12}  MISSING (never registered)")
            failed = True
        elif value <= 0:
            print(f"{name:32s} {value:>12}  ZERO (path ran, never engaged)")
            failed = True
        else:
            print(f"{name:32s} {value:>12}  ok")

    if failed:
        print(f"FAIL: dead counter(s) in {path} — an optimization path "
              "stopped engaging")
        return 1
    print(f"ok: all {len(names)} counters live in {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
