//! Integration tests of the paper's headline claims, end to end: every
//! marker and takeaway from the evaluation section must hold on the
//! reproduced stack (at reduced scale for CI speed; `repro all` runs the
//! full scale).

use powerstack::core::PolicyKind;
use powerstack::experiments::grid::{EvaluationGrid, GridParams};
use powerstack::experiments::{BudgetLevel, MixKind, Testbed};

fn grid() -> EvaluationGrid {
    let tb = Testbed::new(500, 42);
    let params = GridParams {
        nodes_per_job: 12,
        iterations: 60,
        jitter_sigma: 0.01,
    };
    EvaluationGrid::run(&tb, params)
}

#[test]
fn headline_claims_hold() {
    let grid = grid();

    // ───────────────────────────────────────────────────────── Fig. 7 ──
    // Precharacterized exceeds the budget at min for (almost) every mix and
    // fits at max; budget-respecting policies never exceed 100%.
    let mut over_at_min = 0;
    for mix in MixKind::all() {
        if grid
            .cell(mix, BudgetLevel::Min, PolicyKind::Precharacterized)
            .pct_of_budget
            > 100.0
        {
            over_at_min += 1;
        }
        assert!(
            grid.cell(mix, BudgetLevel::Max, PolicyKind::Precharacterized)
                .pct_of_budget
                <= 101.0,
            "{mix}: Precharacterized must fit the max budget"
        );
    }
    assert!(
        over_at_min >= 5,
        "only {over_at_min}/6 mixes over budget at min"
    );

    for c in &grid.cells {
        if c.policy != PolicyKind::Precharacterized {
            assert!(
                c.pct_of_budget <= 100.5,
                "{} {} {} exceeds budget: {:.1}%",
                c.mix,
                c.level,
                c.policy,
                c.pct_of_budget
            );
        }
    }

    // Marker (b): at the ideal budget, MixedAdaptive utilizes more of the
    // budget than the siloed JobAdaptive (which strands power in low-power
    // jobs' silos) for mixes with cross-job imbalance in needs.
    let wasteful_mixed = grid
        .cell(
            MixKind::WastefulPower,
            BudgetLevel::Ideal,
            PolicyKind::MixedAdaptive,
        )
        .pct_of_budget;
    let wasteful_job = grid
        .cell(
            MixKind::WastefulPower,
            BudgetLevel::Ideal,
            PolicyKind::JobAdaptive,
        )
        .pct_of_budget;
    assert!(
        wasteful_mixed > wasteful_job + 1.0,
        "marker (b): MixedAdaptive {wasteful_mixed:.1}% should out-utilize JobAdaptive {wasteful_job:.1}%"
    );

    // Marker (a): at the max budget, application-aware policies draw *less*
    // power than the static baseline (the runtime trims to needed power).
    for mix in [
        MixKind::WastefulPower,
        MixKind::HighImbalance,
        MixKind::LowPower,
    ] {
        let static_pct = grid
            .cell(mix, BudgetLevel::Max, PolicyKind::StaticCaps)
            .pct_of_budget;
        let mixed_pct = grid
            .cell(mix, BudgetLevel::Max, PolicyKind::MixedAdaptive)
            .pct_of_budget;
        assert!(
            mixed_pct < static_pct - 1.0,
            "marker (a) on {mix}: {mixed_pct:.1}% should be below {static_pct:.1}%"
        );
    }

    // ───────────────────────────────────────────────────────── Fig. 8 ──
    let savings = |mix, level, policy| {
        grid.cell(mix, level, policy)
            .savings
            .expect("dynamic policies carry savings rows")
    };

    // Takeaway 1+2: energy savings grow with the budget for the
    // application-aware policies on slack-heavy mixes.
    for mix in [
        MixKind::WastefulPower,
        MixKind::LowPower,
        MixKind::HighImbalance,
    ] {
        let e_min = savings(mix, BudgetLevel::Min, PolicyKind::MixedAdaptive).energy_pct;
        let e_max = savings(mix, BudgetLevel::Max, PolicyKind::MixedAdaptive).energy_pct;
        assert!(
            e_max > e_min + 2.0,
            "{mix}: energy savings should grow with budget ({e_min:.1}% → {e_max:.1}%)"
        );
        assert!(
            e_max > 5.0,
            "{mix}: expect substantial savings at max, got {e_max:.1}%"
        );
    }

    // Marker (d): large energy savings at the max budget for WastefulPower.
    let d = savings(
        MixKind::WastefulPower,
        BudgetLevel::Max,
        PolicyKind::MixedAdaptive,
    );
    assert!(
        d.energy_pct > 5.0,
        "marker (d): WastefulPower @ max energy savings {:.1}%",
        d.energy_pct
    );

    // Marker (c): MinimizeWaste outperforms JobAdaptive in time savings on
    // NeedUsedPower at the ideal budget (the mix where observed power data
    // is as good as performance-aware data, and cross-job sharing wins).
    let mw = savings(
        MixKind::NeedUsedPower,
        BudgetLevel::Ideal,
        PolicyKind::MinimizeWaste,
    );
    let ja = savings(
        MixKind::NeedUsedPower,
        BudgetLevel::Ideal,
        PolicyKind::JobAdaptive,
    );
    assert!(
        mw.time_pct > ja.time_pct + 0.5,
        "marker (c): MinimizeWaste {:.1}% vs JobAdaptive {:.1}%",
        mw.time_pct,
        ja.time_pct
    );

    // Takeaway 4: NeedUsedPower offers no energy-saving opportunity — every
    // watt consumed is needed.
    for policy in PolicyKind::dynamic() {
        for level in BudgetLevel::all() {
            let s = savings(MixKind::NeedUsedPower, level, policy);
            assert!(
                s.energy_pct < 3.0,
                "NeedUsedPower {level} {policy}: unexpected energy savings {:.1}%",
                s.energy_pct
            );
        }
    }

    // JobAdaptive ≈ MixedAdaptive at the min and max levels (§VI-B).
    for mix in MixKind::all() {
        for level in [BudgetLevel::Min, BudgetLevel::Max] {
            let ja = savings(mix, level, PolicyKind::JobAdaptive).time_pct;
            let ma = savings(mix, level, PolicyKind::MixedAdaptive).time_pct;
            assert!(
                (ja - ma).abs() < 2.0,
                "{mix} {level}: JobAdaptive {ja:.1}% vs MixedAdaptive {ma:.1}% should be similar"
            );
        }
    }

    // The proposed policy never meaningfully loses to the baseline on time.
    for c in &grid.cells {
        if c.policy == PolicyKind::MixedAdaptive {
            let s = c.savings.unwrap();
            assert!(
                s.time_pct > -1.5,
                "{} {}: MixedAdaptive lost {:.1}% time to StaticCaps",
                c.mix,
                c.level,
                s.time_pct
            );
        }
    }

    // Headline: somewhere in the grid, MixedAdaptive achieves substantial
    // time savings and substantial energy savings (the paper reports up to
    // 7% and 11% respectively).
    let best_time = grid
        .cells
        .iter()
        .filter(|c| c.policy == PolicyKind::MixedAdaptive)
        .map(|c| c.savings.unwrap().time_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_energy = grid
        .cells
        .iter()
        .filter(|c| c.policy == PolicyKind::MixedAdaptive)
        .map(|c| c.savings.unwrap().energy_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_time > 3.0,
        "best MixedAdaptive time savings {best_time:.1}%"
    );
    assert!(
        best_energy > 7.0,
        "best MixedAdaptive energy savings {best_energy:.1}%"
    );
}
