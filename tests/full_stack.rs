//! Cross-crate integration: the full RM + runtime + hardware stack against
//! the analytic evaluator, the measured-vs-analytic characterization, and
//! the figure/table generators.

use powerstack::core::{
    evaluate_mix, policies, Coordinator, CoordinatorMode, JobChar, JobSetup, PolicyCtx, PolicyKind,
};
use powerstack::experiments::{figures, tables, Testbed};
use powerstack::kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use powerstack::simhw::{quartz_spec, Cluster, VariationProfile, Watts};

fn mix() -> Vec<(String, KernelConfig, usize)> {
    vec![
        (
            "wasteful".into(),
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX),
            3,
        ),
        ("hungry".into(), KernelConfig::balanced_ymm(16.0), 3),
        (
            "streaming".into(),
            KernelConfig::new(
                0.25,
                VectorWidth::Ymm,
                WaitingFraction::P25,
                Imbalance::ThreeX,
            ),
            3,
        ),
    ]
}

fn cluster() -> Cluster {
    Cluster::builder(quartz_spec())
        .nodes(9)
        .variation(VariationProfile::quartz())
        .seed(13)
        .build()
        .unwrap()
}

/// The full simulation (RAPL filters, per-iteration stepping, RM admission)
/// must agree with the closed-form evaluator for every policy — the two
/// paths share models but not code paths.
#[test]
fn full_stack_matches_analytic_evaluator_for_every_policy() {
    let cluster = cluster();
    let coordinator = Coordinator::new(&cluster);
    let spec = cluster.model().spec();
    let budget = Watts(9.0 * 190.0);
    let ctx = PolicyCtx {
        system_budget: budget,
        min_node: spec.min_rapl_per_node(),
        tdp_node: spec.tdp_per_node(),
    };

    let eps = cluster.efficiency_factors();
    let setups: Vec<JobSetup> = mix()
        .iter()
        .enumerate()
        .map(|(j, (_, config, n))| JobSetup {
            config: *config,
            host_eps: eps[j * n..(j + 1) * n].to_vec(),
        })
        .collect();
    let chars: Vec<JobChar> = setups
        .iter()
        .map(|s| JobChar::analytic(s.config, cluster.model(), &s.host_eps))
        .collect();

    for policy in [
        PolicyKind::StaticCaps,
        PolicyKind::MinimizeWaste,
        PolicyKind::Precharacterized,
    ] {
        let run = coordinator.run_mix(
            &mix(),
            policies::by_kind(policy).as_ref(),
            budget,
            60,
            CoordinatorMode::Emulated,
        );
        let alloc = policies::by_kind(policy).allocate(&ctx, &chars);
        let eval = evaluate_mix(cluster.model(), &setups, &alloc, 60, 0.0, 0);

        let t_full = run.mean_elapsed();
        let t_fast = eval.mean_elapsed().value();
        assert!(
            (t_full - t_fast).abs() / t_fast < 0.05,
            "{policy}: full {t_full:.2}s vs analytic {t_fast:.2}s"
        );
        let e_full = run.total_energy();
        let e_fast = eval.total_energy().value();
        assert!(
            (e_full - e_fast).abs() / e_fast < 0.05,
            "{policy}: full {e_full:.0}J vs analytic {e_fast:.0}J"
        );
    }
}

/// Measured characterization (running the monitor and balancer agents) must
/// agree with the analytic closed forms across the configuration space.
#[test]
fn measured_characterization_matches_analytic() {
    let model = powerstack::simhw::PowerModel::new(quartz_spec()).unwrap();
    for config in [
        KernelConfig::balanced_ymm(4.0),
        KernelConfig::new(1.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX),
        KernelConfig::new(
            16.0,
            VectorWidth::Ymm,
            WaitingFraction::P75,
            Imbalance::ThreeX,
        ),
        KernelConfig::new(
            0.25,
            VectorWidth::Xmm,
            WaitingFraction::P25,
            Imbalance::TwoX,
        ),
    ] {
        let analytic = JobChar::analytic(config, &model, &[0.97, 1.03]);
        let measured = JobChar::measured(config, &model, &[0.97, 1.03], 150);
        for (a, m) in analytic.hosts.iter().zip(&measured.hosts) {
            assert!(
                (a.used.value() - m.used.value()).abs() < 6.0,
                "{}: used analytic {} vs measured {}",
                config.label(),
                a.used,
                m.used
            );
            assert!(
                (a.needed.value() - m.needed.value()).abs() < 14.0,
                "{}: needed analytic {} vs measured {}",
                config.label(),
                a.needed,
                m.needed
            );
        }
    }
}

/// The online feedback mode completes and does not waste energy relative to
/// the emulated (pre-characterized) mode.
#[test]
fn online_mode_is_no_worse_than_emulated() {
    let cluster = cluster();
    let coordinator = Coordinator::new(&cluster);
    let budget = Watts(9.0 * 210.0);
    let policy = policies::by_kind(PolicyKind::MixedAdaptive);
    let emulated = coordinator.run_mix(
        &mix(),
        policy.as_ref(),
        budget,
        40,
        CoordinatorMode::Emulated,
    );
    let online = coordinator.run_mix(&mix(), policy.as_ref(), budget, 40, CoordinatorMode::Online);
    assert!(online.total_energy() <= emulated.total_energy() * 1.03);
    assert!(online.mean_elapsed() <= emulated.mean_elapsed() * 1.03);
}

/// Every figure and table generator produces non-empty, well-formed output.
#[test]
fn all_artifacts_render() {
    let tb = Testbed::new(400, 7);
    let artifacts = vec![
        tables::table1(),
        tables::table2(),
        tables::table3(&tb, 10),
        figures::fig1(42),
        figures::fig2(),
        figures::fig3(),
        figures::fig4(),
        figures::fig5(),
        figures::fig6(&tb),
    ];
    for (i, a) in artifacts.iter().enumerate() {
        assert!(a.len() > 100, "artifact {i} suspiciously short:\n{a}");
        assert!(!a.contains("NaN"), "artifact {i} contains NaN:\n{a}");
    }
}
