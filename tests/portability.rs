//! Portability: §V-A1 claims the methodology ports to other architectures
//! through a machine-generic plugin layer. Every layer of this stack takes
//! a `MachineSpec`, so the same policies, agents, and evaluation must run
//! unchanged on a different part — verified here on a Skylake-SP-class
//! node description.

use powerstack::core::{evaluate_mix, policies, JobChar, JobSetup, PolicyCtx, PolicyKind};
use powerstack::kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use powerstack::runtime::{Agent, Controller, JobPlatform, PowerBalancerAgent};
use powerstack::simhw::machines::skylake_sp_spec;
use powerstack::simhw::{LoadModel, Node, NodeId, PowerModel, Watts};

fn config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX)
}

#[test]
fn kernel_model_ports_to_the_other_part() {
    let spec = skylake_sp_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let load = KernelLoad::new(config(), &spec);
    let used = load.used_power(&model, 1.0);
    let needed = load.needed_power(&model, 1.0);
    // The physical envelope of the new part.
    assert!(used <= spec.tdp_per_node());
    assert!(needed <= used);
    assert!(needed > model.static_power(1.0));
    // The PCU staging behaves the same way: a cap between needed and used
    // preserves the turbo lead.
    let cap = Watts((used.value() + needed.value()) / 2.0);
    let op = load.operating_point(&model, 1.0, cap);
    assert_eq!(op.lead, spec.f_turbo);
    assert!(op.power <= cap + Watts(1e-6));
}

#[test]
fn balancer_converges_on_the_other_part() {
    let spec = skylake_sp_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let nodes = vec![
        Node::new(NodeId(0), &model, 0.97).unwrap(),
        Node::new(NodeId(1), &model, 1.04).unwrap(),
    ];
    let mut platform = JobPlatform::new(model.clone(), nodes, config());
    let budget = spec.tdp_per_node() * 2.0;
    let mut agent = PowerBalancerAgent::new(budget);
    agent.init(&mut platform);
    let mut controller = Controller::new(platform, agent);
    let report = controller.run(120);
    // Harvested below uncapped draw, respecting the budget.
    let load = KernelLoad::new(config(), &spec);
    let used_total: f64 = [0.97, 1.04]
        .iter()
        .map(|&e| load.used_power(&model, e).value())
        .sum();
    assert!(report.avg_power().value() < used_total * 0.99);
    assert!(report.avg_power() <= budget);
}

#[test]
fn policies_keep_their_ordering_on_the_other_part() {
    let spec = skylake_sp_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let wasteful = KernelConfig::new(
        8.0,
        VectorWidth::Ymm,
        WaitingFraction::P75,
        Imbalance::ThreeX,
    );
    let hungry = KernelConfig::balanced_ymm(8.0);
    let setups = vec![JobSetup::uniform(wasteful, 5), JobSetup::uniform(hungry, 5)];
    let chars: Vec<JobChar> = setups
        .iter()
        .map(|s| JobChar::analytic(s.config, &model, &s.host_eps))
        .collect();
    // A budget between the wasteful job's needs and the hungry job's.
    let budget = (chars[0].total_needed() + chars[1].total_needed()) * 0.55;
    let ctx = PolicyCtx {
        system_budget: budget,
        min_node: spec.min_rapl_per_node(),
        tdp_node: spec.tdp_per_node(),
    };
    let eval = |kind: PolicyKind| {
        let policy = policies::by_kind(kind);
        let mut alloc = policy.allocate(&ctx, &chars);
        if policy.application_aware() {
            alloc = powerstack::core::apply_job_runtime(&alloc, &chars, &ctx);
        }
        evaluate_mix(&model, &setups, &alloc, 20, 0.0, 0)
    };
    let stat = eval(PolicyKind::StaticCaps);
    let mixed = eval(PolicyKind::MixedAdaptive);
    // The paper's central ordering survives the architecture change.
    assert!(
        mixed.mean_elapsed() <= stat.mean_elapsed(),
        "MixedAdaptive {} vs StaticCaps {} on Skylake",
        mixed.mean_elapsed(),
        stat.mean_elapsed()
    );
    assert!(mixed.total_energy() <= stat.total_energy() * 1.001);
}
