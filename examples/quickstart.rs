//! Quickstart: characterize two jobs, allocate a system power budget with
//! every policy, and compare what each policy decides.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use powerstack::core::{policies, JobChar, PolicyCtx, PolicyKind};
use powerstack::kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use powerstack::simhw::{quartz_spec, PowerModel, Watts};

fn main() {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).expect("quartz spec is valid");

    // Two four-node jobs with opposite personalities:
    //  - "wasteful": 75% of its ranks poll at the barrier — it *draws* far
    //    more power than it *needs*;
    //  - "hungry": balanced near-ridge compute — every watt buys time.
    let wasteful = KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX);
    let hungry = KernelConfig::balanced_ymm(8.0);
    let host_eps = [0.97, 1.0, 1.0, 1.04]; // manufacturing variation

    let jobs = vec![
        JobChar::analytic(wasteful, &model, &host_eps),
        JobChar::analytic(hungry, &model, &host_eps),
    ];
    println!("per-job characterization (4 hosts each):");
    for (name, job) in ["wasteful", "hungry"].iter().zip(&jobs) {
        println!(
            "  {name:>8}: used {:7.1}  needed {:7.1}  (gap {:5.1} W/job)",
            job.total_used(),
            job.total_needed(),
            (job.total_used() - job.total_needed()).value(),
        );
    }

    // A system budget of 200 W per node — above the wasteful job's needs,
    // below the hungry job's, so there is power worth moving.
    let ctx = PolicyCtx {
        system_budget: Watts(8.0 * 200.0),
        min_node: spec.min_rapl_per_node(),
        tdp_node: spec.tdp_per_node(),
    };
    println!("\nsystem budget: {} across 8 nodes\n", ctx.system_budget);

    println!(
        "{:<18} {:>14} {:>14} {:>10}",
        "policy", "wasteful job", "hungry job", "total"
    );
    for kind in PolicyKind::all() {
        let alloc = policies::by_kind(kind).allocate(&ctx, &jobs);
        println!(
            "{:<18} {:>12.1} {:>14.1} {:>10.1}",
            kind.to_string(),
            alloc.job_total(0).value(),
            alloc.job_total(1).value(),
            alloc.total().value(),
        );
    }

    println!(
        "\nNote how MixedAdaptive is the only policy that both respects the\n\
         budget and moves the wasteful job's surplus across the job boundary\n\
         to the power-bound job — the paper's central claim."
    );
}
