//! Record an execution trace of the power balancer (the GEOPM trace-file
//! analogue) and analyze its convergence, printing the per-iteration CSV a
//! plotting pipeline would consume.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use powerstack::kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use powerstack::runtime::{Agent, JobPlatform, PowerBalancerAgent, Tracer};
use powerstack::simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};

fn main() {
    let model = PowerModel::new(quartz_spec()).expect("valid spec");
    let nodes = vec![
        Node::new(NodeId(0), &model, 0.96).expect("valid eps"),
        Node::new(NodeId(1), &model, 1.00).expect("valid eps"),
        Node::new(NodeId(2), &model, 1.05).expect("valid eps"),
    ];
    let config = KernelConfig::new(
        8.0,
        VectorWidth::Ymm,
        WaitingFraction::P50,
        Imbalance::ThreeX,
    );
    let mut platform = JobPlatform::new(model, nodes, config);
    let mut agent = PowerBalancerAgent::new(Watts(3.0 * 240.0));
    agent.init(&mut platform);

    let mut tracer = Tracer::new();
    for _ in 0..60 {
        let out = platform.run_iteration();
        tracer.record(&out);
        agent.adjust(&mut platform, &out);
    }
    let trace = tracer.finish();

    println!("workload: {}\n", config.label());
    for host in 0..3 {
        let series = trace.host(host);
        let first = series.first().expect("non-empty trace");
        let last = series.last().expect("non-empty trace");
        let conv = trace
            .convergence_iteration(host, Watts(6.0))
            .map(|i| i.to_string())
            .unwrap_or_else(|| "—".into());
        println!(
            "host {host}: limit {:.0} → {:.0} W, power {:.0} → {:.0} W, converged at iteration {conv}",
            first.limit.value(),
            last.limit.value(),
            first.power.value(),
            last.power.value(),
        );
    }

    println!("\nfirst ten records of the trace CSV:");
    for line in trace.to_csv().lines().take(11) {
        println!("  {line}");
    }
}
