//! Execute the *native* arithmetic-intensity kernel — real FMA/load loops
//! with a spin barrier — sweeping the intensity knob, as a calibration of
//! the Fig. 2 design on whatever machine runs this example.
//!
//! ```text
//! cargo run --release --example native_kernel
//! ```

use powerstack::kernel::native::{run, NativeConfig};

fn main() {
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(2);
    println!("running the native kernel on {ranks} ranks\n");
    println!(
        "{:>12} {:>14} {:>12} {:>12}",
        "FMA/element", "intensity F/B", "GFLOP/s", "elapsed s"
    );

    for fma in [1usize, 2, 4, 8, 16, 32, 64] {
        let config = NativeConfig {
            ranks,
            elements_per_rank: 1 << 20,
            fma_per_element: fma,
            iterations: 5,
            critical_multiplier: 1,
        };
        let stats = run(&config);
        println!(
            "{:>12} {:>14.2} {:>12.2} {:>12.3}",
            fma,
            config.intensity(),
            stats.gflops,
            stats.elapsed_s
        );
    }

    // Demonstrate the imbalance knob: rank 0 carries 3x the work, so
    // everyone else polls at the barrier for two thirds of each iteration.
    let imbalanced = NativeConfig {
        ranks,
        elements_per_rank: 1 << 20,
        fma_per_element: 16,
        iterations: 5,
        critical_multiplier: 3,
    };
    let balanced = NativeConfig {
        critical_multiplier: 1,
        ..imbalanced
    };
    let t_bal = run(&balanced).elapsed_s;
    let t_imb = run(&imbalanced).elapsed_s;
    println!(
        "\nimbalance knob: balanced {t_bal:.3} s vs 3x-critical {t_imb:.3} s \
         (x{:.2} — the critical path dominates)",
        t_imb / t_bal
    );
}
