//! Run a full paper-style campaign on one workload mix: characterize, build
//! Table III budgets, evaluate every policy at every budget, and print the
//! savings table — the WastefulPower column of Fig. 8 in miniature.
//!
//! ```text
//! cargo run --release --example mix_campaign
//! ```

use powerstack::experiments::grid::{run_mix, GridParams};
use powerstack::experiments::{MixKind, Testbed};

fn main() {
    // Screen a 600-node cluster for hardware variation and keep the medium
    // frequency group, exactly like §V-A2.
    println!("screening 600 nodes for manufacturing variation…");
    let testbed = Testbed::new(600, 42);
    println!(
        "selected medium-frequency cluster: {} nodes (clusters: {:?})\n",
        testbed.capacity(),
        testbed.clusters.sizes
    );

    let params = GridParams {
        nodes_per_job: 20,
        iterations: 100,
        jitter_sigma: 0.01,
    };
    let cells = run_mix(&testbed, MixKind::WastefulPower, params);

    println!(
        "{:<22} {:>8} {:>10} {:>8} {:>9} {:>8}",
        "policy @ budget", "budget", "used", "time", "energy", "EDP"
    );
    for cell in &cells {
        let (time, energy, edp) = match cell.savings {
            Some(s) => (
                format!("{:+.1}%", s.time_pct),
                format!("{:+.1}%", s.energy_pct),
                format!("{:+.1}%", s.edp_pct),
            ),
            None => ("—".into(), "—".into(), "—".into()),
        };
        println!(
            "{:<22} {:>6.0} W {:>9.1}% {:>8} {:>9} {:>8}",
            format!("{} @ {}", cell.policy, cell.level),
            cell.budget.value(),
            cell.pct_of_budget,
            time,
            energy,
            edp
        );
    }

    println!(
        "\nsavings are relative to the StaticCaps baseline at the same budget;\n\
         the max-budget rows show the paper's marker-(d) effect: application\n\
         awareness converts surplus budget into energy savings."
    );
}
