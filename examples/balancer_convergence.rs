//! Watch the GEOPM-style power balancer converge, iteration by iteration.
//!
//! A two-node job with heavy barrier polling runs under a generous budget.
//! The balancer probes each node's limit downward while the critical path
//! holds the turbo ceiling, harvesting the polling slack — the Fig. 4 →
//! Fig. 5 gap — and settles into a small limit cycle around the workload's
//! needed power.
//!
//! ```text
//! cargo run --release --example balancer_convergence
//! ```

use powerstack::kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use powerstack::runtime::{Agent, JobPlatform, PowerBalancerAgent};
use powerstack::simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};

fn main() {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).expect("valid spec");
    let config = KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX);

    let load = KernelLoad::new(config, &spec);
    let used = load.used_power(&model, 1.0);
    let needed = load.needed_power(&model, 1.0);
    println!("workload: {}", config.label());
    println!("uncapped draw {used:.1}, needed for full speed {needed:.1}\n");

    let nodes = vec![
        Node::new(NodeId(0), &model, 0.97).expect("valid eps"),
        Node::new(NodeId(1), &model, 1.04).expect("valid eps"),
    ];
    let mut platform = JobPlatform::new(model, nodes, config);
    let budget = Watts(2.0 * 240.0);
    let mut agent = PowerBalancerAgent::new(budget);
    agent.init(&mut platform);

    println!(
        "{:>4}  {:>10} {:>10}  {:>10} {:>10}  {:>8}",
        "iter", "limit0", "limit1", "power0", "power1", "t_iter"
    );
    for iter in 0..60 {
        let out = platform.run_iteration();
        agent.adjust(&mut platform, &out);
        if iter % 5 == 0 {
            let t = agent.targets();
            println!(
                "{:>4}  {:>8.1} W {:>8.1} W  {:>8.1} W {:>8.1} W  {:>6.3} s",
                iter,
                t[0].value(),
                t[1].value(),
                out.host_power[0].value(),
                out.host_power[1].value(),
                out.elapsed.value(),
            );
        }
    }

    let final_total: Watts = agent.targets().iter().copied().sum();
    println!(
        "\nconverged near needed power ({needed:.0}/node): final targets total {final_total:.1}\n\
         pool of harvested (unspent) watts: {:.1}",
        agent.pool()
    );
}
