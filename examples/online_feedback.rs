//! The execution-time RM ⇄ runtime feedback loop the paper names as future
//! work, running end to end: the coordinator starts a mix through the
//! resource manager, each job executes under its own runtime controller,
//! and halfway through the run the RM re-characterizes the jobs from
//! *measured* power and re-allocates.
//!
//! ```text
//! cargo run --release --example online_feedback
//! ```

use powerstack::core::{Coordinator, CoordinatorMode, MixedAdaptive};
use powerstack::kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use powerstack::simhw::{quartz_spec, Cluster, VariationProfile, Watts};

fn main() {
    let cluster = Cluster::builder(quartz_spec())
        .nodes(8)
        .variation(VariationProfile::quartz())
        .seed(7)
        .build()
        .expect("cluster builds");
    let coordinator = Coordinator::new(&cluster).with_jitter(0.005, 11);

    let mix = vec![
        (
            "polling-heavy".to_string(),
            KernelConfig::new(
                8.0,
                VectorWidth::Ymm,
                WaitingFraction::P75,
                Imbalance::ThreeX,
            ),
            4,
        ),
        (
            "compute-bound".to_string(),
            KernelConfig::balanced_ymm(16.0),
            4,
        ),
    ];
    let budget = Watts(8.0 * 200.0);

    for mode in [CoordinatorMode::Emulated, CoordinatorMode::Online] {
        let run = coordinator.run_mix(&mix, &MixedAdaptive, budget, 60, mode);
        println!("— {mode:?} mode —");
        for ((name, _, _), report) in mix.iter().zip(&run.reports) {
            println!(
                "  {name:<14} elapsed {:7.2} s   energy {:9.1} kJ   avg power {:7.1}",
                report.elapsed.value(),
                report.energy.kj(),
                report.avg_power(),
            );
        }
        println!(
            "  mix: mean elapsed {:.2} s, total energy {:.1} kJ\n",
            run.mean_elapsed(),
            run.total_energy() / 1e3,
        );
    }

    println!(
        "Online mode re-characterizes from measured powers mid-run, so the\n\
         allocation tightens to what the jobs actually draw — the protocol\n\
         §VIII proposes for the HPC PowerStack community."
    );
}
