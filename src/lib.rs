//! # powerstack — a unified, application-aware HPC power management stack
//!
//! A from-scratch Rust reproduction of *"Introducing Application Awareness
//! Into a Unified Power Management Stack"* (Wilson et al., 2021): a resource
//! manager and a GEOPM-like job runtime that share one view of power, so
//! that site-level constraints **and** application behaviour both decide
//! where every watt goes.
//!
//! ## Layers
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`exec`] | `pmstack-exec` | work-stealing parallel-execution substrate (`par_map`), deterministic by construction |
//! | [`simhw`] | `pmstack-simhw` | simulated hardware: MSR/RAPL devices, power-frequency models, manufacturing variation, nodes, clusters |
//! | [`kernel`] | `pmstack-kernel` | the arithmetic-intensity synthetic benchmark: analytic model + native executable kernel |
//! | [`runtime`] | `pmstack-runtime` | the job runtime: platform IO, monitor/governor/balancer agents, reports, RM endpoint |
//! | [`rm`] | `pmstack-rm` | the resource manager: node pool, FIFO scheduler, power ledger |
//! | [`core`] | `pmstack-core` | the five power policies, characterization, mix evaluation, the unified coordinator |
//! | [`analysis`] | `pmstack-analysis` | k-means, roofline, statistics, metrics, text rendering |
//! | [`experiments`] | `pmstack-experiments` | Table II mixes, Table III budgets, the Fig. 7/8 grid, figure generators |
//!
//! ## Quickstart
//!
//! ```
//! use powerstack::core::{MixedAdaptive, PolicyCtx, PowerPolicy, JobChar};
//! use powerstack::kernel::KernelConfig;
//! use powerstack::simhw::{quartz_spec, PowerModel, Watts};
//!
//! // A Quartz-like machine and two four-node jobs.
//! let model = PowerModel::new(quartz_spec()).unwrap();
//! let jobs = vec![
//!     JobChar::analytic(KernelConfig::balanced_ymm(8.0), &model, &[1.0; 4]),
//!     JobChar::analytic(KernelConfig::balanced_ymm(0.5), &model, &[1.0; 4]),
//! ];
//!
//! // Allocate a 1.5 kW system budget with the paper's MixedAdaptive policy.
//! let ctx = PolicyCtx {
//!     system_budget: Watts(1500.0),
//!     min_node: quartz_spec().min_rapl_per_node(),
//!     tdp_node: quartz_spec().tdp_per_node(),
//! };
//! let allocation = MixedAdaptive.allocate(&ctx, &jobs);
//! assert!(allocation.total() <= Watts(1500.0));
//! ```
//!
//! Run `cargo run --release -p pmstack-experiments --bin repro -- all` to
//! regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use pmstack_analysis as analysis;
pub use pmstack_core as core;
pub use pmstack_exec as exec;
pub use pmstack_experiments as experiments;
pub use pmstack_kernel as kernel;
pub use pmstack_rm as rm;
pub use pmstack_runtime as runtime;
pub use pmstack_simhw as simhw;
