//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde at runtime (all export paths hand-roll
//! their formats). These derives therefore expand to nothing: the companion
//! `serde` shim provides blanket trait impls, so the derive only needs to be
//! accepted, not to generate code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
