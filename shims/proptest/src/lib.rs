//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!`/
//! `collection::vec` strategies, `prop_map`, `prop_assert*`, `prop_assume!`
//! and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Deterministic seeding.** The RNG seed derives from the test's module
//!   path and name, so failures reproduce exactly across runs.
//! * **No failure-persistence files.** `*.proptest-regressions` files are
//!   ignored.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod test_runner {
    //! Runner configuration and error plumbing.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw fresh ones.
        Reject,
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject(_why: impl Into<String>) -> Self {
            Self::Reject
        }
    }

    /// Runner configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation properties fast while still sweeping the space.
            Self { cases: 64 }
        }
    }
}

/// The RNG threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(file: &str, name: &str) -> Self {
        // FNV-1a over file and test name: stable, collision-unlikely.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in file.bytes().chain([0x1f]).chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(ChaCha8Rng::seed_from_u64(h))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty set");
        (self.next_u64() % n as u64) as usize
    }
}

pub mod strategy {
    //! Strategy trait and combinators.

    use super::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy facade for [`BoxedStrategy`] / `prop_oneof!`.
    pub trait DynStrategy<T> {
        /// Draw one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(pub Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            *self.start() + rng.unit_f64() * (*self.end() - *self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, glob-imported.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a property inside `proptest!`, failing the case (not panicking)
/// so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Reject the current inputs (draw fresh ones) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #![allow(unused_mut)]
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(file!(), stringify!($name));
            $(let $arg = $strat;)+
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                // Shadow each strategy binding with a drawn value for the
                // remainder of this loop iteration; the property body runs
                // in a move closure capturing the concretely-typed values.
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let formatted = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(20).max(1000),
                            "too many prop_assume! rejections in {}", stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} passing case(s): {}\ninputs:\n{}",
                            stringify!($name), passed, msg, formatted,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5.0f64..5.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            label in prop_oneof![Just("a"), Just("b")],
            n in (1usize..4, 10usize..20).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(label == "a" || label == "b");
            prop_assert!((11..23).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("f.rs", "t");
        let mut b = crate::TestRng::for_test("f.rs", "t");
        let mut c = crate::TestRng::for_test("f.rs", "u");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
