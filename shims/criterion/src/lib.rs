//! Offline stand-in for `criterion`.
//!
//! Exposes the API surface this workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) and runs each bench body a handful of times with
//! wall-clock timing — a smoke check, not a statistical harness.
//!
//! When the harness binary is invoked by `cargo test` (no `--bench` flag)
//! the benches are skipped entirely so test runs stay fast.

use std::time::Instant;

/// Unit attached to throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; runs the measured routine.
pub struct Bencher {
    samples: usize,
    last_nanos: u128,
}

impl Bencher {
    /// Time `routine` over a few samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.last_nanos = start.elapsed().as_nanos() / self.samples.max(1) as u128;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    harness: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count (acknowledged, loosely honored).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.harness.samples = n.clamp(1, 20);
        self
    }

    /// Declare throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark that takes an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.harness.samples,
            last_nanos: 0,
        };
        f(&mut b, input);
        self.report(&id.label, b.last_nanos);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.harness.samples,
            last_nanos: 0,
        };
        f(&mut b);
        self.report(&id.into(), b.last_nanos);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, nanos: u128) {
        let per_sec = |count: u64| {
            if nanos == 0 {
                f64::INFINITY
            } else {
                count as f64 * 1e9 / nanos as f64
            }
        };
        match self.throughput {
            Some(Throughput::Elements(n)) => println!(
                "bench {}/{label}: {nanos} ns/iter ({:.3e} elem/s)",
                self.name,
                per_sec(n)
            ),
            Some(Throughput::Bytes(n)) => println!(
                "bench {}/{label}: {nanos} ns/iter ({:.3e} B/s)",
                self.name,
                per_sec(n)
            ),
            None => println!("bench {}/{label}: {nanos} ns/iter", self.name),
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 3 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            harness: self,
        }
    }
}

/// Re-export for bench files that import it from criterion rather than std.
pub use std::hint::black_box;

/// True when the harness binary was invoked to actually run benches
/// (`cargo bench` passes `--bench`); false under `cargo test`.
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (only under `cargo bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                println!("criterion shim: skipping benches (no --bench flag)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0usize;
        g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "2x").label, "f/2x");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
