//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a type named [`ChaCha8Rng`] with the seeding and sampling API the
//! workspace uses. The internal generator is xoshiro256++ expanded from the
//! seed with SplitMix64 — not the ChaCha stream cipher, but deterministic,
//! well mixed, and more than adequate for seeded simulation. Nothing in this
//! workspace depends on the exact ChaCha key stream.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let mean: f64 = (0..1000).map(|_| r.gen::<f64>()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
