//! Offline stand-in for `serde`.
//!
//! The workspace tags data types with `Serialize`/`Deserialize` but never
//! routes them through a serde serializer (exports are hand-rolled text/CSV).
//! This shim keeps those annotations compiling without network access:
//! blanket-implemented marker traits plus no-op derive macros.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn derives_are_accepted() {
        #[cfg(feature = "derive")]
        {
            use crate::{Deserialize, Serialize};
            #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
            struct S {
                x: f64,
            }
            let s = S { x: 1.0 };
            assert_eq!(s.clone(), s);
        }
    }
}
