//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible replacement. It provides exactly the surface
//! the stack uses: `Rng::gen`, `Rng::gen_range`, `SeedableRng::seed_from_u64`
//! and `seq::SliceRandom::shuffle`. Generators are deterministic and seeded;
//! statistical quality is xoshiro-class, which is ample for simulation.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from uniform bits with the "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample_from(rng);
        *self.start() + u * (*self.end() - *self.start())
    }
}

/// High-level sampling interface (rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draw a value of the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (rand 0.8's `SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices (rand 0.8's `SliceRandom` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(1usize..=16);
            assert!((1..=16).contains(&w));
            let f = r.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
