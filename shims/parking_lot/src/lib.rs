//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! only part of the crate this workspace uses).

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader–writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
