//! Offline stand-in for `crossbeam` (the `thread::scope` subset).
//!
//! Built on `std::thread::scope` (stable since 1.63), re-shaped to the
//! crossbeam 0.8 calling convention: the spawn closure receives a `&Scope`
//! argument and `scope` returns a `Result`. One behavioural difference:
//! a panicking child makes `scope` itself panic (std semantics) instead of
//! returning `Err` — every call site in this workspace immediately
//! `.expect()`s the result, so the observable behaviour is identical.

/// Scoped-thread spawning.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to spawned closures (crossbeam convention).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut slots = [None; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = Some(i * i);
                });
            }
        })
        .expect("scope");
        assert_eq!(slots[7], Some(49));
        assert!(slots.iter().all(Option::is_some));
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("scope");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
