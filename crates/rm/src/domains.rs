//! Per-domain power accounting on top of the [`PowerLedger`].
//!
//! The cross-layer position papers argue power must be budgeted across
//! component domains (cores, DRAM, package rest), not just the node. The
//! [`DomainLedger`] keeps the node-level ledger authoritative — a job's
//! node grant is still one [`PowerLedger`] reservation admission-controlled
//! against the fleet budget — and layers a per-job split across the three
//! RAPL domains on it, maintaining the containment invariant
//!
//! > Σ domain grants = node grant ≤ fleet budget
//!
//! at every step. Shifting watts between a job's domains (the runtime's
//! domain balancer) never changes the node grant, so it can never
//! oversubscribe the fleet.

use crate::budget::{OverCommit, PowerLedger};
use crate::job::JobId;
use pmstack_obs::StaticFloatCounter;
use pmstack_simhw::{RaplDomain, Watts};
use std::collections::HashMap;

/// Observability: watts moved between domains within a job's node grant.
static WATTS_DOMAIN_SHIFTED: StaticFloatCounter =
    StaticFloatCounter::new("rm.watts.domain_shifted");

/// A per-domain grant, indexed by [`RaplDomain::index`]
/// (`[pkg-rest, pp0, dram]`). The domains are accounted as disjoint meters
/// summing to the node grant.
pub type DomainGrant = [Watts; 3];

/// Node-level power ledger with a per-job split across RAPL domains.
#[derive(Debug, Clone)]
pub struct DomainLedger {
    ledger: PowerLedger,
    splits: HashMap<JobId, DomainGrant>,
}

impl DomainLedger {
    /// A domain ledger over the given fleet budget.
    pub fn new(system_budget: Watts) -> Self {
        Self {
            ledger: PowerLedger::new(system_budget),
            splits: HashMap::new(),
        }
    }

    /// The fleet budget.
    pub fn system_budget(&self) -> Watts {
        self.ledger.system_budget()
    }

    /// Move the fleet budget; returns the oversubscription the caller must
    /// resolve by eviction (see [`PowerLedger::set_system_budget`]).
    pub fn set_system_budget(&mut self, budget: Watts) -> Watts {
        self.ledger.set_system_budget(budget)
    }

    /// Watts currently granted across all jobs (node-level).
    pub fn reserved(&self) -> Watts {
        self.ledger.reserved()
    }

    /// Watts still unreserved at the fleet level.
    pub fn available(&self) -> Watts {
        self.ledger.available()
    }

    /// Fraction of the fleet budget currently granted.
    pub fn utilization(&self) -> f64 {
        self.ledger.utilization()
    }

    /// A job's node-level grant.
    pub fn node_grant(&self, job: JobId) -> Option<Watts> {
        self.ledger.reservation(job)
    }

    /// A job's per-domain split.
    pub fn grant(&self, job: JobId) -> Option<DomainGrant> {
        self.splits.get(&job).copied()
    }

    /// Jobs currently holding a grant.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.splits.keys().copied()
    }

    /// Domain-aware degraded admission: reserve *up to* `Σ want` watts at
    /// the node level (failing — ledger untouched — when even `floor` does
    /// not fit), then split the grant across the domains proportionally to
    /// the request. The pkg-rest domain absorbs the rounding remainder so
    /// the split sums to the node grant exactly. Returns the per-domain
    /// grant.
    pub fn reserve_domains(
        &mut self,
        job: JobId,
        want: DomainGrant,
        floor: Watts,
    ) -> Result<DomainGrant, OverCommit> {
        let total = Watts(want.iter().map(|w| w.value()).sum());
        let granted = self.ledger.reserve_upto(job, total, floor)?;
        let split = if total.value() > 0.0 {
            let scale = granted.value() / total.value();
            let pp0 = Watts(want[RaplDomain::Pp0.index()].value() * scale);
            let dram = Watts(want[RaplDomain::Dram.index()].value() * scale);
            [granted - pp0 - dram, pp0, dram]
        } else {
            [Watts::ZERO; 3]
        };
        self.splits.insert(job, split);
        Ok(split)
    }

    /// Release a job's grant across all domains (idempotent).
    pub fn release(&mut self, job: JobId) {
        self.ledger.release(job);
        self.splits.remove(&job);
    }

    /// Reclaim up to `watts` from one domain of a job's grant — the
    /// accounting step when a plane degrades (a stuck domain, a dead
    /// device) and its share returns to the fleet. The node grant shrinks
    /// by the same amount, so containment holds. Returns the watts
    /// actually reclaimed.
    pub fn reclaim_domain(&mut self, job: JobId, d: RaplDomain, watts: Watts) -> Watts {
        let Some(split) = self.splits.get_mut(&job) else {
            return Watts::ZERO;
        };
        let held = split[d.index()];
        let take = Watts(watts.value().clamp(0.0, held.value()));
        let reclaimed = self.ledger.reclaim(job, take);
        split[d.index()] -= reclaimed;
        if self.ledger.reservation(job).is_none() {
            self.splits.remove(&job);
        }
        reclaimed
    }

    /// Shift up to `watts` from one domain of a job's grant to another —
    /// the domain balancer's primitive. The node grant is untouched, so a
    /// shift can never oversubscribe the fleet. Returns the watts actually
    /// moved (capped at what `from` holds; zero for an unknown job or a
    /// self-shift).
    pub fn shift(&mut self, job: JobId, from: RaplDomain, to: RaplDomain, watts: Watts) -> Watts {
        if from == to {
            return Watts::ZERO;
        }
        let Some(split) = self.splits.get_mut(&job) else {
            return Watts::ZERO;
        };
        let moved = Watts(watts.value().clamp(0.0, split[from.index()].value()));
        split[from.index()] -= moved;
        split[to.index()] += moved;
        WATTS_DOMAIN_SHIFTED.add(moved.value());
        moved
    }

    /// Check the containment invariant for every job:
    /// Σ domain grants = node grant, every domain grant non-negative, and
    /// Σ node grants ≤ fleet budget. Returns a description of the first
    /// violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        const EPS: f64 = 1e-6;
        for (&job, split) in &self.splits {
            let node = self
                .ledger
                .reservation(job)
                .ok_or_else(|| format!("{job:?}: split without a node grant"))?;
            let sum: f64 = split.iter().map(|w| w.value()).sum();
            if (sum - node.value()).abs() > EPS {
                return Err(format!(
                    "{job:?}: domain grants sum to {sum} but node grant is {node}"
                ));
            }
            for d in RaplDomain::ALL {
                if split[d.index()].value() < -EPS {
                    return Err(format!(
                        "{job:?}: negative grant in domain {d}: {}",
                        split[d.index()]
                    ));
                }
            }
        }
        let reserved = self.reserved();
        let budget = self.system_budget();
        if reserved.value() > budget.value() + EPS {
            return Err(format!(
                "fleet oversubscribed: {reserved} reserved against {budget}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn want(pkg_rest: f64, pp0: f64, dram: f64) -> DomainGrant {
        [Watts(pkg_rest), Watts(pp0), Watts(dram)]
    }

    #[test]
    fn full_grant_preserves_the_requested_split() {
        let mut ledger = DomainLedger::new(Watts(1000.0));
        let g = ledger
            .reserve_domains(JobId(1), want(100.0, 250.0, 50.0), Watts(200.0))
            .unwrap();
        assert_eq!(g, want(100.0, 250.0, 50.0));
        assert_eq!(ledger.node_grant(JobId(1)), Some(Watts(400.0)));
        ledger.check_invariants().unwrap();
    }

    #[test]
    fn partial_grant_scales_domains_proportionally() {
        let mut ledger = DomainLedger::new(Watts(1000.0));
        ledger
            .reserve_domains(JobId(1), want(400.0, 200.0, 100.0), Watts(100.0))
            .unwrap();
        // 300 W left; job 2 wants 600 W with a 150 W floor → granted 300,
        // half the request, so every domain halves.
        let g = ledger
            .reserve_domains(JobId(2), want(300.0, 200.0, 100.0), Watts(150.0))
            .unwrap();
        assert!((g[1].value() - 100.0).abs() < 1e-9);
        assert!((g[2].value() - 50.0).abs() < 1e-9);
        let sum: f64 = g.iter().map(|w| w.value()).sum();
        assert!((sum - 300.0).abs() < 1e-9, "split sums to the grant");
        ledger.check_invariants().unwrap();
    }

    #[test]
    fn below_floor_leaves_the_ledger_untouched() {
        let mut ledger = DomainLedger::new(Watts(500.0));
        ledger
            .reserve_domains(JobId(1), want(200.0, 200.0, 50.0), Watts(450.0))
            .unwrap();
        let err = ledger
            .reserve_domains(JobId(2), want(100.0, 100.0, 0.0), Watts(100.0))
            .unwrap_err();
        assert_eq!(err.requested, Watts(100.0));
        assert!(ledger.grant(JobId(2)).is_none());
        ledger.check_invariants().unwrap();
    }

    #[test]
    fn shift_moves_watts_without_touching_the_node_grant() {
        let mut ledger = DomainLedger::new(Watts(1000.0));
        ledger
            .reserve_domains(JobId(1), want(100.0, 250.0, 50.0), Watts(100.0))
            .unwrap();
        let moved = ledger.shift(JobId(1), RaplDomain::Pp0, RaplDomain::Dram, Watts(60.0));
        assert_eq!(moved, Watts(60.0));
        let g = ledger.grant(JobId(1)).unwrap();
        assert_eq!(g[RaplDomain::Pp0.index()], Watts(190.0));
        assert_eq!(g[RaplDomain::Dram.index()], Watts(110.0));
        assert_eq!(ledger.node_grant(JobId(1)), Some(Watts(400.0)));
        // Over-shift caps at what the source domain holds.
        let moved = ledger.shift(JobId(1), RaplDomain::Dram, RaplDomain::Pkg, Watts(500.0));
        assert_eq!(moved, Watts(110.0));
        // Self-shift and unknown jobs are no-ops.
        assert_eq!(
            ledger.shift(JobId(1), RaplDomain::Pkg, RaplDomain::Pkg, Watts(10.0)),
            Watts::ZERO
        );
        assert_eq!(
            ledger.shift(JobId(9), RaplDomain::Pkg, RaplDomain::Pp0, Watts(10.0)),
            Watts::ZERO
        );
        ledger.check_invariants().unwrap();
    }

    #[test]
    fn reclaim_domain_shrinks_node_grant_in_lockstep() {
        let mut ledger = DomainLedger::new(Watts(1000.0));
        ledger
            .reserve_domains(JobId(1), want(100.0, 250.0, 50.0), Watts(100.0))
            .unwrap();
        let got = ledger.reclaim_domain(JobId(1), RaplDomain::Pp0, Watts(100.0));
        assert_eq!(got, Watts(100.0));
        assert_eq!(ledger.node_grant(JobId(1)), Some(Watts(300.0)));
        assert_eq!(
            ledger.grant(JobId(1)).unwrap()[RaplDomain::Pp0.index()],
            Watts(150.0)
        );
        // Over-reclaim caps at the domain's share.
        let got = ledger.reclaim_domain(JobId(1), RaplDomain::Dram, Watts(999.0));
        assert_eq!(got, Watts(50.0));
        ledger.check_invariants().unwrap();
        // Reclaiming everything clears the job.
        ledger.reclaim_domain(JobId(1), RaplDomain::Pkg, Watts(999.0));
        ledger.reclaim_domain(JobId(1), RaplDomain::Pp0, Watts(999.0));
        assert!(ledger.grant(JobId(1)).is_none());
        assert_eq!(ledger.available(), Watts(1000.0));
    }

    #[test]
    fn release_frees_every_domain() {
        let mut ledger = DomainLedger::new(Watts(500.0));
        ledger
            .reserve_domains(JobId(1), want(100.0, 100.0, 50.0), Watts(50.0))
            .unwrap();
        ledger.release(JobId(1));
        ledger.release(JobId(1));
        assert_eq!(ledger.available(), Watts(500.0));
        assert!(ledger.grant(JobId(1)).is_none());
        ledger.check_invariants().unwrap();
    }
}
