//! # pmstack-rm — a SLURM-like resource manager
//!
//! The system-level half of the paper's stack: the component that owns the
//! cluster's nodes and its site-level power budget, admits jobs, and applies
//! per-job/per-host power caps (the role SLURM's power management plugin or
//! Cray ALPS plays in §VII-C).
//!
//! The resource manager is deliberately *workload-agnostic*: it sees job
//! node counts and power numbers, never application structure. Application
//! awareness only enters through the characterization data the policies in
//! `pmstack-core` consume — that separation is the paper's whole point.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backfill;
pub mod budget;
pub mod domains;
pub mod job;
pub mod lease;
pub mod lifecycle;
pub mod pool;
pub mod retry;
pub mod scheduler;

pub use backfill::BackfillScheduler;
pub use budget::{OverCommit, PowerLedger};
pub use domains::{DomainGrant, DomainLedger};
pub use job::{Job, JobId, JobSpec, JobState};
pub use lease::LeaseTable;
pub use lifecycle::{JobLifecycle, LifecycleState};
pub use pool::NodePool;
pub use retry::RetryPolicy;
pub use scheduler::{FifoScheduler, Scheduler, SchedulerEvent};
