//! The full job failure lifecycle the facility campaign drives.
//!
//! The scheduler-level [`crate::job::JobState`] deliberately knows only
//! three states — pending, running, completed — because that is all the
//! node/power accounting substrate needs. A *facility* additionally has to
//! answer "what happens when this job's node dies at hour 31 of a 40-hour
//! run?", and that is a richer machine:
//!
//! ```text
//!            launch          run            ckpt_begin
//!  Queued ──────────► Launching ──► Running ──────────► Checkpointing
//!    ▲                               ▲  │ ▲                │
//!    │ enqueue (backoff elapsed)     │  │ └── ckpt_end ────┘
//!    │                               │  │
//!  Requeued ◄──── requeue ──── Failed◄──┘ fail (node death, lease
//!                    │                     expiry, preemption kill)
//!                    ▼ (attempts exhausted)
//!                 Failed (terminal)        Running ──► Completed
//! ```
//!
//! Work survives restarts only up to the last completed checkpoint: the
//! uncheckpointed tail is *wasted node-hours*, the quantity the campaign
//! reports per policy. Invalid transitions panic — they are engine bugs,
//! never runtime conditions, matching the [`crate::job::Job`] convention.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle state of a facility job across failures and restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleState {
    /// Waiting in the queue for its first launch.
    Queued,
    /// Granted nodes; paying launch latency before work accrues.
    Launching,
    /// Executing and accruing progress.
    Running,
    /// Writing a checkpoint; no progress accrues during the write.
    Checkpointing,
    /// All work done; terminal.
    Completed,
    /// Lost its nodes (failure or preemption kill); either requeues or,
    /// with attempts exhausted, stays here terminally.
    Failed,
    /// Back in the queue after a failure, waiting out its backoff.
    Requeued,
}

impl fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Queued => "queued",
            Self::Launching => "launching",
            Self::Running => "running",
            Self::Checkpointing => "checkpointing",
            Self::Completed => "completed",
            Self::Failed => "failed",
            Self::Requeued => "requeued",
        };
        write!(f, "{s}")
    }
}

/// One job's progress ledger across attempts: how much work is required,
/// how much has been durably checkpointed, and how much the current
/// attempt has accrued beyond that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLifecycle {
    state: LifecycleState,
    /// Total work required, in hours at full speed.
    work_h: f64,
    /// Progress durably saved by the last completed checkpoint, hours.
    checkpointed_h: f64,
    /// Progress of the current attempt, hours (≥ `checkpointed_h`).
    progress_h: f64,
    /// Launches so far (first launch counts as attempt 1).
    attempts: u32,
}

impl JobLifecycle {
    /// A queued job requiring `work_h` hours of full-speed work.
    pub fn new(work_h: f64) -> Self {
        assert!(work_h > 0.0, "jobs require positive work");
        Self {
            state: LifecycleState::Queued,
            work_h,
            checkpointed_h: 0.0,
            progress_h: 0.0,
            attempts: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Total work required, hours.
    pub fn work_h(&self) -> f64 {
        self.work_h
    }

    /// Progress of the current attempt, hours.
    pub fn progress_h(&self) -> f64 {
        self.progress_h
    }

    /// Durably checkpointed progress, hours.
    pub fn checkpointed_h(&self) -> f64 {
        self.checkpointed_h
    }

    /// Work still missing, hours.
    pub fn remaining_h(&self) -> f64 {
        (self.work_h - self.progress_h).max(0.0)
    }

    /// Launches so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// True in a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.state,
            LifecycleState::Completed | LifecycleState::Failed
        )
    }

    /// Queued/Requeued → Launching. Counts the attempt. A restart resumes
    /// from the last checkpoint: the current attempt's progress starts at
    /// `checkpointed_h`.
    pub fn launch(&mut self) {
        assert!(
            matches!(
                self.state,
                LifecycleState::Queued | LifecycleState::Requeued
            ),
            "launch from {}, not queued/requeued",
            self.state
        );
        self.state = LifecycleState::Launching;
        self.attempts += 1;
        self.progress_h = self.checkpointed_h;
    }

    /// Launching → Running (launch latency paid).
    pub fn run(&mut self) {
        assert_eq!(
            self.state,
            LifecycleState::Launching,
            "run() only from launching"
        );
        self.state = LifecycleState::Running;
    }

    /// Accrue `hours` of full-speed-equivalent progress. Only running jobs
    /// make progress.
    pub fn accrue(&mut self, hours: f64) {
        assert_eq!(self.state, LifecycleState::Running, "accrue while running");
        assert!(hours >= 0.0);
        self.progress_h = (self.progress_h + hours).min(self.work_h);
    }

    /// Running → Checkpointing.
    pub fn checkpoint_begin(&mut self) {
        assert_eq!(
            self.state,
            LifecycleState::Running,
            "checkpoint only from running"
        );
        self.state = LifecycleState::Checkpointing;
    }

    /// Checkpointing → Running; the attempt's progress becomes durable.
    pub fn checkpoint_end(&mut self) {
        assert_eq!(
            self.state,
            LifecycleState::Checkpointing,
            "checkpoint_end only from checkpointing"
        );
        self.checkpointed_h = self.progress_h;
        self.state = LifecycleState::Running;
    }

    /// Running → Completed. Requires the work to actually be done.
    pub fn complete(&mut self) {
        assert_eq!(
            self.state,
            LifecycleState::Running,
            "complete only from running"
        );
        assert!(
            self.remaining_h() < 1e-9,
            "complete with {:.3} h remaining",
            self.remaining_h()
        );
        self.state = LifecycleState::Completed;
    }

    /// Any held state → Failed. Returns the *wasted* hours: progress beyond
    /// the last checkpoint, which the restart will have to redo. A job
    /// killed mid-checkpoint loses the in-flight checkpoint too.
    pub fn fail(&mut self) -> f64 {
        assert!(
            matches!(
                self.state,
                LifecycleState::Launching | LifecycleState::Running | LifecycleState::Checkpointing
            ),
            "fail from {}, not a held state",
            self.state
        );
        let wasted = self.progress_h - self.checkpointed_h;
        self.progress_h = self.checkpointed_h;
        self.state = LifecycleState::Failed;
        wasted
    }

    /// Graceful preemption (budget shock): the job writes a final
    /// checkpoint as it is evicted, so nothing is wasted, and goes straight
    /// back to the queue. Launching/Running/Checkpointing → Requeued — a
    /// job evicted mid-launch has accrued nothing yet, so its "checkpoint"
    /// is whatever the previous attempt saved.
    pub fn preempt(&mut self) {
        assert!(
            matches!(
                self.state,
                LifecycleState::Launching | LifecycleState::Running | LifecycleState::Checkpointing
            ),
            "preempt from {}, not a held state",
            self.state
        );
        self.checkpointed_h = self.progress_h;
        self.state = LifecycleState::Requeued;
    }

    /// Failed → Requeued (the retry policy granted another attempt).
    pub fn requeue(&mut self) {
        assert_eq!(
            self.state,
            LifecycleState::Failed,
            "requeue only from failed"
        );
        self.state = LifecycleState::Requeued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lifecycle_completes() {
        let mut j = JobLifecycle::new(10.0);
        assert_eq!(j.state(), LifecycleState::Queued);
        j.launch();
        assert_eq!(j.attempts(), 1);
        j.run();
        j.accrue(4.0);
        j.checkpoint_begin();
        j.checkpoint_end();
        assert_eq!(j.checkpointed_h(), 4.0);
        j.accrue(6.0);
        j.complete();
        assert!(j.is_terminal());
        assert_eq!(j.remaining_h(), 0.0);
    }

    #[test]
    fn failure_rolls_back_to_last_checkpoint() {
        let mut j = JobLifecycle::new(10.0);
        j.launch();
        j.run();
        j.accrue(4.0);
        j.checkpoint_begin();
        j.checkpoint_end();
        j.accrue(3.0);
        let wasted = j.fail();
        assert!((wasted - 3.0).abs() < 1e-12, "loses the unsaved tail");
        assert_eq!(j.progress_h(), 4.0);
        j.requeue();
        j.launch();
        assert_eq!(j.attempts(), 2);
        assert_eq!(j.progress_h(), 4.0, "restart resumes from the checkpoint");
        j.run();
        j.accrue(6.0);
        j.complete();
    }

    #[test]
    fn failure_mid_checkpoint_loses_the_inflight_save() {
        let mut j = JobLifecycle::new(8.0);
        j.launch();
        j.run();
        j.accrue(5.0);
        j.checkpoint_begin();
        let wasted = j.fail();
        assert!((wasted - 5.0).abs() < 1e-12);
        assert_eq!(j.checkpointed_h(), 0.0);
    }

    #[test]
    fn preemption_wastes_nothing() {
        let mut j = JobLifecycle::new(10.0);
        j.launch();
        j.run();
        j.accrue(7.5);
        j.preempt();
        assert_eq!(j.state(), LifecycleState::Requeued);
        assert_eq!(j.checkpointed_h(), 7.5, "graceful eviction checkpoints");
        j.launch();
        assert_eq!(j.progress_h(), 7.5);
    }

    #[test]
    fn progress_saturates_at_the_work_requirement() {
        let mut j = JobLifecycle::new(2.0);
        j.launch();
        j.run();
        j.accrue(5.0);
        assert_eq!(j.progress_h(), 2.0);
        j.complete();
    }

    #[test]
    #[should_panic(expected = "complete with")]
    fn complete_requires_finished_work() {
        let mut j = JobLifecycle::new(10.0);
        j.launch();
        j.run();
        j.accrue(1.0);
        j.complete();
    }

    #[test]
    #[should_panic(expected = "launch from")]
    fn running_jobs_do_not_relaunch() {
        let mut j = JobLifecycle::new(1.0);
        j.launch();
        j.run();
        j.launch();
    }

    #[test]
    #[should_panic(expected = "requeue only from failed")]
    fn requeue_requires_failed() {
        let mut j = JobLifecycle::new(1.0);
        j.requeue();
    }
}
