//! A FIFO scheduler with power-aware admission.
//!
//! Jobs start in submission order when enough nodes are free. On start, the
//! scheduler reserves the job's power from the [`crate::budget::PowerLedger`]
//! (the policy layer later rebalances the per-job grants). A job that cannot
//! get its power reservation waits even if nodes are free — power is a
//! first-class schedulable resource here, which is the RM-side behaviour the
//! paper's system-level policies presume.

use crate::budget::PowerLedger;
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::pool::NodePool;
use pmstack_obs::{EventKind, StaticCounter};
use pmstack_simhw::{NodeId, Watts};
use std::collections::{HashMap, VecDeque};

/// Observability: jobs submitted to either scheduler flavour.
pub(crate) static JOBS_SUBMITTED: StaticCounter = StaticCounter::new("rm.jobs.submitted");
/// Observability: jobs admitted (FIFO order or backfill).
pub(crate) static JOBS_STARTED: StaticCounter = StaticCounter::new("rm.jobs.started");
/// Observability: jobs that ran to completion (or failed out).
pub(crate) static JOBS_COMPLETED: StaticCounter = StaticCounter::new("rm.jobs.completed");
/// Observability: dead nodes drained from a scheduler's pool.
pub(crate) static NODES_DRAINED: StaticCounter = StaticCounter::new("rm.nodes.drained");

/// A scheduling decision notification.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerEvent {
    /// A job was admitted and holds nodes.
    Started {
        /// The started job.
        job: JobId,
        /// The granted nodes.
        nodes: Vec<NodeId>,
        /// The power reserved for the job.
        power: Watts,
    },
    /// A job finished and its resources were returned.
    Completed {
        /// The finished job.
        job: JobId,
    },
    /// A node suffered fail-stop death and was drained from the pool.
    NodeFailed {
        /// The dead node.
        node: NodeId,
        /// The job that held it, if it was leased.
        job: Option<JobId>,
    },
    /// A running job lost a node and continues degraded on the survivors,
    /// with its power reservation shrunk accordingly.
    JobDegraded {
        /// The degraded job.
        job: JobId,
        /// The node it lost.
        lost: NodeId,
        /// Nodes it still holds.
        remaining: usize,
        /// Watts reclaimed into the system budget.
        reclaimed: Watts,
    },
}

/// FIFO scheduler over a node pool and power ledger.
#[derive(Debug)]
pub struct FifoScheduler {
    pool: NodePool,
    ledger: PowerLedger,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
    /// Default power reserved per node when a spec carries no hint.
    default_per_node: Watts,
}

impl FifoScheduler {
    /// A scheduler over `pool` and `ledger`. `default_per_node` is reserved
    /// for jobs without a power hint (typically node TDP).
    pub fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            pool,
            ledger,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_id: 1,
            default_per_node,
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        JOBS_SUBMITTED.inc();
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(id, Job::pending(id, spec));
        self.queue.push_back(id);
        id
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs currently running.
    pub fn running(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        ids.sort();
        ids
    }

    /// The power ledger (for the policy layer to rebalance grants).
    pub fn ledger(&self) -> &PowerLedger {
        &self.ledger
    }

    /// Mutable ledger access for the policy layer.
    pub fn ledger_mut(&mut self) -> &mut PowerLedger {
        &mut self.ledger
    }

    /// Nodes still free.
    pub fn free_nodes(&self) -> usize {
        self.pool.available()
    }

    /// Try to start queued jobs in FIFO order; strict FIFO, so a stuck head
    /// of queue blocks later jobs (no backfill — matching the paper's
    /// static, all-jobs-start-together mixes).
    pub fn tick(&mut self) -> Vec<SchedulerEvent> {
        let mut events = Vec::new();
        while let Some(&head) = self.queue.front() {
            let (nodes_needed, per_node) = {
                let job = &self.jobs[&head];
                (
                    job.spec.nodes,
                    job.spec
                        .power_hint_per_node
                        .unwrap_or(self.default_per_node),
                )
            };
            if self.pool.available() < nodes_needed {
                break;
            }
            let power = per_node * nodes_needed as f64;
            if self.ledger.reserve(head, power).is_err() {
                break;
            }
            let nodes = self
                .pool
                .allocate(nodes_needed)
                .expect("availability checked above");
            let job = self.jobs.get_mut(&head).expect("queued job exists");
            job.start(nodes.clone());
            job.power_budget = Some(power);
            self.queue.pop_front();
            JOBS_STARTED.inc();
            pmstack_obs::event(
                f64::NAN,
                EventKind::JobStarted {
                    job: head.0,
                    nodes: nodes.len() as u64,
                    power_w: power.value(),
                },
            );
            events.push(SchedulerEvent::Started {
                job: head,
                nodes,
                power,
            });
        }
        events
    }

    /// Mark a running job finished, returning its nodes and power.
    pub fn complete(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("completing unknown job");
        let nodes = job.complete();
        self.pool.release(nodes);
        self.ledger.release(id);
        JOBS_COMPLETED.inc();
        pmstack_obs::event(f64::NAN, EventKind::JobCompleted { job: id.0 });
        SchedulerEvent::Completed { job: id }
    }

    /// Handle fail-stop death of a node: drain it from the pool, shrink the
    /// owning job's grant and power reservation (reclaiming the dead node's
    /// share into the system budget), and report what happened. A job whose
    /// last node dies is completed (failed out) and fully released.
    ///
    /// Unknown or already-drained nodes produce no events — failure reports
    /// can race, and handling one twice must be harmless.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        if !self.pool.manages(node) {
            return Vec::new();
        }
        self.pool.remove(node);
        NODES_DRAINED.inc();

        let owner = self
            .jobs
            .values()
            .find(|j| j.state == JobState::Running && j.nodes.contains(&node))
            .map(|j| j.id);
        let mut events = vec![SchedulerEvent::NodeFailed { node, job: owner }];

        if let Some(id) = owner {
            let job = self.jobs.get_mut(&id).expect("owner exists");
            let held_nodes = job.nodes.len();
            job.lose_node(node);
            if job.nodes.is_empty() {
                // Last node gone: the job fails out entirely.
                job.complete();
                self.ledger.release(id);
                events.push(SchedulerEvent::Completed { job: id });
            } else {
                // Reclaim the dead node's per-node share of the reservation.
                let share = self
                    .ledger
                    .reservation(id)
                    .map(|w| w / held_nodes as f64)
                    .unwrap_or(Watts::ZERO);
                let reclaimed = self.ledger.reclaim(id, share);
                let job = self.jobs.get_mut(&id).expect("owner exists");
                job.power_budget = self.ledger.reservation(id);
                pmstack_obs::event(
                    f64::NAN,
                    EventKind::NodeDrained {
                        node: node.0 as u64,
                        reclaimed_w: reclaimed.value(),
                    },
                );
                pmstack_obs::event(
                    f64::NAN,
                    EventKind::JobDegraded {
                        job: id.0,
                        lost_node: node.0 as u64,
                        remaining: job.nodes.len() as u64,
                    },
                );
                events.push(SchedulerEvent::JobDegraded {
                    job: id,
                    lost: node,
                    remaining: job.nodes.len(),
                    reclaimed,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize, budget_w: f64) -> FifoScheduler {
        FifoScheduler::new(
            NodePool::new(nodes),
            PowerLedger::new(Watts(budget_w)),
            Watts(240.0),
        )
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut s = scheduler(10, 1e6);
        let a = s.submit(JobSpec::new("a", 6));
        let b = s.submit(JobSpec::new("b", 6));
        let c = s.submit(JobSpec::new("c", 4));
        let events = s.tick();
        // Only `a` fits; `c` would fit but must not jump `b`.
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        s.complete(a);
        let events = s.tick();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == b));
        assert!(matches!(&events[1], SchedulerEvent::Started { job, .. } if *job == c));
    }

    #[test]
    fn power_is_admission_controlled() {
        // 4 nodes free but only 500 W: a 3-node job at 240 W/node (720 W)
        // must wait.
        let mut s = scheduler(4, 500.0);
        s.submit(JobSpec::new("big", 3));
        assert!(s.tick().is_empty());
        // A hinted job fitting the power starts.
        let mut s = scheduler(4, 500.0);
        let id = s.submit(JobSpec::new("lean", 3).with_power_hint(Watts(150.0)));
        let events = s.tick();
        assert!(
            matches!(&events[0], SchedulerEvent::Started { job, power, .. } if *job == id && *power == Watts(450.0))
        );
    }

    #[test]
    fn completion_returns_resources() {
        let mut s = scheduler(5, 1e6);
        let a = s.submit(JobSpec::new("a", 5));
        s.tick();
        assert_eq!(s.free_nodes(), 0);
        s.complete(a);
        assert_eq!(s.free_nodes(), 5);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    #[test]
    fn node_failure_degrades_the_owning_job() {
        let mut s = scheduler(4, 1e6);
        let a = s.submit(JobSpec::new("a", 3).with_power_hint(Watts(150.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        assert_eq!(s.ledger().reservation(a), Some(Watts(450.0)));

        let events = s.fail_node(held[1]);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed { node, job: Some(j) } if node == held[1] && j == a
        ));
        assert!(matches!(
            events[1],
            SchedulerEvent::JobDegraded { job, lost, remaining: 2, reclaimed }
                if job == a && lost == held[1] && reclaimed == Watts(150.0)
        ));
        // The dead node's share returned to the system budget; the job's
        // reservation shrank to its surviving share.
        assert_eq!(s.ledger().reservation(a), Some(Watts(300.0)));
        // The node is drained: total capacity shrank and completion of the
        // job returns only survivors.
        s.complete(a);
        assert_eq!(s.free_nodes(), 3);
    }

    #[test]
    fn losing_the_last_node_fails_the_job_out() {
        let mut s = scheduler(2, 1e6);
        let a = s.submit(JobSpec::new("a", 1).with_power_hint(Watts(200.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        let events = s.fail_node(held[0]);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], SchedulerEvent::Completed { job } if job == a));
        assert_eq!(s.job(a).unwrap().state, JobState::Completed);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    #[test]
    fn failing_a_free_or_unknown_node_is_quiet() {
        let mut s = scheduler(3, 1e6);
        // Free node: drained, reported, no job impact.
        let events = s.fail_node(NodeId(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed {
                node: NodeId(2),
                job: None
            }
        ));
        assert_eq!(s.free_nodes(), 2);
        // Failing it again (or a node that never existed) is a no-op.
        assert!(s.fail_node(NodeId(2)).is_empty());
        assert!(s.fail_node(NodeId(99)).is_empty());
    }

    #[test]
    fn freed_capacity_admits_waiting_jobs_after_failure() {
        // Power-constrained: two 1-node jobs at 240 W each against 300 W.
        let mut s = scheduler(4, 300.0);
        let a = s.submit(JobSpec::new("a", 1));
        let b = s.submit(JobSpec::new("b", 1));
        s.tick();
        assert_eq!(s.running(), vec![a]);
        // `a`'s node dies → its 240 W returns → `b` can now start.
        let held = s.job(a).unwrap().nodes.clone();
        s.fail_node(held[0]);
        let events = s.tick();
        assert!(
            matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == b),
            "reclaimed budget admits the waiting job"
        );
    }

    #[test]
    fn running_lists_active_jobs() {
        let mut s = scheduler(6, 1e6);
        let a = s.submit(JobSpec::new("a", 2));
        let b = s.submit(JobSpec::new("b", 2));
        s.tick();
        assert_eq!(s.running(), vec![a, b]);
        s.complete(a);
        assert_eq!(s.running(), vec![b]);
    }
}
