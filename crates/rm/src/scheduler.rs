//! A FIFO scheduler with power-aware admission.
//!
//! Jobs start in submission order when enough nodes are free. On start, the
//! scheduler reserves the job's power from the [`crate::budget::PowerLedger`]
//! (the policy layer later rebalances the per-job grants). A job that cannot
//! get its power reservation waits even if nodes are free — power is a
//! first-class schedulable resource here, which is the RM-side behaviour the
//! paper's system-level policies presume.

use crate::budget::PowerLedger;
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::pool::NodePool;
use pmstack_simhw::{NodeId, Watts};
use std::collections::{HashMap, VecDeque};

/// A scheduling decision notification.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerEvent {
    /// A job was admitted and holds nodes.
    Started {
        /// The started job.
        job: JobId,
        /// The granted nodes.
        nodes: Vec<NodeId>,
        /// The power reserved for the job.
        power: Watts,
    },
    /// A job finished and its resources were returned.
    Completed {
        /// The finished job.
        job: JobId,
    },
}

/// FIFO scheduler over a node pool and power ledger.
#[derive(Debug)]
pub struct FifoScheduler {
    pool: NodePool,
    ledger: PowerLedger,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
    /// Default power reserved per node when a spec carries no hint.
    default_per_node: Watts,
}

impl FifoScheduler {
    /// A scheduler over `pool` and `ledger`. `default_per_node` is reserved
    /// for jobs without a power hint (typically node TDP).
    pub fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            pool,
            ledger,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_id: 1,
        default_per_node,
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(id, Job::pending(id, spec));
        self.queue.push_back(id);
        id
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs currently running.
    pub fn running(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        ids.sort();
        ids
    }

    /// The power ledger (for the policy layer to rebalance grants).
    pub fn ledger(&self) -> &PowerLedger {
        &self.ledger
    }

    /// Mutable ledger access for the policy layer.
    pub fn ledger_mut(&mut self) -> &mut PowerLedger {
        &mut self.ledger
    }

    /// Nodes still free.
    pub fn free_nodes(&self) -> usize {
        self.pool.available()
    }

    /// Try to start queued jobs in FIFO order; strict FIFO, so a stuck head
    /// of queue blocks later jobs (no backfill — matching the paper's
    /// static, all-jobs-start-together mixes).
    pub fn tick(&mut self) -> Vec<SchedulerEvent> {
        let mut events = Vec::new();
        while let Some(&head) = self.queue.front() {
            let (nodes_needed, per_node) = {
                let job = &self.jobs[&head];
                (
                    job.spec.nodes,
                    job.spec.power_hint_per_node.unwrap_or(self.default_per_node),
                )
            };
            if self.pool.available() < nodes_needed {
                break;
            }
            let power = per_node * nodes_needed as f64;
            if self.ledger.reserve(head, power).is_err() {
                break;
            }
            let nodes = self
                .pool
                .allocate(nodes_needed)
                .expect("availability checked above");
            let job = self.jobs.get_mut(&head).expect("queued job exists");
            job.start(nodes.clone());
            job.power_budget = Some(power);
            self.queue.pop_front();
            events.push(SchedulerEvent::Started {
                job: head,
                nodes,
                power,
            });
        }
        events
    }

    /// Mark a running job finished, returning its nodes and power.
    pub fn complete(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("completing unknown job");
        let nodes = job.complete();
        self.pool.release(nodes);
        self.ledger.release(id);
        SchedulerEvent::Completed { job: id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize, budget_w: f64) -> FifoScheduler {
        FifoScheduler::new(
            NodePool::new(nodes),
            PowerLedger::new(Watts(budget_w)),
            Watts(240.0),
        )
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut s = scheduler(10, 1e6);
        let a = s.submit(JobSpec::new("a", 6));
        let b = s.submit(JobSpec::new("b", 6));
        let c = s.submit(JobSpec::new("c", 4));
        let events = s.tick();
        // Only `a` fits; `c` would fit but must not jump `b`.
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        s.complete(a);
        let events = s.tick();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == b));
        assert!(matches!(&events[1], SchedulerEvent::Started { job, .. } if *job == c));
    }

    #[test]
    fn power_is_admission_controlled() {
        // 4 nodes free but only 500 W: a 3-node job at 240 W/node (720 W)
        // must wait.
        let mut s = scheduler(4, 500.0);
        s.submit(JobSpec::new("big", 3));
        assert!(s.tick().is_empty());
        // A hinted job fitting the power starts.
        let mut s = scheduler(4, 500.0);
        let id = s.submit(JobSpec::new("lean", 3).with_power_hint(Watts(150.0)));
        let events = s.tick();
        assert!(
            matches!(&events[0], SchedulerEvent::Started { job, power, .. } if *job == id && *power == Watts(450.0))
        );
    }

    #[test]
    fn completion_returns_resources() {
        let mut s = scheduler(5, 1e6);
        let a = s.submit(JobSpec::new("a", 5));
        s.tick();
        assert_eq!(s.free_nodes(), 0);
        s.complete(a);
        assert_eq!(s.free_nodes(), 5);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    #[test]
    fn running_lists_active_jobs() {
        let mut s = scheduler(6, 1e6);
        let a = s.submit(JobSpec::new("a", 2));
        let b = s.submit(JobSpec::new("b", 2));
        s.tick();
        assert_eq!(s.running(), vec![a, b]);
        s.complete(a);
        assert_eq!(s.running(), vec![b]);
    }
}
