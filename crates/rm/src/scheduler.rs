//! Schedulers with power-aware admission, built on one shared core.
//!
//! [`FifoScheduler`] starts jobs strictly in submission order;
//! [`BackfillScheduler`] (in [`crate::backfill`]) lets later jobs jump a
//! stuck head. Everything else — submission, completion, the node-failure
//! path, requeue/preemption, the power ledger — is identical by
//! construction: both wrap a [`SchedulerCore`], so a node dying under a
//! backfilled schedule reclaims its watts exactly like one dying under
//! FIFO. The [`Scheduler`] trait is the surface the facility campaign
//! drives, letting it swap queueing disciplines without touching the
//! failure lifecycle.
//!
//! On start, a scheduler reserves the job's power from the
//! [`crate::budget::PowerLedger`] (the policy layer later rebalances the
//! per-job grants). A job that cannot get its power reservation waits even
//! if nodes are free — power is a first-class schedulable resource here,
//! which is the RM-side behaviour the paper's system-level policies
//! presume.

use crate::budget::{OverCommit, PowerLedger};
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::pool::NodePool;
use pmstack_obs::{EventKind, StaticCounter};
use pmstack_simhw::{NodeId, Watts};
use std::collections::{HashMap, VecDeque};

/// Observability: jobs submitted to either scheduler flavour.
pub(crate) static JOBS_SUBMITTED: StaticCounter = StaticCounter::new("rm.jobs.submitted");
/// Observability: jobs admitted (FIFO order or backfill).
pub(crate) static JOBS_STARTED: StaticCounter = StaticCounter::new("rm.jobs.started");
/// Observability: jobs that ran to completion (or failed out).
pub(crate) static JOBS_COMPLETED: StaticCounter = StaticCounter::new("rm.jobs.completed");
/// Observability: dead nodes drained from a scheduler's pool.
pub(crate) static NODES_DRAINED: StaticCounter = StaticCounter::new("rm.nodes.drained");
/// Observability: jobs killed and withdrawn (lease expiry / chaos kill).
pub(crate) static JOBS_REQUEUED: StaticCounter = StaticCounter::new("rm.jobs.requeued");
/// Observability: running jobs checkpointed and evicted by a budget shock.
pub(crate) static JOBS_PREEMPTED: StaticCounter = StaticCounter::new("rm.jobs.preempted");

/// A scheduling decision notification.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerEvent {
    /// A job was admitted and holds nodes.
    Started {
        /// The started job.
        job: JobId,
        /// The granted nodes.
        nodes: Vec<NodeId>,
        /// The power reserved for the job.
        power: Watts,
    },
    /// A job finished and its resources were returned.
    Completed {
        /// The finished job.
        job: JobId,
    },
    /// A node suffered fail-stop death and was drained from the pool.
    NodeFailed {
        /// The dead node.
        node: NodeId,
        /// The job that held it, if it was leased.
        job: Option<JobId>,
    },
    /// A running job lost a node and continues degraded on the survivors,
    /// with its power reservation shrunk accordingly.
    JobDegraded {
        /// The degraded job.
        job: JobId,
        /// The node it lost.
        lost: NodeId,
        /// Nodes it still holds.
        remaining: usize,
        /// Watts reclaimed into the system budget.
        reclaimed: Watts,
    },
    /// A running job was killed (node death under it) and returned to
    /// pending; its surviving nodes and full power reservation came back.
    Requeued {
        /// The requeued job.
        job: JobId,
        /// Surviving nodes released back to the pool.
        released: usize,
        /// Watts released back to the ledger.
        power: Watts,
    },
    /// A running job was checkpointed and evicted by a budget shock; it
    /// re-enters the queue at the front.
    Preempted {
        /// The preempted job.
        job: JobId,
        /// Watts released back to the ledger.
        power: Watts,
    },
}

/// What both queueing disciplines share: the pool, the ledger, the job
/// table, and every lifecycle path that is not a start decision.
#[derive(Debug)]
pub(crate) struct SchedulerCore {
    pub(crate) pool: NodePool,
    pub(crate) ledger: PowerLedger,
    pub(crate) queue: VecDeque<JobId>,
    pub(crate) jobs: HashMap<JobId, Job>,
    next_id: u64,
    pub(crate) default_per_node: Watts,
}

impl SchedulerCore {
    pub(crate) fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            pool,
            ledger,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_id: 1,
            default_per_node,
        }
    }

    pub(crate) fn submit(&mut self, spec: JobSpec) -> JobId {
        JOBS_SUBMITTED.inc();
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(id, Job::pending(id, spec));
        self.queue.push_back(id);
        id
    }

    /// Node count and total power a queued job would need to start.
    pub(crate) fn demand(&self, id: JobId) -> (usize, Watts) {
        let job = &self.jobs[&id];
        let per_node = job
            .spec
            .power_hint_per_node
            .unwrap_or(self.default_per_node);
        (job.spec.nodes, per_node * job.spec.nodes as f64)
    }

    /// Try to start one queued job right now: nodes and power must both
    /// fit, or nothing changes. On success the job runs and the event is
    /// returned; the caller removes it from its queue position.
    pub(crate) fn try_start(&mut self, id: JobId) -> Option<SchedulerEvent> {
        let (nodes_needed, power) = self.demand(id);
        if self.pool.available() < nodes_needed {
            return None;
        }
        if self.ledger.reserve(id, power).is_err() {
            return None;
        }
        let nodes = self
            .pool
            .allocate(nodes_needed)
            .expect("availability checked above");
        let job = self.jobs.get_mut(&id).expect("queued job exists");
        job.start(nodes.clone());
        job.power_budget = Some(power);
        JOBS_STARTED.inc();
        pmstack_obs::event(
            f64::NAN,
            EventKind::JobStarted {
                job: id.0,
                nodes: nodes.len() as u64,
                power_w: power.value(),
            },
        );
        Some(SchedulerEvent::Started {
            job: id,
            nodes,
            power,
        })
    }

    pub(crate) fn complete(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("completing unknown job");
        let nodes = job.complete();
        self.pool.release(nodes);
        self.ledger.release(id);
        JOBS_COMPLETED.inc();
        pmstack_obs::event(f64::NAN, EventKind::JobCompleted { job: id.0 });
        SchedulerEvent::Completed { job: id }
    }

    /// Shared degrade-path node failure (see [`FifoScheduler::fail_node`]).
    pub(crate) fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        let Some(owner) = self.drain(node) else {
            return Vec::new();
        };
        let mut events = vec![SchedulerEvent::NodeFailed { node, job: owner }];
        let Some(id) = owner else {
            self.emit_drained(node, Watts::ZERO);
            return events;
        };
        let job = self.jobs.get_mut(&id).expect("owner exists");
        let held_nodes = job.nodes.len();
        job.lose_node(node);
        if job.nodes.is_empty() {
            // Last node gone: the job fails out entirely.
            job.complete();
            let freed = self.ledger.reservation(id).unwrap_or(Watts::ZERO);
            self.ledger.release(id);
            self.emit_drained(node, freed);
            events.push(SchedulerEvent::Completed { job: id });
        } else {
            // Reclaim the dead node's per-node share of the reservation.
            let share = self
                .ledger
                .reservation(id)
                .map(|w| w / held_nodes as f64)
                .unwrap_or(Watts::ZERO);
            let reclaimed = self.ledger.reclaim(id, share);
            let job = self.jobs.get_mut(&id).expect("owner exists");
            job.power_budget = self.ledger.reservation(id);
            let remaining = job.nodes.len();
            self.emit_drained(node, reclaimed);
            pmstack_obs::event(
                f64::NAN,
                EventKind::JobDegraded {
                    job: id.0,
                    lost_node: node.0 as u64,
                    remaining: remaining as u64,
                },
            );
            events.push(SchedulerEvent::JobDegraded {
                job: id,
                lost: node,
                remaining,
                reclaimed,
            });
        }
        events
    }

    /// Shared kill-and-requeue node failure (see
    /// [`FifoScheduler::fail_node_requeue`]).
    pub(crate) fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        let Some(owner) = self.drain(node) else {
            return Vec::new();
        };
        let mut events = vec![SchedulerEvent::NodeFailed { node, job: owner }];
        match owner {
            Some(id) => {
                let freed = self.ledger.reservation(id).unwrap_or(Watts::ZERO);
                self.emit_drained(node, freed);
                events.push(self.withdraw(id));
            }
            None => self.emit_drained(node, Watts::ZERO),
        }
        events
    }

    /// Drain `node` from the pool. Returns `None` if the pool does not
    /// manage it (failure reports can race; handling one twice must be
    /// harmless), otherwise `Some(owner)`.
    fn drain(&mut self, node: NodeId) -> Option<Option<JobId>> {
        if !self.pool.manages(node) {
            return None;
        }
        self.pool.remove(node);
        NODES_DRAINED.inc();
        let owner = self
            .jobs
            .values()
            .find(|j| j.state == JobState::Running && j.nodes.contains(&node))
            .map(|j| j.id);
        Some(owner)
    }

    fn emit_drained(&self, node: NodeId, reclaimed: Watts) {
        pmstack_obs::event(
            f64::NAN,
            EventKind::NodeDrained {
                node: node.0 as u64,
                reclaimed_w: reclaimed.value(),
            },
        );
    }

    /// Kill a running job without completing it: release surviving nodes
    /// and the full power reservation, return the job to `Pending`. It is
    /// *not* queued — the caller decides when it becomes eligible again
    /// (backoff), via [`SchedulerCore::enqueue`].
    pub(crate) fn withdraw(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("withdrawing unknown job");
        let power = self.ledger.reservation(id).unwrap_or(Watts::ZERO);
        let nodes = job.requeue();
        let released = nodes.len();
        self.pool.release(nodes);
        self.ledger.release(id);
        self.queue.retain(|q| *q != id);
        JOBS_REQUEUED.inc();
        pmstack_obs::event(
            f64::NAN,
            EventKind::JobRequeued {
                job: id.0,
                released: released as u64,
                power_w: power.value(),
            },
        );
        SchedulerEvent::Requeued {
            job: id,
            released,
            power,
        }
    }

    /// Re-queue a pending, withdrawn job (its backoff elapsed). Back of
    /// the queue: a restarting job does not outrank patient arrivals.
    pub(crate) fn enqueue(&mut self, id: JobId) {
        let job = &self.jobs[&id];
        assert_eq!(job.state, JobState::Pending, "only pending jobs enqueue");
        assert!(!self.queue.contains(&id), "job already queued");
        self.queue.push_back(id);
    }

    /// Checkpoint-and-evict a running job under a budget shock: resources
    /// come back like [`SchedulerCore::withdraw`], but the job re-enters
    /// the queue immediately — at the *front*, since it already held a
    /// grant and should resume as soon as the budget recovers.
    pub(crate) fn preempt(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("preempting unknown job");
        let power = self.ledger.reservation(id).unwrap_or(Watts::ZERO);
        let nodes = job.requeue();
        self.pool.release(nodes);
        self.ledger.release(id);
        self.queue.push_front(id);
        JOBS_PREEMPTED.inc();
        pmstack_obs::event(
            f64::NAN,
            EventKind::JobPreempted {
                job: id.0,
                power_w: power.value(),
            },
        );
        SchedulerEvent::Preempted { job: id, power }
    }

    /// Re-reserve a running job's power (a policy tightening or relaxing
    /// its cap under a moving budget). Fails like any reservation when the
    /// ledger cannot fit it; on success the job's recorded budget follows.
    pub(crate) fn rebudget(&mut self, id: JobId, power: Watts) -> Result<(), OverCommit> {
        assert_eq!(
            self.jobs[&id].state,
            JobState::Running,
            "rebudget targets running jobs"
        );
        self.ledger.reserve(id, power)?;
        self.jobs.get_mut(&id).expect("job exists").power_budget = Some(power);
        Ok(())
    }

    pub(crate) fn running(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        ids.sort();
        ids
    }
}

/// The scheduler surface the facility campaign drives: everything both
/// queueing disciplines provide, failure lifecycle included.
pub trait Scheduler {
    /// Submit a job; returns its id.
    fn submit(&mut self, spec: JobSpec) -> JobId;
    /// Try to start queued jobs; discipline-specific.
    fn tick(&mut self) -> Vec<SchedulerEvent>;
    /// Mark a running job finished, returning its resources.
    fn complete(&mut self, id: JobId) -> SchedulerEvent;
    /// Degrade-path node failure: shrink the owning job around the loss.
    fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent>;
    /// Kill-path node failure: drain the node and withdraw the owning job
    /// entirely (checkpoint/restart semantics).
    fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent>;
    /// Kill a running job back to pending without queueing it.
    fn withdraw(&mut self, id: JobId) -> SchedulerEvent;
    /// Queue a withdrawn pending job (its backoff elapsed).
    fn enqueue(&mut self, id: JobId);
    /// Checkpoint-and-evict a running job; it rejoins the queue front.
    fn preempt(&mut self, id: JobId) -> SchedulerEvent;
    /// Re-reserve a running job's power under a moving budget.
    fn rebudget(&mut self, id: JobId, power: Watts) -> Result<(), OverCommit>;
    /// Return a drained node to service (lease false-positive repair).
    fn restore_node(&mut self, id: NodeId) -> bool;
    /// Look up a job.
    fn job(&self, id: JobId) -> Option<&Job>;
    /// All jobs currently running, ascending id.
    fn running(&self) -> Vec<JobId>;
    /// The power ledger.
    fn ledger(&self) -> &PowerLedger;
    /// Mutable ledger access for the policy layer.
    fn ledger_mut(&mut self) -> &mut PowerLedger;
    /// Nodes still free.
    fn free_nodes(&self) -> usize;
    /// Nodes managed (excludes drained).
    fn total_nodes(&self) -> usize;
    /// Jobs waiting in the queue.
    fn queue_len(&self) -> usize;
}

/// FIFO scheduler over a node pool and power ledger.
#[derive(Debug)]
pub struct FifoScheduler {
    core: SchedulerCore,
}

impl FifoScheduler {
    /// A scheduler over `pool` and `ledger`. `default_per_node` is reserved
    /// for jobs without a power hint (typically node TDP).
    pub fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            core: SchedulerCore::new(pool, ledger, default_per_node),
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.core.submit(spec)
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.core.jobs.get(&id)
    }

    /// All jobs currently running.
    pub fn running(&self) -> Vec<JobId> {
        self.core.running()
    }

    /// The power ledger (for the policy layer to rebalance grants).
    pub fn ledger(&self) -> &PowerLedger {
        &self.core.ledger
    }

    /// Mutable ledger access for the policy layer.
    pub fn ledger_mut(&mut self) -> &mut PowerLedger {
        &mut self.core.ledger
    }

    /// Nodes still free.
    pub fn free_nodes(&self) -> usize {
        self.core.pool.available()
    }

    /// Try to start queued jobs in FIFO order; strict FIFO, so a stuck head
    /// of queue blocks later jobs (no backfill — matching the paper's
    /// static, all-jobs-start-together mixes).
    pub fn tick(&mut self) -> Vec<SchedulerEvent> {
        let mut events = Vec::new();
        while let Some(&head) = self.core.queue.front() {
            match self.core.try_start(head) {
                Some(ev) => {
                    self.core.queue.pop_front();
                    events.push(ev);
                }
                None => break,
            }
        }
        events
    }

    /// Mark a running job finished, returning its nodes and power.
    pub fn complete(&mut self, id: JobId) -> SchedulerEvent {
        self.core.complete(id)
    }

    /// Handle fail-stop death of a node: drain it from the pool, shrink the
    /// owning job's grant and power reservation (reclaiming the dead node's
    /// share into the system budget), and report what happened. A job whose
    /// last node dies is completed (failed out) and fully released.
    ///
    /// Unknown or already-drained nodes produce no events — failure reports
    /// can race, and handling one twice must be harmless.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node(node)
    }

    /// Handle node death with checkpoint/restart semantics: drain the node
    /// and *withdraw* the owning job entirely — all surviving nodes and the
    /// full power reservation return, and the job goes back to pending
    /// (unqueued, so the caller can apply a retry backoff before
    /// [`FifoScheduler::enqueue`]). This is the facility campaign's path;
    /// the coordinator's degrade-in-place path is
    /// [`FifoScheduler::fail_node`].
    pub fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node_requeue(node)
    }

    /// Queue a withdrawn pending job again.
    pub fn enqueue(&mut self, id: JobId) {
        self.core.enqueue(id)
    }
}

impl Scheduler for FifoScheduler {
    fn submit(&mut self, spec: JobSpec) -> JobId {
        self.core.submit(spec)
    }
    fn tick(&mut self) -> Vec<SchedulerEvent> {
        FifoScheduler::tick(self)
    }
    fn complete(&mut self, id: JobId) -> SchedulerEvent {
        self.core.complete(id)
    }
    fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node(node)
    }
    fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node_requeue(node)
    }
    fn withdraw(&mut self, id: JobId) -> SchedulerEvent {
        self.core.withdraw(id)
    }
    fn enqueue(&mut self, id: JobId) {
        self.core.enqueue(id)
    }
    fn preempt(&mut self, id: JobId) -> SchedulerEvent {
        self.core.preempt(id)
    }
    fn rebudget(&mut self, id: JobId, power: Watts) -> Result<(), OverCommit> {
        self.core.rebudget(id, power)
    }
    fn restore_node(&mut self, id: NodeId) -> bool {
        self.core.pool.restore(id)
    }
    fn job(&self, id: JobId) -> Option<&Job> {
        self.core.jobs.get(&id)
    }
    fn running(&self) -> Vec<JobId> {
        self.core.running()
    }
    fn ledger(&self) -> &PowerLedger {
        &self.core.ledger
    }
    fn ledger_mut(&mut self) -> &mut PowerLedger {
        &mut self.core.ledger
    }
    fn free_nodes(&self) -> usize {
        self.core.pool.available()
    }
    fn total_nodes(&self) -> usize {
        self.core.pool.total()
    }
    fn queue_len(&self) -> usize {
        self.core.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize, budget_w: f64) -> FifoScheduler {
        FifoScheduler::new(
            NodePool::new(nodes),
            PowerLedger::new(Watts(budget_w)),
            Watts(240.0),
        )
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut s = scheduler(10, 1e6);
        let a = s.submit(JobSpec::new("a", 6));
        let b = s.submit(JobSpec::new("b", 6));
        let c = s.submit(JobSpec::new("c", 4));
        let events = s.tick();
        // Only `a` fits; `c` would fit but must not jump `b`.
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        s.complete(a);
        let events = s.tick();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == b));
        assert!(matches!(&events[1], SchedulerEvent::Started { job, .. } if *job == c));
    }

    #[test]
    fn power_is_admission_controlled() {
        // 4 nodes free but only 500 W: a 3-node job at 240 W/node (720 W)
        // must wait.
        let mut s = scheduler(4, 500.0);
        s.submit(JobSpec::new("big", 3));
        assert!(s.tick().is_empty());
        // A hinted job fitting the power starts.
        let mut s = scheduler(4, 500.0);
        let id = s.submit(JobSpec::new("lean", 3).with_power_hint(Watts(150.0)));
        let events = s.tick();
        assert!(
            matches!(&events[0], SchedulerEvent::Started { job, power, .. } if *job == id && *power == Watts(450.0))
        );
    }

    #[test]
    fn completion_returns_resources() {
        let mut s = scheduler(5, 1e6);
        let a = s.submit(JobSpec::new("a", 5));
        s.tick();
        assert_eq!(s.free_nodes(), 0);
        s.complete(a);
        assert_eq!(s.free_nodes(), 5);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    #[test]
    fn node_failure_degrades_the_owning_job() {
        let mut s = scheduler(4, 1e6);
        let a = s.submit(JobSpec::new("a", 3).with_power_hint(Watts(150.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        assert_eq!(s.ledger().reservation(a), Some(Watts(450.0)));

        let events = s.fail_node(held[1]);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed { node, job: Some(j) } if node == held[1] && j == a
        ));
        assert!(matches!(
            events[1],
            SchedulerEvent::JobDegraded { job, lost, remaining: 2, reclaimed }
                if job == a && lost == held[1] && reclaimed == Watts(150.0)
        ));
        // The dead node's share returned to the system budget; the job's
        // reservation shrank to its surviving share.
        assert_eq!(s.ledger().reservation(a), Some(Watts(300.0)));
        // The node is drained: total capacity shrank and completion of the
        // job returns only survivors.
        s.complete(a);
        assert_eq!(s.free_nodes(), 3);
    }

    #[test]
    fn losing_the_last_node_fails_the_job_out() {
        let mut s = scheduler(2, 1e6);
        let a = s.submit(JobSpec::new("a", 1).with_power_hint(Watts(200.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        let events = s.fail_node(held[0]);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], SchedulerEvent::Completed { job } if job == a));
        assert_eq!(s.job(a).unwrap().state, JobState::Completed);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    #[test]
    fn failing_a_free_or_unknown_node_is_quiet() {
        let mut s = scheduler(3, 1e6);
        // Free node: drained, reported, no job impact.
        let events = s.fail_node(NodeId(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed {
                node: NodeId(2),
                job: None
            }
        ));
        assert_eq!(s.free_nodes(), 2);
        // Failing it again (or a node that never existed) is a no-op.
        assert!(s.fail_node(NodeId(2)).is_empty());
        assert!(s.fail_node(NodeId(99)).is_empty());
    }

    #[test]
    fn freed_capacity_admits_waiting_jobs_after_failure() {
        // Power-constrained: two 1-node jobs at 240 W each against 300 W.
        let mut s = scheduler(4, 300.0);
        let a = s.submit(JobSpec::new("a", 1));
        let b = s.submit(JobSpec::new("b", 1));
        s.tick();
        assert_eq!(s.running(), vec![a]);
        // `a`'s node dies → its 240 W returns → `b` can now start.
        let held = s.job(a).unwrap().nodes.clone();
        s.fail_node(held[0]);
        let events = s.tick();
        assert!(
            matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == b),
            "reclaimed budget admits the waiting job"
        );
    }

    #[test]
    fn running_lists_active_jobs() {
        let mut s = scheduler(6, 1e6);
        let a = s.submit(JobSpec::new("a", 2));
        let b = s.submit(JobSpec::new("b", 2));
        s.tick();
        assert_eq!(s.running(), vec![a, b]);
        s.complete(a);
        assert_eq!(s.running(), vec![b]);
    }

    #[test]
    fn fail_node_requeue_withdraws_the_whole_job() {
        let mut s = scheduler(4, 1e6);
        let a = s.submit(JobSpec::new("a", 3).with_power_hint(Watts(150.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        let events = s.fail_node_requeue(held[1]);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed { node, job: Some(j) } if node == held[1] && j == a
        ));
        assert!(matches!(
            events[1],
            SchedulerEvent::Requeued { job, released: 3, power } if job == a && power == Watts(450.0)
        ));
        // Full reservation returned, survivors free, job pending unqueued.
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
        assert_eq!(s.free_nodes(), 3, "two survivors + one untouched node");
        assert_eq!(s.job(a).unwrap().state, JobState::Pending);
        assert!(s.tick().is_empty(), "withdrawn job is not queued yet");
        // After the backoff the caller enqueues it; it restarts on the
        // survivors.
        s.enqueue(a);
        let events = s.tick();
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        assert_eq!(s.job(a).unwrap().nodes.len(), 3);
    }

    #[test]
    fn preempt_releases_resources_and_requeues_at_the_front() {
        let mut s = scheduler(4, 1e6);
        let a = s.submit(JobSpec::new("a", 2).with_power_hint(Watts(100.0)));
        let b = s.submit(JobSpec::new("b", 2).with_power_hint(Watts(100.0)));
        s.tick();
        let waiting = s.submit(JobSpec::new("w", 2).with_power_hint(Watts(100.0)));
        let ev = Scheduler::preempt(&mut s, a);
        assert!(
            matches!(ev, SchedulerEvent::Preempted { job, power } if job == a && power == Watts(200.0))
        );
        assert_eq!(s.free_nodes(), 2);
        // The preempted job outranks the patient arrival.
        let events = s.tick();
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        assert_eq!(s.job(waiting).unwrap().state, JobState::Pending);
        let _ = b;
    }

    #[test]
    fn rebudget_moves_a_running_jobs_reservation() {
        let mut s = scheduler(2, 500.0);
        let a = s.submit(JobSpec::new("a", 2).with_power_hint(Watts(200.0)));
        s.tick();
        assert_eq!(s.ledger().reservation(a), Some(Watts(400.0)));
        Scheduler::rebudget(&mut s, a, Watts(300.0)).unwrap();
        assert_eq!(s.ledger().reservation(a), Some(Watts(300.0)));
        assert_eq!(s.job(a).unwrap().power_budget, Some(Watts(300.0)));
        // Growing beyond the budget fails cleanly.
        assert!(Scheduler::rebudget(&mut s, a, Watts(600.0)).is_err());
        assert_eq!(s.ledger().reservation(a), Some(Watts(300.0)));
    }
}
