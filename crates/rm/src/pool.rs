//! The free-node pool.

use pmstack_simhw::NodeId;
use std::collections::BTreeSet;

/// Tracks which cluster nodes are free versus leased to jobs, and which
/// have been drained out of management (fail-stop dead nodes).
#[derive(Debug, Clone)]
pub struct NodePool {
    free: BTreeSet<NodeId>,
    /// Every node this pool manages, leased or free. Nodes removed by
    /// [`NodePool::remove`] leave this set permanently.
    managed: BTreeSet<NodeId>,
}

impl NodePool {
    /// A pool over nodes `0..total`.
    pub fn new(total: usize) -> Self {
        let managed: BTreeSet<NodeId> = (0..total).map(NodeId).collect();
        Self {
            free: managed.clone(),
            managed,
        }
    }

    /// A pool over an explicit node set (e.g. only the medium-frequency
    /// cluster selected in §V-A2).
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let managed: BTreeSet<NodeId> = nodes.into_iter().collect();
        Self {
            free: managed.clone(),
            managed,
        }
    }

    /// Total nodes managed (excludes removed nodes).
    pub fn total(&self) -> usize {
        self.managed.len()
    }

    /// Currently free nodes.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// True if the pool manages this node (free or leased).
    pub fn manages(&self, id: NodeId) -> bool {
        self.managed.contains(&id)
    }

    /// Lease `n` nodes (lowest ids first, for determinism). Returns `None`
    /// without side effects if not enough are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<NodeId>> {
        if self.free.len() < n {
            return None;
        }
        let grant: Vec<NodeId> = self.free.iter().take(n).copied().collect();
        for id in &grant {
            self.free.remove(id);
        }
        Some(grant)
    }

    /// Lease `n` nodes with ids in `[lo, hi)` (lowest ids first) — the
    /// class-constrained allocation path: a heterogeneous fleet lays its
    /// classes out as contiguous id segments, and a job pinned to one
    /// class draws only from that segment. Returns `None` without side
    /// effects if the segment does not hold `n` free nodes.
    pub fn allocate_in(&mut self, n: usize, lo: NodeId, hi: NodeId) -> Option<Vec<NodeId>> {
        let grant: Vec<NodeId> = self.free.range(lo..hi).take(n).copied().collect();
        if grant.len() < n {
            return None;
        }
        for id in &grant {
            self.free.remove(id);
        }
        Some(grant)
    }

    /// Free nodes with ids in `[lo, hi)`.
    pub fn available_in(&self, lo: NodeId, hi: NodeId) -> usize {
        self.free.range(lo..hi).count()
    }

    /// Return leased nodes. Idempotent: releasing a node twice is a no-op,
    /// and nodes no longer managed (drained after a failure) silently stay
    /// out of the free set instead of re-entering circulation.
    pub fn release(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for id in nodes {
            if self.managed.contains(&id) {
                self.free.insert(id);
            }
        }
    }

    /// Drain a node out of management entirely (fail-stop death): it stops
    /// counting toward [`NodePool::total`], cannot be allocated, and future
    /// releases of it are ignored. Returns `false` if the pool never
    /// managed the node (or it was already removed).
    pub fn remove(&mut self, id: NodeId) -> bool {
        self.free.remove(&id);
        self.managed.remove(&id)
    }

    /// Return a previously drained node to service, free. The repair path
    /// for lease-expiry false positives: a node declared dead during a
    /// telemetry blackout comes back once its heartbeats resume. Returns
    /// `false` (no-op) if the node is already managed.
    pub fn restore(&mut self, id: NodeId) -> bool {
        if self.managed.contains(&id) {
            return false;
        }
        self.managed.insert(id);
        self.free.insert(id);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = NodePool::new(10);
        let grant = pool.allocate(4).unwrap();
        assert_eq!(grant.len(), 4);
        assert_eq!(pool.available(), 6);
        pool.release(grant);
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn allocation_is_deterministic() {
        let mut a = NodePool::new(5);
        let mut b = NodePool::new(5);
        assert_eq!(a.allocate(3), b.allocate(3));
    }

    #[test]
    fn over_allocation_fails_without_side_effects() {
        let mut pool = NodePool::new(3);
        assert!(pool.allocate(4).is_none());
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn double_release_is_a_noop() {
        let mut pool = NodePool::new(3);
        let grant = pool.allocate(1).unwrap();
        pool.release(grant.clone());
        pool.release(grant);
        assert_eq!(pool.available(), 3);
        assert_eq!(pool.total(), 3);
    }

    #[test]
    fn foreign_release_is_ignored() {
        let mut pool = NodePool::from_nodes([NodeId(1), NodeId(2)]);
        pool.release([NodeId(7)]);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.total(), 2);
    }

    #[test]
    fn removed_node_never_returns() {
        let mut pool = NodePool::new(4);
        let grant = pool.allocate(2).unwrap();
        // Kill a leased node: it leaves management…
        assert!(pool.remove(grant[0]));
        assert_eq!(pool.total(), 3);
        // …and releasing the old grant only returns the survivor.
        pool.release(grant.clone());
        assert_eq!(pool.available(), 3);
        assert!(!pool.manages(grant[0]));
        // Removing twice reports false.
        assert!(!pool.remove(grant[0]));
    }

    #[test]
    fn removed_free_node_shrinks_availability() {
        let mut pool = NodePool::new(3);
        assert!(pool.remove(NodeId(0)));
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.total(), 2);
        let grant = pool.allocate(2).unwrap();
        assert_eq!(grant, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn restore_returns_a_drained_node_to_service() {
        let mut pool = NodePool::new(3);
        assert!(pool.remove(NodeId(1)));
        assert_eq!(pool.total(), 2);
        assert!(pool.restore(NodeId(1)));
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.available(), 3);
        // Restoring a managed node is a no-op.
        assert!(!pool.restore(NodeId(1)));
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn range_allocation_stays_inside_the_segment() {
        let mut pool = NodePool::new(8);
        // Fleet-wide allocation takes the low segment first…
        let low = pool.allocate(2).unwrap();
        assert_eq!(low, vec![NodeId(0), NodeId(1)]);
        // …but a class pinned to [4, 8) only sees its own nodes.
        assert_eq!(pool.available_in(NodeId(4), NodeId(8)), 4);
        let pinned = pool.allocate_in(3, NodeId(4), NodeId(8)).unwrap();
        assert_eq!(pinned, vec![NodeId(4), NodeId(5), NodeId(6)]);
        assert_eq!(pool.available_in(NodeId(4), NodeId(8)), 1);
        // Segment exhaustion fails without side effects even though the
        // fleet as a whole still has free nodes.
        assert!(pool.allocate_in(2, NodeId(4), NodeId(8)).is_none());
        assert_eq!(pool.available_in(NodeId(4), NodeId(8)), 1);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn explicit_node_set() {
        let pool = NodePool::from_nodes([NodeId(7), NodeId(9), NodeId(11)]);
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.available(), 3);
    }
}
