//! The free-node pool.

use pmstack_simhw::NodeId;
use std::collections::BTreeSet;

/// Tracks which cluster nodes are free versus leased to jobs.
#[derive(Debug, Clone)]
pub struct NodePool {
    free: BTreeSet<NodeId>,
    total: usize,
}

impl NodePool {
    /// A pool over nodes `0..total`.
    pub fn new(total: usize) -> Self {
        Self {
            free: (0..total).map(NodeId).collect(),
            total,
        }
    }

    /// A pool over an explicit node set (e.g. only the medium-frequency
    /// cluster selected in §V-A2).
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let free: BTreeSet<NodeId> = nodes.into_iter().collect();
        let total = free.len();
        Self { free, total }
    }

    /// Total nodes managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Currently free nodes.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Lease `n` nodes (lowest ids first, for determinism). Returns `None`
    /// without side effects if not enough are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<NodeId>> {
        if self.free.len() < n {
            return None;
        }
        let grant: Vec<NodeId> = self.free.iter().take(n).copied().collect();
        for id in &grant {
            self.free.remove(id);
        }
        Some(grant)
    }

    /// Return leased nodes.
    ///
    /// # Panics
    /// If a node is returned twice — a double-free is always a bug.
    pub fn release(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for id in nodes {
            assert!(self.free.insert(id), "double release of {id}");
        }
        assert!(self.free.len() <= self.total, "released foreign node");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = NodePool::new(10);
        let grant = pool.allocate(4).unwrap();
        assert_eq!(grant.len(), 4);
        assert_eq!(pool.available(), 6);
        pool.release(grant);
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn allocation_is_deterministic() {
        let mut a = NodePool::new(5);
        let mut b = NodePool::new(5);
        assert_eq!(a.allocate(3), b.allocate(3));
    }

    #[test]
    fn over_allocation_fails_without_side_effects() {
        let mut pool = NodePool::new(3);
        assert!(pool.allocate(4).is_none());
        assert_eq!(pool.available(), 3);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = NodePool::new(3);
        let grant = pool.allocate(1).unwrap();
        pool.release(grant.clone());
        pool.release(grant);
    }

    #[test]
    fn explicit_node_set() {
        let pool = NodePool::from_nodes([NodeId(7), NodeId(9), NodeId(11)]);
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.available(), 3);
    }
}
