//! Capped exponential-backoff retry policy for failed jobs.
//!
//! A failed job does not relaunch immediately: a transient cause (the
//! lease-expired node was only in a telemetry blackout, the budget shock is
//! passing) deserves breathing room, and a job that fails deterministically
//! must not live in the queue forever. Delays grow geometrically from
//! [`RetryPolicy::base_s`] up to the hard cap [`RetryPolicy::cap_s`], and
//! after [`RetryPolicy::max_attempts`] launches the policy stops granting
//! retries at all — the kill switch that turns a crash-looping job into a
//! terminal failure instead of an infinite resource drain.
//!
//! The schedule is a pure function of the attempt number — no jitter — so
//! campaigns replay bit-for-bit.

use serde::{Deserialize, Serialize};

/// Retry schedule: capped exponential backoff with a max-attempts kill
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the second attempt, seconds.
    pub base_s: f64,
    /// Multiplier applied per additional failed attempt.
    pub factor: f64,
    /// Hard ceiling on any single delay, seconds.
    pub cap_s: f64,
    /// Total launches allowed (first launch included). Attempt numbers at
    /// or beyond this get no retry.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// 10 min base, doubling, capped at 1 h, at most 5 launches.
    fn default() -> Self {
        Self {
            base_s: 600.0,
            factor: 2.0,
            cap_s: 3600.0,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// Delay in seconds before the *next* launch, given that `attempts`
    /// launches have already happened and the last one failed. `None` means
    /// the kill switch fired: no further attempt is granted.
    ///
    /// The first retry (after attempt 1) waits `base_s`; each further
    /// failure multiplies the delay by `factor`, clamped to `cap_s`.
    pub fn delay_for(&self, attempts: u32) -> Option<f64> {
        if attempts == 0 {
            // Never launched: launching is not a retry.
            return Some(0.0);
        }
        if attempts >= self.max_attempts {
            return None;
        }
        let exp = (attempts - 1).min(1024);
        let raw = self.base_s * self.factor.powi(exp as i32);
        Some(raw.min(self.cap_s))
    }

    /// True when a job with `attempts` launches may try again.
    pub fn allows_retry(&self, attempts: u32) -> bool {
        self.delay_for(attempts).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_geometrically_to_the_cap() {
        let p = RetryPolicy {
            base_s: 100.0,
            factor: 2.0,
            cap_s: 500.0,
            max_attempts: 10,
        };
        assert_eq!(p.delay_for(1), Some(100.0));
        assert_eq!(p.delay_for(2), Some(200.0));
        assert_eq!(p.delay_for(3), Some(400.0));
        assert_eq!(p.delay_for(4), Some(500.0), "clamped");
        assert_eq!(p.delay_for(9), Some(500.0), "stays clamped");
    }

    #[test]
    fn kill_switch_fires_at_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.allows_retry(1));
        assert!(p.allows_retry(2));
        assert!(!p.allows_retry(3));
        assert!(!p.allows_retry(99));
    }

    #[test]
    fn unlaunched_jobs_launch_immediately() {
        assert_eq!(RetryPolicy::default().delay_for(0), Some(0.0));
    }
}
