//! A conservative backfill scheduler.
//!
//! Strict FIFO strands nodes whenever the head of the queue is wide: a
//! 512-node job at the head blocks a 4-node job even though nodes sit
//! idle. EASY-style backfill lets later jobs jump the queue *if* they fit
//! right now — conservatively here: a job may backfill only when it also
//! fits the power ledger, so the power guarantee of the FIFO scheduler is
//! preserved. This is the scheduler the facility simulation can swap in to
//! study utilization-vs-fairness at the site level.
//!
//! Only the start decision differs from FIFO. Submission, completion and —
//! critically — the node-failure/requeue/preemption paths are the shared
//! [`SchedulerCore`](crate::scheduler), so a node dying under a backfilled
//! schedule reclaims its watts exactly like one dying under FIFO.

use crate::budget::{OverCommit, PowerLedger};
use crate::job::{Job, JobId, JobSpec};
use crate::pool::NodePool;
use crate::scheduler::{Scheduler, SchedulerCore, SchedulerEvent};
use pmstack_obs::EventKind;
use pmstack_simhw::{NodeId, Watts};

/// Observability: jobs started out of queue order by backfill.
static JOBS_BACKFILLED: pmstack_obs::StaticCounter =
    pmstack_obs::StaticCounter::new("rm.jobs.backfilled");

/// FIFO-with-backfill over a node pool and power ledger.
#[derive(Debug)]
pub struct BackfillScheduler {
    core: SchedulerCore,
    /// Jobs started out of order (observability for fairness studies).
    backfilled: usize,
}

impl BackfillScheduler {
    /// A scheduler over `pool` and `ledger` with a default per-node power
    /// reservation for jobs without a hint.
    pub fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            core: SchedulerCore::new(pool, ledger, default_per_node),
            backfilled: 0,
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.core.submit(spec)
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.core.jobs.get(&id)
    }

    /// Nodes still free.
    pub fn free_nodes(&self) -> usize {
        self.core.pool.available()
    }

    /// The power ledger.
    pub fn ledger(&self) -> &PowerLedger {
        &self.core.ledger
    }

    /// How many jobs have started out of queue order.
    pub fn backfilled_count(&self) -> usize {
        self.backfilled
    }

    /// Start jobs: the head of the queue whenever it fits, then — when the
    /// head is stuck — any later job that fits both nodes and power.
    pub fn tick(&mut self) -> Vec<SchedulerEvent> {
        let mut events = Vec::new();
        loop {
            let mut started_any = false;
            let ids: Vec<JobId> = self.core.queue.iter().copied().collect();
            for (pos, id) in ids.iter().enumerate() {
                let Some(ev) = self.core.try_start(*id) else {
                    // Head-of-queue blocked: later jobs may still backfill,
                    // so keep scanning.
                    continue;
                };
                self.core.queue.retain(|q| q != id);
                if pos > 0 {
                    self.backfilled += 1;
                    JOBS_BACKFILLED.inc();
                    pmstack_obs::event(f64::NAN, EventKind::JobBackfilled { job: id.0 });
                }
                events.push(ev);
                started_any = true;
                break; // restart the scan: positions shifted
            }
            if !started_any {
                return events;
            }
        }
    }

    /// Mark a running job finished, returning its resources.
    pub fn complete(&mut self, id: JobId) -> SchedulerEvent {
        self.core.complete(id)
    }

    /// Handle fail-stop death of a node under a backfilled schedule: drain
    /// it, shrink the owning job's grant and reservation, reclaim the dead
    /// node's watts. Identical to [`crate::FifoScheduler::fail_node`] by
    /// construction — both delegate to the shared core.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node(node)
    }

    /// Node death with checkpoint/restart semantics: drain the node, kill
    /// and withdraw the whole owning job (see
    /// [`crate::FifoScheduler::fail_node_requeue`]).
    pub fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node_requeue(node)
    }

    /// Queue a withdrawn pending job again.
    pub fn enqueue(&mut self, id: JobId) {
        self.core.enqueue(id)
    }
}

impl Scheduler for BackfillScheduler {
    fn submit(&mut self, spec: JobSpec) -> JobId {
        self.core.submit(spec)
    }
    fn tick(&mut self) -> Vec<SchedulerEvent> {
        BackfillScheduler::tick(self)
    }
    fn complete(&mut self, id: JobId) -> SchedulerEvent {
        self.core.complete(id)
    }
    fn fail_node(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node(node)
    }
    fn fail_node_requeue(&mut self, node: NodeId) -> Vec<SchedulerEvent> {
        self.core.fail_node_requeue(node)
    }
    fn withdraw(&mut self, id: JobId) -> SchedulerEvent {
        self.core.withdraw(id)
    }
    fn enqueue(&mut self, id: JobId) {
        self.core.enqueue(id)
    }
    fn preempt(&mut self, id: JobId) -> SchedulerEvent {
        self.core.preempt(id)
    }
    fn rebudget(&mut self, id: JobId, power: Watts) -> Result<(), OverCommit> {
        self.core.rebudget(id, power)
    }
    fn restore_node(&mut self, id: NodeId) -> bool {
        self.core.pool.restore(id)
    }
    fn job(&self, id: JobId) -> Option<&Job> {
        self.core.jobs.get(&id)
    }
    fn running(&self) -> Vec<JobId> {
        self.core.running()
    }
    fn ledger(&self) -> &PowerLedger {
        &self.core.ledger
    }
    fn ledger_mut(&mut self) -> &mut PowerLedger {
        &mut self.core.ledger
    }
    fn free_nodes(&self) -> usize {
        self.core.pool.available()
    }
    fn total_nodes(&self) -> usize {
        self.core.pool.total()
    }
    fn queue_len(&self) -> usize {
        self.core.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;

    fn scheduler(nodes: usize) -> BackfillScheduler {
        BackfillScheduler::new(
            NodePool::new(nodes),
            PowerLedger::new(Watts(nodes as f64 * 240.0)),
            Watts(240.0),
        )
    }

    #[test]
    fn backfills_past_a_wide_head() {
        let mut s = scheduler(8);
        let wide = s.submit(JobSpec::new("wide", 6));
        s.tick();
        assert_eq!(s.free_nodes(), 2);
        // A 7-node job blocks; a 2-node job behind it backfills.
        let blocked = s.submit(JobSpec::new("blocked", 7));
        let small = s.submit(JobSpec::new("small", 2));
        let events = s.tick();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == small));
        assert_eq!(s.backfilled_count(), 1);
        assert_eq!(s.job(blocked).unwrap().state, JobState::Pending);
        let _ = wide;
    }

    #[test]
    fn power_still_gates_backfill() {
        let mut s = BackfillScheduler::new(
            NodePool::new(8),
            PowerLedger::new(Watts(4.0 * 240.0)),
            Watts(240.0),
        );
        s.submit(JobSpec::new("head", 7)); // blocked on nodes? no: 7 ≤ 8 but power 7×240 > 960
        s.submit(JobSpec::new("greedy", 5)); // also power-blocked (5×240 > 960)
        let lean = s.submit(JobSpec::new("lean", 5).with_power_hint(Watts(150.0)));
        let events = s.tick();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == lean));
    }

    #[test]
    fn head_retains_priority_when_it_fits() {
        let mut s = scheduler(8);
        let a = s.submit(JobSpec::new("a", 3));
        let b = s.submit(JobSpec::new("b", 3));
        let events = s.tick();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        assert!(matches!(&events[1], SchedulerEvent::Started { job, .. } if *job == b));
        assert_eq!(s.backfilled_count(), 0);
    }

    #[test]
    fn utilization_beats_fifo_on_a_blocking_pattern() {
        // FIFO leaves 3 nodes idle behind an 8-wide head; backfill fills
        // them.
        let mut bf = scheduler(8);
        bf.submit(JobSpec::new("running", 5));
        bf.tick();
        bf.submit(JobSpec::new("head", 8));
        bf.submit(JobSpec::new("filler", 3));
        bf.tick();
        assert_eq!(bf.free_nodes(), 0, "backfill fills the stranded nodes");

        let mut fifo = crate::scheduler::FifoScheduler::new(
            NodePool::new(8),
            PowerLedger::new(Watts(8.0 * 240.0)),
            Watts(240.0),
        );
        fifo.submit(JobSpec::new("running", 5));
        fifo.tick();
        fifo.submit(JobSpec::new("head", 8));
        fifo.submit(JobSpec::new("filler", 3));
        fifo.tick();
        assert_eq!(fifo.free_nodes(), 3, "FIFO strands the nodes");
    }

    #[test]
    fn completion_lets_the_head_through() {
        let mut s = scheduler(8);
        let wide = s.submit(JobSpec::new("wide", 6));
        s.tick();
        let head = s.submit(JobSpec::new("head", 7));
        let small = s.submit(JobSpec::new("small", 2));
        s.tick();
        s.complete(wide);
        s.complete(small);
        let events = s.tick();
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == head));
    }

    #[test]
    fn node_failure_parity_with_fifo() {
        // The satellite fix: a node dying under a backfilled schedule takes
        // the same degrade path (drain, shrink, reclaim) FIFO does.
        let mut s = scheduler(8);
        let wide = s.submit(JobSpec::new("wide", 6).with_power_hint(Watts(120.0)));
        s.tick();
        s.submit(JobSpec::new("blocked", 7));
        let small = s.submit(JobSpec::new("small", 2).with_power_hint(Watts(120.0)));
        s.tick();
        assert_eq!(s.backfilled_count(), 1);

        let held = s.job(small).unwrap().nodes.clone();
        let events = s.fail_node(held[0]);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            SchedulerEvent::NodeFailed { node, job: Some(j) } if node == held[0] && j == small
        ));
        assert!(matches!(
            events[1],
            SchedulerEvent::JobDegraded { job, remaining: 1, reclaimed, .. }
                if job == small && reclaimed == Watts(120.0)
        ));
        assert_eq!(s.ledger().reservation(small), Some(Watts(120.0)));
        let _ = wide;
    }

    #[test]
    fn requeue_path_restarts_via_backfill() {
        let mut s = scheduler(8);
        let a = s.submit(JobSpec::new("a", 2).with_power_hint(Watts(100.0)));
        s.tick();
        let held = s.job(a).unwrap().nodes.clone();
        let events = s.fail_node_requeue(held[1]);
        assert!(matches!(
            events[1],
            SchedulerEvent::Requeued { job, released: 2, .. } if job == a
        ));
        assert_eq!(s.job(a).unwrap().state, JobState::Pending);
        assert_eq!(s.ledger().reserved(), Watts::ZERO);
        s.enqueue(a);
        let events = s.tick();
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
    }
}
