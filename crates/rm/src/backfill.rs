//! A conservative backfill scheduler.
//!
//! Strict FIFO strands nodes whenever the head of the queue is wide: a
//! 512-node job at the head blocks a 4-node job even though nodes sit
//! idle. EASY-style backfill lets later jobs jump the queue *if* they fit
//! right now — conservatively here: a job may backfill only when it also
//! fits the power ledger, so the power guarantee of the FIFO scheduler is
//! preserved. This is the scheduler the facility simulation can swap in to
//! study utilization-vs-fairness at the site level.

use crate::budget::PowerLedger;
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::pool::NodePool;
use crate::scheduler::{SchedulerEvent, JOBS_COMPLETED, JOBS_STARTED, JOBS_SUBMITTED};
use pmstack_obs::EventKind;
use pmstack_simhw::Watts;
use std::collections::{HashMap, VecDeque};

/// Observability: jobs started out of queue order by backfill.
static JOBS_BACKFILLED: pmstack_obs::StaticCounter =
    pmstack_obs::StaticCounter::new("rm.jobs.backfilled");

/// FIFO-with-backfill over a node pool and power ledger.
#[derive(Debug)]
pub struct BackfillScheduler {
    pool: NodePool,
    ledger: PowerLedger,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
    default_per_node: Watts,
    /// Jobs started out of order (observability for fairness studies).
    backfilled: usize,
}

impl BackfillScheduler {
    /// A scheduler over `pool` and `ledger` with a default per-node power
    /// reservation for jobs without a hint.
    pub fn new(pool: NodePool, ledger: PowerLedger, default_per_node: Watts) -> Self {
        Self {
            pool,
            ledger,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_id: 1,
            default_per_node,
            backfilled: 0,
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        JOBS_SUBMITTED.inc();
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(id, Job::pending(id, spec));
        self.queue.push_back(id);
        id
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Nodes still free.
    pub fn free_nodes(&self) -> usize {
        self.pool.available()
    }

    /// The power ledger.
    pub fn ledger(&self) -> &PowerLedger {
        &self.ledger
    }

    /// How many jobs have started out of queue order.
    pub fn backfilled_count(&self) -> usize {
        self.backfilled
    }

    /// Start jobs: the head of the queue whenever it fits, then — when the
    /// head is stuck — any later job that fits both nodes and power.
    pub fn tick(&mut self) -> Vec<SchedulerEvent> {
        let mut events = Vec::new();
        loop {
            let mut started_any = false;
            let ids: Vec<JobId> = self.queue.iter().copied().collect();
            for (pos, id) in ids.iter().enumerate() {
                let (nodes_needed, per_node) = {
                    let job = &self.jobs[id];
                    (
                        job.spec.nodes,
                        job.spec
                            .power_hint_per_node
                            .unwrap_or(self.default_per_node),
                    )
                };
                let power = per_node * nodes_needed as f64;
                if self.pool.available() < nodes_needed || self.ledger.reserve(*id, power).is_err()
                {
                    // Head-of-queue blocked: later jobs may still backfill,
                    // so keep scanning.
                    continue;
                }
                let nodes = self
                    .pool
                    .allocate(nodes_needed)
                    .expect("availability checked above");
                let job = self.jobs.get_mut(id).expect("queued job exists");
                job.start(nodes.clone());
                job.power_budget = Some(power);
                self.queue.retain(|q| q != id);
                JOBS_STARTED.inc();
                if pos > 0 {
                    self.backfilled += 1;
                    JOBS_BACKFILLED.inc();
                    pmstack_obs::event(f64::NAN, EventKind::JobBackfilled { job: id.0 });
                }
                pmstack_obs::event(
                    f64::NAN,
                    EventKind::JobStarted {
                        job: id.0,
                        nodes: nodes.len() as u64,
                        power_w: power.value(),
                    },
                );
                events.push(SchedulerEvent::Started {
                    job: *id,
                    nodes,
                    power,
                });
                started_any = true;
                break; // restart the scan: positions shifted
            }
            if !started_any {
                return events;
            }
        }
    }

    /// Mark a running job finished, returning its resources.
    pub fn complete(&mut self, id: JobId) -> SchedulerEvent {
        let job = self.jobs.get_mut(&id).expect("completing unknown job");
        assert_eq!(job.state, JobState::Running);
        let nodes = job.complete();
        self.pool.release(nodes);
        self.ledger.release(id);
        JOBS_COMPLETED.inc();
        pmstack_obs::event(f64::NAN, EventKind::JobCompleted { job: id.0 });
        SchedulerEvent::Completed { job: id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize) -> BackfillScheduler {
        BackfillScheduler::new(
            NodePool::new(nodes),
            PowerLedger::new(Watts(nodes as f64 * 240.0)),
            Watts(240.0),
        )
    }

    #[test]
    fn backfills_past_a_wide_head() {
        let mut s = scheduler(8);
        let wide = s.submit(JobSpec::new("wide", 6));
        s.tick();
        assert_eq!(s.free_nodes(), 2);
        // A 7-node job blocks; a 2-node job behind it backfills.
        let blocked = s.submit(JobSpec::new("blocked", 7));
        let small = s.submit(JobSpec::new("small", 2));
        let events = s.tick();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == small));
        assert_eq!(s.backfilled_count(), 1);
        assert_eq!(s.job(blocked).unwrap().state, JobState::Pending);
        let _ = wide;
    }

    #[test]
    fn power_still_gates_backfill() {
        let mut s = BackfillScheduler::new(
            NodePool::new(8),
            PowerLedger::new(Watts(4.0 * 240.0)),
            Watts(240.0),
        );
        s.submit(JobSpec::new("head", 7)); // blocked on nodes? no: 7 ≤ 8 but power 7×240 > 960
        s.submit(JobSpec::new("greedy", 5)); // also power-blocked (5×240 > 960)
        let lean = s.submit(JobSpec::new("lean", 5).with_power_hint(Watts(150.0)));
        let events = s.tick();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == lean));
    }

    #[test]
    fn head_retains_priority_when_it_fits() {
        let mut s = scheduler(8);
        let a = s.submit(JobSpec::new("a", 3));
        let b = s.submit(JobSpec::new("b", 3));
        let events = s.tick();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == a));
        assert!(matches!(&events[1], SchedulerEvent::Started { job, .. } if *job == b));
        assert_eq!(s.backfilled_count(), 0);
    }

    #[test]
    fn utilization_beats_fifo_on_a_blocking_pattern() {
        // FIFO leaves 3 nodes idle behind an 8-wide head; backfill fills
        // them.
        let mut bf = scheduler(8);
        bf.submit(JobSpec::new("running", 5));
        bf.tick();
        bf.submit(JobSpec::new("head", 8));
        bf.submit(JobSpec::new("filler", 3));
        bf.tick();
        assert_eq!(bf.free_nodes(), 0, "backfill fills the stranded nodes");

        let mut fifo = crate::scheduler::FifoScheduler::new(
            NodePool::new(8),
            PowerLedger::new(Watts(8.0 * 240.0)),
            Watts(240.0),
        );
        fifo.submit(JobSpec::new("running", 5));
        fifo.tick();
        fifo.submit(JobSpec::new("head", 8));
        fifo.submit(JobSpec::new("filler", 3));
        fifo.tick();
        assert_eq!(fifo.free_nodes(), 3, "FIFO strands the nodes");
    }

    #[test]
    fn completion_lets_the_head_through() {
        let mut s = scheduler(8);
        let wide = s.submit(JobSpec::new("wide", 6));
        s.tick();
        let head = s.submit(JobSpec::new("head", 7));
        let small = s.submit(JobSpec::new("small", 2));
        s.tick();
        s.complete(wide);
        s.complete(small);
        let events = s.tick();
        assert!(matches!(&events[0], SchedulerEvent::Started { job, .. } if *job == head));
    }
}
