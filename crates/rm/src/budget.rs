//! The system-wide power ledger.
//!
//! The resource manager owns the site's deliverable power capacity
//! (§I: "power delivery infrastructure must ensure that a site's total power
//! consumption does not exceed the deliverable power capacity") and accounts
//! every watt it grants to jobs against it.

use crate::job::JobId;
use pmstack_obs::StaticFloatCounter;
use pmstack_simhw::Watts;
use std::collections::HashMap;
use std::fmt;

/// Observability: total watts granted through successful reservations
/// (gross — re-reservations count their full new amount).
static WATTS_RESERVED: StaticFloatCounter = StaticFloatCounter::new("rm.watts.reserved");
/// Observability: total watts reclaimed from degraded jobs.
static WATTS_RECLAIMED: StaticFloatCounter = StaticFloatCounter::new("rm.watts.reclaimed");

/// Error returned when a reservation would overcommit the system budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverCommit {
    /// Watts requested.
    pub requested: Watts,
    /// Watts still unreserved.
    pub available: Watts,
}

impl fmt::Display for OverCommit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power reservation of {} exceeds available {}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OverCommit {}

/// Tracks the system power budget and per-job reservations.
#[derive(Debug, Clone)]
pub struct PowerLedger {
    system_budget: Watts,
    reservations: HashMap<JobId, Watts>,
}

impl PowerLedger {
    /// A ledger over the given system budget.
    pub fn new(system_budget: Watts) -> Self {
        Self {
            system_budget,
            reservations: HashMap::new(),
        }
    }

    /// The total system budget.
    pub fn system_budget(&self) -> Watts {
        self.system_budget
    }

    /// Move the system budget (a diurnal tariff change or a grid-price
    /// shock). Existing reservations are *not* clamped — admission control
    /// is the ledger's job, eviction is the caller's — so the return value
    /// is the oversubscription the caller must now resolve: watts by which
    /// current reservations exceed the new budget (zero when they fit).
    pub fn set_system_budget(&mut self, budget: Watts) -> Watts {
        assert!(budget.value() >= 0.0, "budgets are non-negative");
        self.system_budget = budget;
        Watts((self.reserved().value() - budget.value()).max(0.0))
    }

    /// Watts currently reserved across all jobs.
    pub fn reserved(&self) -> Watts {
        self.reservations.values().copied().sum()
    }

    /// Watts still unreserved.
    pub fn available(&self) -> Watts {
        self.system_budget - self.reserved()
    }

    /// A job's current reservation.
    pub fn reservation(&self, job: JobId) -> Option<Watts> {
        self.reservations.get(&job).copied()
    }

    /// Reserve `watts` for `job` (replacing any prior reservation). Fails
    /// if the new total would exceed the system budget; admission control,
    /// not clamping, because an unnoticed clamp is exactly the cross-layer
    /// conflict the paper warns about.
    pub fn reserve(&mut self, job: JobId, watts: Watts) -> Result<(), OverCommit> {
        let prior = self.reservation(job).unwrap_or(Watts::ZERO);
        let available = self.available() + prior;
        if watts > available + Watts(1e-9) {
            return Err(OverCommit {
                requested: watts,
                available,
            });
        }
        self.reservations.insert(job, watts);
        WATTS_RESERVED.add(watts.value());
        Ok(())
    }

    /// Fraction of the system budget currently reserved (0 when the budget
    /// is zero). The admission plane's saturation signal: the daemon
    /// exports it as a gauge and sheds load as it approaches 1.
    pub fn utilization(&self) -> f64 {
        let budget = self.system_budget.value();
        if budget <= 0.0 {
            return if self.reservations.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        self.reserved().value() / budget
    }

    /// The degraded-admission path: reserve *up to* `want` watts for `job`,
    /// settling for whatever is available as long as it is at least
    /// `floor`. Returns the watts actually reserved. Fails — leaving the
    /// ledger untouched — when even `floor` does not fit; the caller turns
    /// that into backpressure (the daemon's 503) rather than queueing an
    /// unsatisfiable request.
    ///
    /// Unlike [`Self::reserve`], a partial grant is not an unnoticed clamp:
    /// the returned watts *are* the granted amount, and the caller scales
    /// its per-host caps to match before programming anything.
    pub fn reserve_upto(
        &mut self,
        job: JobId,
        want: Watts,
        floor: Watts,
    ) -> Result<Watts, OverCommit> {
        debug_assert!(floor <= want + Watts(1e-9), "floor must not exceed want");
        let prior = self.reservation(job).unwrap_or(Watts::ZERO);
        let available = self.available() + prior;
        if floor > available + Watts(1e-9) {
            return Err(OverCommit {
                requested: floor,
                available,
            });
        }
        let grant = Watts(want.value().min(available.value()).max(0.0));
        self.reservations.insert(job, grant);
        WATTS_RESERVED.add(grant.value());
        Ok(grant)
    }

    /// Release a job's reservation (idempotent).
    pub fn release(&mut self, job: JobId) {
        self.reservations.remove(&job);
    }

    /// Reclaim up to `watts` from a job's reservation — the accounting step
    /// when a node dies under the job and its share of power returns to the
    /// system. Returns the watts actually reclaimed (zero for an unknown
    /// job; never more than the job held, so the ledger cannot go negative).
    pub fn reclaim(&mut self, job: JobId, watts: Watts) -> Watts {
        let Some(held) = self.reservations.get_mut(&job) else {
            return Watts::ZERO;
        };
        let reclaimed = Watts(watts.value().clamp(0.0, held.value()));
        WATTS_RECLAIMED.add(reclaimed.value());
        *held -= reclaimed;
        if held.value() <= 0.0 {
            self.reservations.remove(&job);
        }
        reclaimed
    }

    /// True if observed total power `usage` fits the system budget with the
    /// given relative tolerance.
    pub fn within_budget(&self, usage: Watts, tolerance: f64) -> bool {
        usage.value() <= self.system_budget.value() * (1.0 + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(400.0)).unwrap();
        ledger.reserve(JobId(2), Watts(500.0)).unwrap();
        assert_eq!(ledger.reserved(), Watts(900.0));
        assert_eq!(ledger.available(), Watts(100.0));
        ledger.release(JobId(1));
        assert_eq!(ledger.available(), Watts(500.0));
    }

    #[test]
    fn overcommit_is_rejected() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(800.0)).unwrap();
        let err = ledger.reserve(JobId(2), Watts(300.0)).unwrap_err();
        assert_eq!(err.requested, Watts(300.0));
        assert_eq!(err.available, Watts(200.0));
        // Failed reservation leaves the ledger unchanged.
        assert_eq!(ledger.reserved(), Watts(800.0));
    }

    #[test]
    fn re_reservation_replaces_not_accumulates() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(700.0)).unwrap();
        // Shrinking and regrowing the same job's share must be possible.
        ledger.reserve(JobId(1), Watts(900.0)).unwrap();
        assert_eq!(ledger.reserved(), Watts(900.0));
    }

    #[test]
    fn within_budget_tolerance() {
        let ledger = PowerLedger::new(Watts(1000.0));
        assert!(ledger.within_budget(Watts(1000.0), 0.0));
        assert!(ledger.within_budget(Watts(1009.0), 0.01));
        assert!(!ledger.within_budget(Watts(1020.0), 0.01));
    }

    #[test]
    fn reclaim_returns_capped_watts() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(600.0)).unwrap();
        // Partial reclaim frees exactly the claimed share.
        assert_eq!(ledger.reclaim(JobId(1), Watts(150.0)), Watts(150.0));
        assert_eq!(ledger.reservation(JobId(1)), Some(Watts(450.0)));
        assert_eq!(ledger.available(), Watts(550.0));
        // Over-reclaim caps at what the job held and clears the entry.
        assert_eq!(ledger.reclaim(JobId(1), Watts(9999.0)), Watts(450.0));
        assert_eq!(ledger.reservation(JobId(1)), None);
        assert_eq!(ledger.available(), Watts(1000.0));
        // Unknown job reclaims nothing.
        assert_eq!(ledger.reclaim(JobId(42), Watts(10.0)), Watts::ZERO);
    }

    #[test]
    fn budget_moves_report_oversubscription() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(600.0)).unwrap();
        // Raising the budget is always clean.
        assert_eq!(ledger.set_system_budget(Watts(1500.0)), Watts::ZERO);
        assert_eq!(ledger.system_budget(), Watts(1500.0));
        // A shock below current reservations reports the deficit …
        assert_eq!(ledger.set_system_budget(Watts(400.0)), Watts(200.0));
        // … and reservations are untouched until the caller evicts.
        assert_eq!(ledger.reservation(JobId(1)), Some(Watts(600.0)));
        ledger.release(JobId(1));
        assert_eq!(ledger.set_system_budget(Watts(400.0)), Watts::ZERO);
    }

    #[test]
    fn reserve_upto_grants_partially_down_to_the_floor() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(700.0)).unwrap();
        // Full want fits nothing, but 300 W are still available ≥ floor.
        let grant = ledger
            .reserve_upto(JobId(2), Watts(500.0), Watts(200.0))
            .unwrap();
        assert_eq!(grant, Watts(300.0));
        assert_eq!(ledger.reservation(JobId(2)), Some(Watts(300.0)));
        assert_eq!(ledger.available(), Watts::ZERO);
        // Below the floor the ledger is untouched.
        let err = ledger
            .reserve_upto(JobId(3), Watts(500.0), Watts(100.0))
            .unwrap_err();
        assert_eq!(err.requested, Watts(100.0));
        assert_eq!(ledger.reserved(), Watts(1000.0));
        assert!(ledger.reservation(JobId(3)).is_none());
        // A fitting want is granted in full.
        ledger.release(JobId(1));
        let grant = ledger
            .reserve_upto(JobId(3), Watts(500.0), Watts(100.0))
            .unwrap();
        assert_eq!(grant, Watts(500.0));
    }

    #[test]
    fn reserve_upto_rereservation_counts_the_prior_grant() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        ledger.reserve(JobId(1), Watts(900.0)).unwrap();
        // Re-reserving job 1 can use its own 900 W again.
        let grant = ledger
            .reserve_upto(JobId(1), Watts(950.0), Watts(900.0))
            .unwrap();
        assert_eq!(grant, Watts(950.0));
        assert_eq!(ledger.reserved(), Watts(950.0));
    }

    #[test]
    fn utilization_tracks_reserved_fraction() {
        let mut ledger = PowerLedger::new(Watts(1000.0));
        assert_eq!(ledger.utilization(), 0.0);
        ledger.reserve(JobId(1), Watts(250.0)).unwrap();
        assert!((ledger.utilization() - 0.25).abs() < 1e-12);
        // A zero-budget ledger is saturated iff anything is reserved.
        let empty = PowerLedger::new(Watts::ZERO);
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut ledger = PowerLedger::new(Watts(100.0));
        ledger.release(JobId(9));
        ledger.reserve(JobId(9), Watts(50.0)).unwrap();
        ledger.release(JobId(9));
        ledger.release(JobId(9));
        assert_eq!(ledger.available(), Watts(100.0));
    }
}
