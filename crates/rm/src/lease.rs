//! Per-node heartbeat leases: the failure *detector*.
//!
//! The fault plane kills nodes; nobody tells the resource manager. What the
//! RM actually observes is telemetry going quiet — so each managed node
//! holds a lease that its heartbeats renew, and a lease that outlives
//! [`LeaseTable::timeout`] ticks without a beat declares the node dead.
//! That declaration is the trigger for the whole failure path: drain the
//! node, reclaim its watts, kill and requeue the job on it.
//!
//! The detector is deliberately fallible in the same way real ones are: a
//! long telemetry blackout on a *live* node still expires the lease, and
//! the node gets drained anyway (a false positive the campaign later
//! repairs by restoring the node when its telemetry resumes). Tightening
//! the timeout trades detection latency against exactly those false kills.

use pmstack_obs::StaticCounter;
use pmstack_simhw::NodeId;
use std::collections::BTreeMap;

/// Observability: leases that expired and declared their node dead.
pub(crate) static LEASES_EXPIRED: StaticCounter = StaticCounter::new("rm.leases.expired");

/// Heartbeat lease table over abstract monotonic ticks (the campaign uses
/// simulated minutes). Deterministic: expiry scans are in `NodeId` order.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    timeout: u64,
    last_beat: BTreeMap<NodeId, u64>,
}

impl LeaseTable {
    /// A table declaring nodes dead after `timeout` ticks of silence.
    pub fn new(timeout: u64) -> Self {
        assert!(timeout > 0, "a zero timeout kills every node instantly");
        Self {
            timeout,
            last_beat: BTreeMap::new(),
        }
    }

    /// The configured timeout, ticks.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Number of nodes currently under lease.
    pub fn tracked(&self) -> usize {
        self.last_beat.len()
    }

    /// Begin (or re-begin) tracking `node`, treating `now` as its first
    /// heartbeat.
    pub fn track(&mut self, node: NodeId, now: u64) {
        self.last_beat.insert(node, now);
    }

    /// Record a heartbeat from `node`. Beats from untracked nodes are
    /// ignored — a drained node's stale telemetry must not resurrect its
    /// lease.
    pub fn beat(&mut self, node: NodeId, now: u64) {
        if let Some(t) = self.last_beat.get_mut(&node) {
            *t = (*t).max(now);
        }
    }

    /// Stop tracking `node` (it completed drain or was handed back).
    pub fn forget(&mut self, node: NodeId) {
        self.last_beat.remove(&node);
    }

    /// Ticks since `node`'s last beat, if tracked.
    pub fn staleness(&self, node: NodeId, now: u64) -> Option<u64> {
        self.last_beat.get(&node).map(|t| now.saturating_sub(*t))
    }

    /// Collect every node whose lease has outlived the timeout at `now`,
    /// in ascending `NodeId` order, removing each from the table — a node
    /// is declared dead exactly once.
    pub fn expire(&mut self, now: u64) -> Vec<NodeId> {
        let dead: Vec<NodeId> = self
            .last_beat
            .iter()
            .filter(|(_, &t)| now.saturating_sub(t) > self.timeout)
            .map(|(&n, _)| n)
            .collect();
        for node in &dead {
            self.last_beat.remove(node);
            LEASES_EXPIRED.inc();
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_keep_leases_alive() {
        let mut t = LeaseTable::new(15);
        t.track(NodeId(0), 0);
        t.track(NodeId(1), 0);
        for now in (5..=30).step_by(5) {
            t.beat(NodeId(0), now);
        }
        let dead = t.expire(30);
        assert_eq!(dead, vec![NodeId(1)], "only the silent node expires");
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn expiry_is_exactly_once_and_ordered() {
        let mut t = LeaseTable::new(10);
        t.track(NodeId(3), 0);
        t.track(NodeId(1), 0);
        t.track(NodeId(2), 5);
        assert_eq!(t.expire(11), vec![NodeId(1), NodeId(3)]);
        assert_eq!(t.expire(11), Vec::<NodeId>::new(), "already declared");
        assert_eq!(t.expire(16), vec![NodeId(2)]);
    }

    #[test]
    fn boundary_is_strictly_greater_than_timeout() {
        let mut t = LeaseTable::new(10);
        t.track(NodeId(0), 0);
        assert!(t.expire(10).is_empty(), "exactly timeout: still alive");
        assert_eq!(t.expire(11), vec![NodeId(0)]);
    }

    #[test]
    fn untracked_beats_do_not_resurrect() {
        let mut t = LeaseTable::new(5);
        t.track(NodeId(0), 0);
        t.forget(NodeId(0));
        t.beat(NodeId(0), 100);
        assert_eq!(t.tracked(), 0);
        assert!(t.expire(200).is_empty());
    }

    #[test]
    fn staleness_reports_silence() {
        let mut t = LeaseTable::new(5);
        t.track(NodeId(0), 10);
        assert_eq!(t.staleness(NodeId(0), 14), Some(4));
        assert_eq!(t.staleness(NodeId(1), 14), None);
        // Out-of-order beats never move time backwards.
        t.beat(NodeId(0), 8);
        assert_eq!(t.staleness(NodeId(0), 14), Some(4));
    }
}
