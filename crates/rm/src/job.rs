//! Jobs as the resource manager sees them.

use pmstack_simhw::{NodeId, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job within one resource-manager instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What a user submits: a node count plus an optional power hint (the
/// `Precharacterized` policy's per-node cap travels here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name (the workload label in the paper's mixes).
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Optional user-provided per-node power cap hint.
    pub power_hint_per_node: Option<Watts>,
}

impl JobSpec {
    /// A spec with no power hint.
    pub fn new(name: impl Into<String>, nodes: usize) -> Self {
        Self {
            name: name.into(),
            nodes,
            power_hint_per_node: None,
        }
    }

    /// Attach a per-node power hint.
    pub fn with_power_hint(mut self, per_node: Watts) -> Self {
        self.power_hint_per_node = Some(per_node);
        self
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Queued, waiting for nodes.
    Pending,
    /// Holding nodes, executing.
    Running,
    /// Finished; nodes returned.
    Completed,
}

/// A job record tracked by the resource manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// The job's identifier.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Nodes held while running (empty otherwise).
    pub nodes: Vec<NodeId>,
    /// The job-level power budget currently granted by the active policy.
    pub power_budget: Option<Watts>,
}

impl Job {
    /// A pending job from a spec.
    pub fn pending(id: JobId, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            state: JobState::Pending,
            nodes: Vec::new(),
            power_budget: None,
        }
    }

    /// Transition to running on the given nodes.
    ///
    /// # Panics
    /// If the job is not pending or the node count mismatches the spec —
    /// both are scheduler bugs, not runtime conditions.
    pub fn start(&mut self, nodes: Vec<NodeId>) {
        assert_eq!(self.state, JobState::Pending, "only pending jobs start");
        assert_eq!(nodes.len(), self.spec.nodes, "node grant mismatches spec");
        self.nodes = nodes;
        self.state = JobState::Running;
    }

    /// Transition to completed, releasing the nodes to the caller.
    pub fn complete(&mut self) -> Vec<NodeId> {
        assert_eq!(self.state, JobState::Running, "only running jobs complete");
        self.state = JobState::Completed;
        std::mem::take(&mut self.nodes)
    }

    /// Transition a running job back to pending, releasing its nodes to the
    /// caller — the kill half of checkpoint/restart (node death under the
    /// job) or a budget-shock preemption. The job keeps its identity and
    /// spec and can [`Job::start`] again on a fresh grant.
    pub fn requeue(&mut self) -> Vec<NodeId> {
        assert_eq!(self.state, JobState::Running, "only running jobs requeue");
        self.state = JobState::Pending;
        std::mem::take(&mut self.nodes)
    }

    /// Drop a failed node from a running job's grant, returning `true` if
    /// the job held it. The job keeps running degraded on the survivors;
    /// the scheduler decides what happens when none remain.
    pub fn lose_node(&mut self, id: NodeId) -> bool {
        if self.state != JobState::Running {
            return false;
        }
        let before = self.nodes.len();
        self.nodes.retain(|&n| n != id);
        self.nodes.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 2));
        assert_eq!(job.state, JobState::Pending);
        job.start(vec![NodeId(0), NodeId(1)]);
        assert_eq!(job.state, JobState::Running);
        let released = job.complete();
        assert_eq!(released.len(), 2);
        assert_eq!(job.state, JobState::Completed);
        assert!(job.nodes.is_empty());
    }

    #[test]
    #[should_panic(expected = "node grant mismatches spec")]
    fn start_rejects_wrong_grant() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 2));
        job.start(vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "only running jobs complete")]
    fn complete_requires_running() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 1));
        job.complete();
    }

    #[test]
    fn lose_node_shrinks_running_grant() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 2));
        assert!(!job.lose_node(NodeId(0)), "pending jobs hold nothing");
        job.start(vec![NodeId(0), NodeId(1)]);
        assert!(job.lose_node(NodeId(0)));
        assert!(!job.lose_node(NodeId(0)), "already lost");
        assert_eq!(job.nodes, vec![NodeId(1)]);
        assert_eq!(job.state, JobState::Running);
    }

    #[test]
    fn requeue_returns_to_pending_and_releases_nodes() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 2));
        job.start(vec![NodeId(0), NodeId(1)]);
        let released = job.requeue();
        assert_eq!(released, vec![NodeId(0), NodeId(1)]);
        assert_eq!(job.state, JobState::Pending);
        assert!(job.nodes.is_empty());
        // It can start again on a fresh grant.
        job.start(vec![NodeId(2), NodeId(3)]);
        assert_eq!(job.state, JobState::Running);
    }

    #[test]
    #[should_panic(expected = "only running jobs requeue")]
    fn requeue_requires_running() {
        let mut job = Job::pending(JobId(1), JobSpec::new("w1", 1));
        job.requeue();
    }

    #[test]
    fn power_hint_travels_with_spec() {
        let spec = JobSpec::new("hungry", 4).with_power_hint(Watts(230.0));
        assert_eq!(spec.power_hint_per_node, Some(Watts(230.0)));
    }
}
