//! Property-based tests of resource-manager conservation invariants.

use pmstack_rm::{
    FifoScheduler, JobSpec, NodePool, PowerLedger, RetryPolicy, Scheduler, SchedulerEvent,
};
use pmstack_simhw::Watts;
use proptest::prelude::*;
use std::collections::HashSet;

/// No node is held by two jobs, the ledger matches the sum of per-job
/// reservations exactly, and nothing exceeds the budget.
fn assert_conserved(s: &dyn Scheduler, budget: Watts) -> Result<(), TestCaseError> {
    let mut held: HashSet<usize> = HashSet::new();
    let mut reserved_sum = 0.0;
    for id in s.running() {
        let job = s.job(id).expect("running job exists");
        for n in &job.nodes {
            prop_assert!(held.insert(n.0), "node {n} held by two jobs");
        }
        reserved_sum += s
            .ledger()
            .reservation(id)
            .expect("running job holds a reservation")
            .value();
    }
    prop_assert!(
        (s.ledger().reserved().value() - reserved_sum).abs() < 1e-6,
        "ledger reserved {} != sum of running reservations {}",
        s.ledger().reserved(),
        reserved_sum
    );
    prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
    Ok(())
}

proptest! {
    /// Under any submission/completion schedule, nodes are never double-
    /// allocated, the ledger never overcommits, and completing everything
    /// restores full capacity.
    #[test]
    fn scheduler_conserves_resources(
        sizes in prop::collection::vec(1usize..8, 1..12),
        pool_size in 8usize..24,
        budget_per_node in 140.0f64..240.0,
    ) {
        let budget = Watts(budget_per_node * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(budget_per_node),
        );
        let ids: Vec<_> = sizes
            .iter()
            .map(|&n| s.submit(JobSpec::new(format!("j{n}"), n)))
            .collect();

        let mut held: HashSet<usize> = HashSet::new();
        let mut running = Vec::new();
        loop {
            for ev in s.tick() {
                if let SchedulerEvent::Started { job, nodes, .. } = ev {
                    for n in &nodes {
                        prop_assert!(held.insert(n.0), "node {n} double-allocated");
                    }
                    running.push((job, nodes));
                }
            }
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
            match running.pop() {
                Some((job, nodes)) => {
                    s.complete(job);
                    for n in nodes {
                        held.remove(&n.0);
                    }
                }
                None => break,
            }
        }
        // Everything that fit eventually ran and completed.
        prop_assert_eq!(s.free_nodes(), pool_size);
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
        let completed = ids
            .iter()
            .filter(|id| {
                matches!(
                    s.job(**id).map(|j| j.state),
                    Some(pmstack_rm::JobState::Completed)
                )
            })
            .count();
        let fits = sizes.iter().filter(|&&n| n <= pool_size).count();
        prop_assert_eq!(completed, fits, "every feasible job completed");
    }

    /// Fault accounting: under any schedule of starts and node deaths, the
    /// ledger never reports more available power than the system budget,
    /// reservations never go negative, and the pool never frees more nodes
    /// than it manages. This is the reserve → fail → reclaim invariant the
    /// resilience plane depends on.
    #[test]
    fn node_death_reclaims_without_overshooting(
        sizes in prop::collection::vec(1usize..6, 1..10),
        death_picks in prop::collection::vec(0usize..64, 1..24),
        pool_size in 6usize..20,
    ) {
        let budget = Watts(200.0 * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(200.0),
        );
        for (i, &n) in sizes.iter().enumerate() {
            s.submit(JobSpec::new(format!("j{i}"), n));
        }
        s.tick();
        for &pick in &death_picks {
            // Kill an arbitrary (possibly repeated, possibly unknown) node.
            let victim = pmstack_simhw::NodeId(pick % (pool_size + 2));
            for ev in s.fail_node(victim) {
                if let SchedulerEvent::JobDegraded { job, remaining, .. } = ev {
                    let j = s.job(job).expect("degraded job exists");
                    prop_assert_eq!(j.nodes.len(), remaining);
                    prop_assert!(remaining > 0);
                }
            }
            // Invariants hold after every single failure event…
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
            prop_assert!(s.ledger().available() <= budget + Watts(1e-6));
            prop_assert!(s.ledger().available() >= Watts(-1e-6));
            prop_assert!(s.free_nodes() <= pool_size);
            // …and the freed capacity may admit queued work.
            s.tick();
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
        }
        // Completing all survivors returns the ledger to zero reservations.
        for id in s.running() {
            s.complete(id);
        }
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
        prop_assert!(s.ledger().available() <= budget + Watts(1e-6));
    }

    /// Double release is a no-op: however many times a grant is returned,
    /// availability never exceeds the managed total.
    #[test]
    fn double_release_is_a_noop(
        pool_size in 2usize..16,
        take in 1usize..8,
        repeats in 2usize..5,
    ) {
        let mut pool = NodePool::new(pool_size);
        let take = take.min(pool_size);
        let grant = pool.allocate(take).expect("grant fits");
        for _ in 0..repeats {
            pool.release(grant.clone());
            prop_assert_eq!(pool.available(), pool_size);
            prop_assert_eq!(pool.total(), pool_size);
        }
    }

    /// The campaign's kill path: under any schedule of lease-style kills
    /// (`fail_node_requeue`) followed by re-admission (`enqueue` + tick),
    /// no node is ever double-allocated and no watt is ever double-
    /// reserved — the fail → requeue → restart cycle conserves resources
    /// at every step.
    #[test]
    fn requeue_restart_never_double_reserves(
        sizes in prop::collection::vec(1usize..6, 2..10),
        kills in prop::collection::vec(0usize..64, 1..16),
        pool_size in 8usize..20,
    ) {
        let budget = Watts(200.0 * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(200.0),
        );
        for (i, &n) in sizes.iter().enumerate() {
            s.submit(JobSpec::new(format!("j{i}"), n));
        }
        Scheduler::tick(&mut s);
        assert_conserved(&s, budget)?;
        for &pick in &kills {
            // Kill an arbitrary (possibly repeated, possibly already
            // drained, possibly free) node.
            let victim = pmstack_simhw::NodeId(pick % (pool_size + 2));
            let mut withdrawn = None;
            for ev in Scheduler::fail_node_requeue(&mut s, victim) {
                if let SchedulerEvent::Requeued { job, .. } = ev {
                    withdrawn = Some(job);
                }
            }
            assert_conserved(&s, budget)?;
            if let Some(job) = withdrawn {
                // The backoff elapsed: the job re-enters the queue and may
                // restart on surviving nodes.
                Scheduler::enqueue(&mut s, job);
            }
            Scheduler::tick(&mut s);
            assert_conserved(&s, budget)?;
        }
        // Whatever survived still balances when it all completes.
        for id in s.running() {
            s.complete(id);
        }
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
    }

    /// Backoff schedule: every granted delay is within `[0, cap_s]`, delays
    /// never shrink as attempts accumulate, and the kill switch fires at
    /// exactly `max_attempts` — for any policy shape.
    #[test]
    fn backoff_is_capped_monotone_and_kills_at_max(
        base_s in 1.0f64..2000.0,
        factor in 1.0f64..4.0,
        cap_s in 60.0f64..7200.0,
        max_attempts in 1u32..12,
    ) {
        let p = RetryPolicy { base_s, factor, cap_s, max_attempts };
        let mut prev = 0.0f64;
        for attempts in 0..max_attempts + 3 {
            match p.delay_for(attempts) {
                Some(d) => {
                    prop_assert!(attempts < max_attempts || attempts == 0,
                        "retry granted at attempt {attempts} past the kill switch");
                    prop_assert!(d >= 0.0);
                    prop_assert!(d <= cap_s + 1e-9, "delay {d} exceeds cap {cap_s}");
                    prop_assert!(d + 1e-9 >= prev, "delay shrank: {prev} -> {d}");
                    prev = d;
                    prop_assert!(p.allows_retry(attempts));
                }
                None => {
                    prop_assert!(attempts >= max_attempts,
                        "kill switch fired early at attempt {attempts}");
                    prop_assert!(!p.allows_retry(attempts));
                }
            }
        }
    }

    /// Ledger arithmetic: any sequence of reserve/release operations keeps
    /// reserved + available == system budget.
    #[test]
    fn ledger_conservation(ops in prop::collection::vec((0u64..6, 0.0f64..400.0), 1..40)) {
        let budget = Watts(1000.0);
        let mut ledger = PowerLedger::new(budget);
        for (job, w) in ops {
            let id = pmstack_rm::JobId(job);
            if w < 200.0 {
                let _ = ledger.reserve(id, Watts(w));
            } else {
                ledger.release(id);
            }
            let total = ledger.reserved() + ledger.available();
            prop_assert!((total.value() - budget.value()).abs() < 1e-6);
            prop_assert!(ledger.reserved() <= budget + Watts(1e-9));
        }
    }
}
