//! Property-based tests of resource-manager conservation invariants.

use pmstack_rm::{FifoScheduler, JobSpec, NodePool, PowerLedger, SchedulerEvent};
use pmstack_simhw::Watts;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Under any submission/completion schedule, nodes are never double-
    /// allocated, the ledger never overcommits, and completing everything
    /// restores full capacity.
    #[test]
    fn scheduler_conserves_resources(
        sizes in prop::collection::vec(1usize..8, 1..12),
        pool_size in 8usize..24,
        budget_per_node in 140.0f64..240.0,
    ) {
        let budget = Watts(budget_per_node * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(budget_per_node),
        );
        let ids: Vec<_> = sizes
            .iter()
            .map(|&n| s.submit(JobSpec::new(format!("j{n}"), n)))
            .collect();

        let mut held: HashSet<usize> = HashSet::new();
        let mut running = Vec::new();
        loop {
            for ev in s.tick() {
                if let SchedulerEvent::Started { job, nodes, .. } = ev {
                    for n in &nodes {
                        prop_assert!(held.insert(n.0), "node {n} double-allocated");
                    }
                    running.push((job, nodes));
                }
            }
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
            match running.pop() {
                Some((job, nodes)) => {
                    s.complete(job);
                    for n in nodes {
                        held.remove(&n.0);
                    }
                }
                None => break,
            }
        }
        // Everything that fit eventually ran and completed.
        prop_assert_eq!(s.free_nodes(), pool_size);
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
        let completed = ids
            .iter()
            .filter(|id| {
                matches!(
                    s.job(**id).map(|j| j.state),
                    Some(pmstack_rm::JobState::Completed)
                )
            })
            .count();
        let fits = sizes.iter().filter(|&&n| n <= pool_size).count();
        prop_assert_eq!(completed, fits, "every feasible job completed");
    }

    /// Ledger arithmetic: any sequence of reserve/release operations keeps
    /// reserved + available == system budget.
    #[test]
    fn ledger_conservation(ops in prop::collection::vec((0u64..6, 0.0f64..400.0), 1..40)) {
        let budget = Watts(1000.0);
        let mut ledger = PowerLedger::new(budget);
        for (job, w) in ops {
            let id = pmstack_rm::JobId(job);
            if w < 200.0 {
                let _ = ledger.reserve(id, Watts(w));
            } else {
                ledger.release(id);
            }
            let total = ledger.reserved() + ledger.available();
            prop_assert!((total.value() - budget.value()).abs() < 1e-6);
            prop_assert!(ledger.reserved() <= budget + Watts(1e-9));
        }
    }
}
