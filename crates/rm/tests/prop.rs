//! Property-based tests of resource-manager conservation invariants.

use pmstack_rm::{FifoScheduler, JobSpec, NodePool, PowerLedger, SchedulerEvent};
use pmstack_simhw::Watts;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Under any submission/completion schedule, nodes are never double-
    /// allocated, the ledger never overcommits, and completing everything
    /// restores full capacity.
    #[test]
    fn scheduler_conserves_resources(
        sizes in prop::collection::vec(1usize..8, 1..12),
        pool_size in 8usize..24,
        budget_per_node in 140.0f64..240.0,
    ) {
        let budget = Watts(budget_per_node * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(budget_per_node),
        );
        let ids: Vec<_> = sizes
            .iter()
            .map(|&n| s.submit(JobSpec::new(format!("j{n}"), n)))
            .collect();

        let mut held: HashSet<usize> = HashSet::new();
        let mut running = Vec::new();
        loop {
            for ev in s.tick() {
                if let SchedulerEvent::Started { job, nodes, .. } = ev {
                    for n in &nodes {
                        prop_assert!(held.insert(n.0), "node {n} double-allocated");
                    }
                    running.push((job, nodes));
                }
            }
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
            match running.pop() {
                Some((job, nodes)) => {
                    s.complete(job);
                    for n in nodes {
                        held.remove(&n.0);
                    }
                }
                None => break,
            }
        }
        // Everything that fit eventually ran and completed.
        prop_assert_eq!(s.free_nodes(), pool_size);
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
        let completed = ids
            .iter()
            .filter(|id| {
                matches!(
                    s.job(**id).map(|j| j.state),
                    Some(pmstack_rm::JobState::Completed)
                )
            })
            .count();
        let fits = sizes.iter().filter(|&&n| n <= pool_size).count();
        prop_assert_eq!(completed, fits, "every feasible job completed");
    }

    /// Fault accounting: under any schedule of starts and node deaths, the
    /// ledger never reports more available power than the system budget,
    /// reservations never go negative, and the pool never frees more nodes
    /// than it manages. This is the reserve → fail → reclaim invariant the
    /// resilience plane depends on.
    #[test]
    fn node_death_reclaims_without_overshooting(
        sizes in prop::collection::vec(1usize..6, 1..10),
        death_picks in prop::collection::vec(0usize..64, 1..24),
        pool_size in 6usize..20,
    ) {
        let budget = Watts(200.0 * pool_size as f64);
        let mut s = FifoScheduler::new(
            NodePool::new(pool_size),
            PowerLedger::new(budget),
            Watts(200.0),
        );
        for (i, &n) in sizes.iter().enumerate() {
            s.submit(JobSpec::new(format!("j{i}"), n));
        }
        s.tick();
        for &pick in &death_picks {
            // Kill an arbitrary (possibly repeated, possibly unknown) node.
            let victim = pmstack_simhw::NodeId(pick % (pool_size + 2));
            for ev in s.fail_node(victim) {
                if let SchedulerEvent::JobDegraded { job, remaining, .. } = ev {
                    let j = s.job(job).expect("degraded job exists");
                    prop_assert_eq!(j.nodes.len(), remaining);
                    prop_assert!(remaining > 0);
                }
            }
            // Invariants hold after every single failure event…
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
            prop_assert!(s.ledger().available() <= budget + Watts(1e-6));
            prop_assert!(s.ledger().available() >= Watts(-1e-6));
            prop_assert!(s.free_nodes() <= pool_size);
            // …and the freed capacity may admit queued work.
            s.tick();
            prop_assert!(s.ledger().reserved() <= budget + Watts(1e-6));
        }
        // Completing all survivors returns the ledger to zero reservations.
        for id in s.running() {
            s.complete(id);
        }
        prop_assert_eq!(s.ledger().reserved(), Watts::ZERO);
        prop_assert!(s.ledger().available() <= budget + Watts(1e-6));
    }

    /// Double release is a no-op: however many times a grant is returned,
    /// availability never exceeds the managed total.
    #[test]
    fn double_release_is_a_noop(
        pool_size in 2usize..16,
        take in 1usize..8,
        repeats in 2usize..5,
    ) {
        let mut pool = NodePool::new(pool_size);
        let take = take.min(pool_size);
        let grant = pool.allocate(take).expect("grant fits");
        for _ in 0..repeats {
            pool.release(grant.clone());
            prop_assert_eq!(pool.available(), pool_size);
            prop_assert_eq!(pool.total(), pool_size);
        }
    }

    /// Ledger arithmetic: any sequence of reserve/release operations keeps
    /// reserved + available == system budget.
    #[test]
    fn ledger_conservation(ops in prop::collection::vec((0u64..6, 0.0f64..400.0), 1..40)) {
        let budget = Watts(1000.0);
        let mut ledger = PowerLedger::new(budget);
        for (job, w) in ops {
            let id = pmstack_rm::JobId(job);
            if w < 200.0 {
                let _ = ledger.reserve(id, Watts(w));
            } else {
                ledger.release(id);
            }
            let total = ledger.reserved() + ledger.available();
            prop_assert!((total.value() - budget.value()).abs() < 1e-6);
            prop_assert!(ledger.reserved() <= budget + Watts(1e-9));
        }
    }
}
