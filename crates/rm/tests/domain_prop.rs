//! Property tests for the multi-domain [`DomainLedger`] against an
//! independent mirrored model.
//!
//! The mirror is a from-scratch transcription of the intended accounting
//! semantics over plain `f64`s — no shared code with the ledger — and the
//! property drives random interleavings of domain-aware
//! reserve/reserve_upto-style admission, release, per-domain reclaim and
//! domain shifts through both, asserting after **every** operation that
//!
//! * both sides agree on every job's node grant and per-domain split,
//! * Σ domain grants = node grant for every job,
//! * Σ node grants ≤ fleet budget,
//!
//! which is the containment chain the issue demands at every step.

use pmstack_rm::{DomainGrant, DomainLedger, JobId};
use pmstack_simhw::{RaplDomain, Watts};
use proptest::prelude::*;
use std::collections::HashMap;

const EPS: f64 = 1e-6;

/// The independent mirror: per-job `[pkg-rest, pp0, dram]` grants and the
/// budget, with the accounting rules written out longhand.
#[derive(Debug, Default)]
struct Mirror {
    budget: f64,
    grants: HashMap<u64, [f64; 3]>,
}

impl Mirror {
    fn reserved(&self) -> f64 {
        self.grants.values().map(|g| g.iter().sum::<f64>()).sum()
    }

    /// Degraded admission: grant min(Σ want, available) if ≥ floor holds,
    /// splitting proportionally with pkg-rest absorbing the remainder.
    fn reserve(&mut self, job: u64, want: [f64; 3], floor: f64) -> Option<[f64; 3]> {
        let prior: f64 = self.grants.get(&job).map_or(0.0, |g| g.iter().sum());
        let available = self.budget - self.reserved() + prior;
        if floor > available + 1e-9 {
            return None;
        }
        let total: f64 = want.iter().sum();
        let granted = total.min(available).max(0.0);
        let split = if total > 0.0 {
            let scale = granted / total;
            let pp0 = want[1] * scale;
            let dram = want[2] * scale;
            [granted - pp0 - dram, pp0, dram]
        } else {
            [0.0; 3]
        };
        self.grants.insert(job, split);
        Some(split)
    }

    fn release(&mut self, job: u64) {
        self.grants.remove(&job);
    }

    fn reclaim(&mut self, job: u64, d: usize, watts: f64) -> f64 {
        let Some(g) = self.grants.get_mut(&job) else {
            return 0.0;
        };
        let take = watts.clamp(0.0, g[d]);
        g[d] -= take;
        if g.iter().sum::<f64>() <= 0.0 {
            self.grants.remove(&job);
        }
        take
    }

    fn shift(&mut self, job: u64, from: usize, to: usize, watts: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        let Some(g) = self.grants.get_mut(&job) else {
            return 0.0;
        };
        let moved = watts.clamp(0.0, g[from]);
        g[from] -= moved;
        g[to] += moved;
        moved
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Reserve {
        job: u64,
        want: [f64; 3],
        floor_frac: f64,
    },
    Release {
        job: u64,
    },
    Reclaim {
        job: u64,
        domain: usize,
        watts: f64,
    },
    Shift {
        job: u64,
        from: usize,
        to: usize,
        watts: f64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let job = 0u64..6;
    prop_oneof![
        (
            job.clone(),
            (0.0f64..300.0, 0.0f64..300.0, 0.0f64..80.0),
            0.0f64..1.0,
        )
            .prop_map(|(job, (a, b, c), floor_frac)| Op::Reserve {
                job,
                want: [a, b, c],
                floor_frac,
            }),
        job.clone().prop_map(|job| Op::Release { job }),
        (job.clone(), 0usize..3, 0.0f64..400.0).prop_map(|(job, domain, watts)| Op::Reclaim {
            job,
            domain,
            watts,
        }),
        (job, 0usize..3, 0usize..3, 0.0f64..400.0).prop_map(|(job, from, to, watts)| Op::Shift {
            job,
            from,
            to,
            watts,
        }),
    ]
}

fn domain(i: usize) -> RaplDomain {
    RaplDomain::ALL[i]
}

fn assert_agreement(ledger: &DomainLedger, mirror: &Mirror) -> Result<(), TestCaseError> {
    // The ledger's own invariant checker must be clean after every op.
    prop_assert!(
        ledger.check_invariants().is_ok(),
        "ledger invariants violated: {:?}",
        ledger.check_invariants()
    );
    // Both sides agree on who holds a grant and how it splits.
    for (&job, g) in &mirror.grants {
        let split = ledger.grant(JobId(job));
        prop_assert!(split.is_some(), "job {} missing from ledger", job);
        let split = split.unwrap();
        for d in 0..3 {
            prop_assert!(
                (split[d].value() - g[d]).abs() < EPS,
                "job {} domain {} diverged: ledger {} mirror {}",
                job,
                d,
                split[d],
                g[d]
            );
        }
        // Σ domain grants = node grant.
        let node = ledger.node_grant(JobId(job)).unwrap();
        let sum: f64 = split.iter().map(|w| w.value()).sum();
        prop_assert!((sum - node.value()).abs() < EPS);
    }
    for job in ledger.jobs() {
        prop_assert!(
            mirror.grants.contains_key(&job.0),
            "job {:?} missing from mirror",
            job
        );
    }
    // Σ node grants ≤ fleet budget.
    prop_assert!(
        ledger.reserved().value() <= ledger.system_budget().value() + EPS,
        "fleet oversubscribed: {} > {}",
        ledger.reserved(),
        ledger.system_budget()
    );
    prop_assert!((ledger.reserved().value() - mirror.reserved()).abs() < EPS);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn domain_ledger_matches_mirrored_model(
        budget in 200.0f64..1200.0,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut ledger = DomainLedger::new(Watts(budget));
        let mut mirror = Mirror {
            budget,
            grants: HashMap::new(),
        };

        for op in ops {
            match op {
                Op::Reserve { job, want, floor_frac } => {
                    let total: f64 = want.iter().sum();
                    let floor = total * floor_frac;
                    let got = ledger.reserve_domains(
                        JobId(job),
                        [Watts(want[0]), Watts(want[1]), Watts(want[2])],
                        Watts(floor),
                    );
                    let expect = mirror.reserve(job, want, floor);
                    match (got, expect) {
                        (Ok(split), Some(m)) => {
                            for d in 0..3 {
                                prop_assert!(
                                    (split[d].value() - m[d]).abs() < EPS,
                                    "grant split diverged in domain {}", d
                                );
                            }
                        }
                        (Err(_), None) => {}
                        (got, expect) => prop_assert!(
                            false,
                            "admission outcome diverged: ledger {:?} mirror {:?}",
                            got, expect
                        ),
                    }
                }
                Op::Release { job } => {
                    ledger.release(JobId(job));
                    mirror.release(job);
                }
                Op::Reclaim { job, domain: d, watts } => {
                    let got = ledger.reclaim_domain(JobId(job), domain(d), Watts(watts));
                    let expect = mirror.reclaim(job, d, watts);
                    prop_assert!(
                        (got.value() - expect).abs() < EPS,
                        "reclaim diverged: ledger {} mirror {}", got, expect
                    );
                }
                Op::Shift { job, from, to, watts } => {
                    let got = ledger.shift(JobId(job), domain(from), domain(to), Watts(watts));
                    let expect = mirror.shift(job, from, to, watts);
                    prop_assert!(
                        (got.value() - expect).abs() < EPS,
                        "shift diverged: ledger {} mirror {}", got, expect
                    );
                }
            }
            assert_agreement(&ledger, &mirror)?;
        }
    }

    /// Budget shocks: lowering the budget reports a deficit both sides
    /// agree on, and evicting jobs until the deficit clears restores the
    /// containment chain.
    #[test]
    fn budget_shock_and_eviction_restores_containment(
        budget in 400.0f64..1000.0,
        shock_frac in 0.1f64..1.2,
        wants in prop::collection::vec(
            (0.0f64..250.0, 0.0f64..250.0, 0.0f64..60.0),
            1..6,
        ),
    ) {
        let mut ledger = DomainLedger::new(Watts(budget));
        let mut mirror = Mirror { budget, grants: HashMap::new() };
        for (i, (a, b, c)) in wants.iter().copied().enumerate() {
            let got = ledger.reserve_domains(
                JobId(i as u64),
                [Watts(a), Watts(b), Watts(c)],
                Watts::ZERO,
            );
            let expect = mirror.reserve(i as u64, [a, b, c], 0.0);
            prop_assert_eq!(got.is_ok(), expect.is_some());
        }
        assert_agreement(&ledger, &mirror)?;

        let new_budget = budget * shock_frac;
        let deficit = ledger.set_system_budget(Watts(new_budget));
        mirror.budget = new_budget;
        let expect_deficit = (mirror.reserved() - new_budget).max(0.0);
        prop_assert!((deficit.value() - expect_deficit).abs() < EPS);

        // The caller's eviction loop: drop jobs until the fleet fits again.
        let mut jobs: Vec<JobId> = ledger.jobs().collect();
        jobs.sort();
        for job in jobs {
            if ledger.reserved().value() <= new_budget + EPS {
                break;
            }
            ledger.release(job);
            mirror.release(job.0);
        }
        assert_agreement(&ledger, &mirror)?;
    }
}
