//! # pmstack-bench — the benchmark harness
//!
//! One Criterion bench per paper table/figure (each bench *regenerates* the
//! artifact, so `cargo bench` doubles as a reproduction run), plus ablation
//! benches for the design choices DESIGN.md calls out:
//!
//! | bench target | artifacts |
//! |---|---|
//! | `figures` | Table I/II/III, Fig 1–6 generators |
//! | `grid` | Fig 7 & Fig 8 evaluation grid, per mix |
//! | `substrate` | hot paths: PCU solve, RAPL stepping, balancer control, characterization, k-means |
//! | `ablations` | balancer step size, variation profile, policy allocation costs |
//! | `native` | the real executable arithmetic-intensity kernel |
//!
//! Shared helpers live here so the benches stay declarative.

#![warn(missing_docs)]

use pmstack_experiments::Testbed;

/// A small screened testbed shared by benches (seeded, so identical across
/// runs).
pub fn bench_testbed() -> Testbed {
    Testbed::new(400, 42)
}

/// Grid parameters sized for benching (small but representative).
pub fn bench_grid_params() -> pmstack_experiments::grid::GridParams {
    pmstack_experiments::grid::GridParams {
        nodes_per_job: 10,
        iterations: 30,
        jitter_sigma: 0.01,
    }
}
