//! Overhead of the observability layer on the columnar hot loop: the same
//! 64-host `run_iteration_into` replay as `platform_step`, measured with
//! the recorder disabled (the default — every instrumentation site must
//! collapse to one relaxed atomic load) and enabled. The disabled row is
//! the one that matters: it must stay within ~2 % of the uninstrumented
//! baseline recorded in BENCH_step.json.

use criterion::{criterion_group, criterion_main, Criterion};
use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_runtime::{IterationBuffers, JobPlatform};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};
use std::hint::black_box;

fn demo_config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX)
}

fn settled_platform(hosts: usize) -> (JobPlatform, IterationBuffers) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes: Vec<Node> = (0..hosts)
        .map(|i| Node::new(NodeId(i), &model, 0.95 + 0.1 * (i as f64 / hosts as f64)).unwrap())
        .collect();
    let mut p = JobPlatform::new(model, nodes, demo_config());
    p.set_fast_forward(true);
    for h in 0..hosts {
        p.set_host_limit(h, Watts(185.0)).unwrap();
    }
    let mut bufs = IterationBuffers::new();
    for _ in 0..400 {
        p.run_iteration_into(&mut bufs);
    }
    assert!(p.steady_state_active(), "fleet must settle first");
    (p, bufs)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");

    pmstack_obs::disable();
    let (mut p, mut bufs) = settled_platform(64);
    g.bench_function("recorder_disabled/64_hosts", |b| {
        b.iter(|| {
            p.run_iteration_into(&mut bufs);
            black_box(bufs.outcome().elapsed)
        })
    });

    pmstack_obs::enable();
    let (mut p, mut bufs) = settled_platform(64);
    g.bench_function("recorder_enabled/64_hosts", |b| {
        b.iter(|| {
            p.run_iteration_into(&mut bufs);
            black_box(bufs.outcome().elapsed)
        })
    });
    pmstack_obs::disable();

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
