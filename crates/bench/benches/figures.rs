//! Benches that regenerate Tables I–III and Figs. 1–6 (the non-grid
//! artifacts). Each iteration produces the full artifact text, so timing
//! here is the cost of reproducing the figure from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use pmstack_bench::bench_testbed;
use pmstack_experiments::{figures, tables};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let tb = bench_testbed();
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_system_properties", |b| {
        b.iter(|| black_box(tables::table1()))
    });
    g.bench_function("table2_workload_mixes", |b| {
        b.iter(|| black_box(tables::table2()))
    });
    g.bench_function("table3_power_budgets", |b| {
        b.iter(|| black_box(tables::table3(&tb, 10)))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let tb = bench_testbed();
    let mut g = c.benchmark_group("figures");
    g.bench_function("fig1_year_power_trace", |b| {
        b.iter(|| black_box(figures::fig1(42)))
    });
    g.bench_function("fig2_kernel_design", |b| {
        b.iter(|| black_box(figures::fig2()))
    });
    g.bench_function("fig3_roofline", |b| b.iter(|| black_box(figures::fig3())));
    g.bench_function("fig4_monitor_heatmap", |b| {
        b.iter(|| black_box(figures::fig4()))
    });
    g.bench_function("fig5_balancer_heatmap", |b| {
        b.iter(|| black_box(figures::fig5()))
    });
    g.bench_function("fig6_variation_clusters", |b| {
        b.iter(|| black_box(figures::fig6(&tb)))
    });
    g.finish();
}

fn bench_testbed_screen(c: &mut Criterion) {
    let mut g = c.benchmark_group("screen");
    g.sample_size(10);
    g.bench_function("fig6_screen_400_nodes", |b| {
        b.iter(|| black_box(pmstack_experiments::Testbed::new(400, 42)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_testbed_screen);
criterion_main!(benches);
