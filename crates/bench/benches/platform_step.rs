//! The columnar hot loop in isolation: one `run_iteration_into` across
//! platforms from 64 hosts to 100k (and, gated, 1M), with the steady-state
//! caches armed and disarmed. The disarmed rows are the cost of a full
//! per-iteration resolve-and-step pass; the armed rows are what a settled
//! fleet pays; the shard_churn rows are the partial-invalidation case the
//! segmented bank exists for — one segment re-stepping while every other
//! segment replays.
//!
//! The 1M-host rows take ~20 s of setup and >1 GB of RSS, so they only run
//! when `PMSTACK_BENCH_MEGA=1` is set.

use criterion::{criterion_group, criterion_main, Criterion};
use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_runtime::{IterationBuffers, JobPlatform};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};
use std::hint::black_box;

fn demo_config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX)
}

fn platform(hosts: usize, fast_forward: bool) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes: Vec<Node> = (0..hosts)
        .map(|i| Node::new(NodeId(i), &model, 0.95 + 0.1 * (i as f64 / hosts as f64)).unwrap())
        .collect();
    let mut p = JobPlatform::new(model, nodes, demo_config());
    p.set_fast_forward(fast_forward);
    for h in 0..hosts {
        p.set_host_limit(h, Watts(185.0)).unwrap();
    }
    p
}

/// Run until the steady-state replay arms (bounded so a regression that
/// prevents settling fails loudly instead of hanging the bench).
fn settle(p: &mut JobPlatform, bufs: &mut IterationBuffers) {
    for _ in 0..600 {
        p.run_iteration_into(bufs);
        if p.steady_state_active() {
            return;
        }
    }
    panic!("fleet must settle before the fast-forward rows mean anything");
}

fn bench_platform_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform_step");
    let mega = std::env::var("PMSTACK_BENCH_MEGA").is_ok_and(|v| v == "1");
    let mut sizes = vec![64usize, 900, 10_000, 100_000];
    if mega {
        sizes.push(1 << 20);
    }
    for &hosts in &sizes {
        // Disarmed: every iteration re-resolves every operating point and
        // steps every column — the reference cost of the columnar loop.
        let mut p = platform(hosts, false);
        let mut bufs = IterationBuffers::new();
        p.run_iteration_into(&mut bufs); // warm allocations
        g.bench_function(format!("full_resolve/{hosts}_hosts"), |b| {
            b.iter(|| {
                p.run_iteration_into(&mut bufs);
                black_box(bufs.outcome().elapsed)
            })
        });

        // Armed: let enforcement settle to its bitwise fixed point first,
        // then measure the steady-state replay.
        let mut p = platform(hosts, true);
        let mut bufs = IterationBuffers::new();
        settle(&mut p, &mut bufs);
        g.bench_function(format!("fast_forward/{hosts}_hosts"), |b| {
            b.iter(|| {
                p.run_iteration_into(&mut bufs);
                black_box(bufs.outcome().elapsed)
            })
        });

        // Churn: a control write lands on host 0 every iteration, so its
        // segment re-resolves while every other segment replays. Below
        // one-segment scale this measures the full re-step; above it, the
        // partial-invalidation win of the sharded bank.
        if hosts >= 100_000 {
            let mut p = platform(hosts, true);
            let mut bufs = IterationBuffers::new();
            settle(&mut p, &mut bufs);
            let mut flip = 0u64;
            g.bench_function(format!("shard_churn/{hosts}_hosts"), |b| {
                b.iter(|| {
                    flip += 1;
                    p.set_host_limit(0, Watts(185.0 + (flip % 2) as f64))
                        .unwrap();
                    p.run_iteration_into(&mut bufs);
                    black_box(bufs.outcome().elapsed)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_platform_step);
criterion_main!(benches);
