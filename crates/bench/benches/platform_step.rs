//! The columnar hot loop in isolation: one `run_iteration_into` across a
//! platform of 64 and 900 hosts, with the steady-state caches armed and
//! disarmed. The disarmed rows are the cost of a full per-iteration
//! resolve-and-step pass; the armed rows are what a settled fleet pays.

use criterion::{criterion_group, criterion_main, Criterion};
use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_runtime::{IterationBuffers, JobPlatform};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};
use std::hint::black_box;

fn demo_config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX)
}

fn platform(hosts: usize, fast_forward: bool) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes: Vec<Node> = (0..hosts)
        .map(|i| Node::new(NodeId(i), &model, 0.95 + 0.1 * (i as f64 / hosts as f64)).unwrap())
        .collect();
    let mut p = JobPlatform::new(model, nodes, demo_config());
    p.set_fast_forward(fast_forward);
    for h in 0..hosts {
        p.set_host_limit(h, Watts(185.0)).unwrap();
    }
    p
}

fn bench_platform_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform_step");
    for &hosts in &[64usize, 900] {
        // Disarmed: every iteration re-resolves every operating point and
        // steps every column — the reference cost of the columnar loop.
        let mut p = platform(hosts, false);
        let mut bufs = IterationBuffers::new();
        p.run_iteration_into(&mut bufs); // warm allocations
        g.bench_function(format!("full_resolve/{hosts}_hosts"), |b| {
            b.iter(|| {
                p.run_iteration_into(&mut bufs);
                black_box(bufs.outcome().elapsed)
            })
        });

        // Armed: let enforcement settle to its bitwise fixed point first,
        // then measure the steady-state replay.
        let mut p = platform(hosts, true);
        let mut bufs = IterationBuffers::new();
        for _ in 0..400 {
            p.run_iteration_into(&mut bufs);
        }
        assert!(
            p.steady_state_active(),
            "fleet must settle before the fast-forward rows mean anything"
        );
        g.bench_function(format!("fast_forward/{hosts}_hosts"), |b| {
            b.iter(|| {
                p.run_iteration_into(&mut bufs);
                black_box(bufs.outcome().elapsed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_platform_step);
criterion_main!(benches);
