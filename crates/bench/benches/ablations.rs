//! Ablation benches for the design choices DESIGN.md calls out. Each bench
//! measures wall time, but its *report* is the printed quality metric
//! (convergence distance, savings) emitted once per configuration before
//! timing — so `cargo bench ablations` documents the trade-offs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmstack_core::{policies, JobChar, PolicyCtx, PolicyKind};
use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_runtime::agents::BalancerParams;
use pmstack_runtime::{Agent, JobPlatform, PowerBalancerAgent};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, VariationProfile, Watts};
use std::hint::black_box;

fn demo_config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX)
}

/// Balancer step-size ablation: convergence speed vs steady-state accuracy.
fn ablate_balancer_step(c: &mut Criterion) {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let load = KernelLoad::new(demo_config(), &spec);
    let needed = load.needed_power(&model, 1.0);

    let mut g = c.benchmark_group("ablation_balancer_step");
    g.sample_size(10);
    for step_w in [1.0, 2.0, 4.0, 8.0, 16.0] {
        // Quality metric: distance from needed power after 80 iterations.
        let run = |iters: usize| -> f64 {
            let model = PowerModel::new(spec.clone()).unwrap();
            let nodes = vec![Node::new(NodeId(0), &model, 1.0).unwrap()];
            let mut platform = JobPlatform::new(model, nodes, demo_config());
            let mut agent = PowerBalancerAgent::with_params(
                Watts(240.0),
                BalancerParams {
                    step: Watts(step_w),
                    ..BalancerParams::default()
                },
            );
            agent.init(&mut platform);
            for _ in 0..iters {
                let out = platform.run_iteration();
                agent.adjust(&mut platform, &out);
            }
            (agent.targets()[0] - needed).value().abs()
        };
        println!(
            "[ablation] balancer step {step_w:>4.1} W → |target − needed| = {:.1} W after 80 iters",
            run(80)
        );
        g.bench_with_input(BenchmarkId::from_parameter(step_w), &step_w, |b, _| {
            b.iter(|| black_box(run(80)))
        });
    }
    g.finish();
}

/// Variation-profile ablation: how much of MixedAdaptive's win comes from
/// the tri-modal hardware variation vs a unimodal or uniform population.
fn ablate_variation_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_variation");
    g.sample_size(10);
    let profiles: [(&str, VariationProfile); 3] = [
        ("uniform", VariationProfile::uniform()),
        ("unimodal", VariationProfile::unimodal(0.05)),
        ("trimodal", VariationProfile::quartz()),
    ];
    for (name, profile) in profiles {
        let run = |profile: VariationProfile| -> f64 {
            use pmstack_simhw::Cluster;
            let cluster = Cluster::builder(quartz_spec())
                .nodes(64)
                .variation(profile)
                .seed(42)
                .build()
                .unwrap();
            let model = cluster.model();
            let load = KernelLoad::new(KernelConfig::balanced_ymm(8.0), spec_ref());
            // Spread of achieved frequency under a tight cap — the signal
            // the k-means screen and the balancer both consume.
            let freqs: Vec<f64> = cluster
                .nodes()
                .iter()
                .map(|n| load.achieved_frequency(model, n.eps(), Watts(150.0)).ghz())
                .collect();
            let min = freqs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = freqs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            max - min
        };
        println!(
            "[ablation] variation {name}: achieved-frequency spread {:.3} GHz under 150 W",
            run(profile.clone())
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| black_box(run(p.clone())))
        });
    }
    g.finish();
}

fn spec_ref() -> &'static pmstack_simhw::MachineSpec {
    use std::sync::OnceLock;
    static SPEC: OnceLock<pmstack_simhw::MachineSpec> = OnceLock::new();
    SPEC.get_or_init(quartz_spec)
}

/// Step-4 weighting ablation: the paper weights surplus by headroom from
/// the minimum settable power; compare against a uniform spread.
fn ablate_step4_weighting(c: &mut Criterion) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let jobs: Vec<JobChar> = [0.5, 4.0, 8.0, 16.0]
        .iter()
        .map(|&i| JobChar::analytic(KernelConfig::balanced_ymm(i), &model, &[1.0; 25]))
        .collect();
    let ctx = PolicyCtx {
        system_budget: Watts(100.0 * 225.0),
        min_node: Watts(136.0),
        tdp_node: Watts(240.0),
    };
    let policy = policies::by_kind(PolicyKind::MixedAdaptive);
    let alloc = policy.allocate(&ctx, &jobs);
    // Quality metric: how unevenly the surplus lands (spread across jobs).
    let totals: Vec<f64> = (0..jobs.len())
        .map(|j| alloc.job_total(j).value())
        .collect();
    println!("[ablation] MixedAdaptive step-4 headroom weighting → per-job totals {totals:?}");
    let mut g = c.benchmark_group("ablation_step4");
    g.bench_function("headroom_weighted_allocation", |b| {
        b.iter(|| black_box(policy.allocate(&ctx, &jobs)))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_balancer_step,
    ablate_variation_profile,
    ablate_step4_weighting
);
criterion_main!(benches);
