//! Bench the *native* executable arithmetic-intensity kernel (Fig. 2's
//! design running real FMA/load instructions) across the intensity knob —
//! the calibration companion to the analytic roofline of Fig. 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmstack_kernel::native::{run, NativeConfig};
use std::hint::black_box;

fn bench_intensity_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_kernel");
    g.sample_size(10);
    for fma in [1usize, 4, 16, 64] {
        let config = NativeConfig {
            ranks: 2,
            elements_per_rank: 1 << 16,
            fma_per_element: fma,
            iterations: 2,
            critical_multiplier: 1,
        };
        g.throughput(Throughput::Elements(config.total_flops() as u64));
        g.bench_with_input(
            BenchmarkId::new("intensity_sweep", format!("{}FB", config.intensity())),
            &config,
            |b, cfg| b.iter(|| black_box(run(cfg))),
        );
    }
    g.finish();
}

fn bench_imbalance(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_kernel_imbalance");
    g.sample_size(10);
    for mult in [1usize, 2, 3] {
        let config = NativeConfig {
            ranks: 2,
            elements_per_rank: 1 << 16,
            fma_per_element: 8,
            iterations: 2,
            critical_multiplier: mult,
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mult}x")),
            &config,
            |b, cfg| b.iter(|| black_box(run(cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_intensity_sweep, bench_imbalance);
criterion_main!(benches);
