//! Microbenchmarks of the stack's hot paths: the PCU operating-point solve,
//! RAPL stepping, characterization, a balancer control step, policy
//! allocation, and k-means clustering.

use criterion::{criterion_group, criterion_main, Criterion};
use pmstack_analysis::kmeans::kmeans_1d;
use pmstack_core::{policies, JobChar, PolicyCtx, PolicyKind};
use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_runtime::{Agent, Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{quartz_spec, LoadModel, Node, NodeId, PowerModel, Seconds, Watts};
use std::hint::black_box;

fn demo_config() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX)
}

fn bench_pcu_solve(c: &mut Criterion) {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let load = KernelLoad::new(demo_config(), &spec);
    let mut g = c.benchmark_group("pcu");
    g.bench_function("operating_point_solve", |b| {
        b.iter(|| black_box(load.operating_point(&model, 1.02, Watts(185.0))))
    });
    g.bench_function("achieved_frequency_bisect", |b| {
        b.iter(|| black_box(load.achieved_frequency(&model, 1.02, Watts(140.0))))
    });
    g.finish();
}

fn bench_power_lut(c: &mut Criterion) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let classes = [
        pmstack_simhw::CoreClass {
            count: 34,
            kappa: 3.0,
            freq: pmstack_simhw::Hertz(2.1e9),
        },
        pmstack_simhw::CoreClass {
            count: 2,
            kappa: 0.4,
            freq: pmstack_simhw::Hertz(1.4e9),
        },
    ];
    let mut g = c.benchmark_group("power_lut");
    g.bench_function("node_power_36_cores", |b| {
        b.iter(|| black_box(model.node_power(1.02, &classes)))
    });
    g.bench_function("freq_for_power_closed_form", |b| {
        b.iter(|| black_box(model.freq_for_power(1.02, 36, 3.0, Watts(185.0))))
    });
    g.bench_function("cap_to_freq_table", |b| {
        b.iter(|| black_box(model.cap_to_freq(1.02, 36, 3.0, Watts(185.0))))
    });
    g.finish();
}

fn bench_exec_pool(c: &mut Criterion) {
    let items: Vec<u64> = (0..90).collect();
    let work = |&x: &u64| -> u64 {
        let mut acc = x;
        for _ in 0..5_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        acc
    };
    let mut g = c.benchmark_group("exec");
    g.bench_function("par_map_90_cells", |b| {
        b.iter(|| black_box(pmstack_exec::par_map(&items, work)))
    });
    g.bench_function("sequential_90_cells", |b| {
        b.iter(|| pmstack_exec::sequential_scope(|| black_box(pmstack_exec::par_map(&items, work))))
    });
    g.finish();
}

fn bench_node_step(c: &mut Criterion) {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).unwrap();
    let load = KernelLoad::new(demo_config(), &spec);
    let mut node = Node::new(NodeId(0), &model, 1.0).unwrap();
    node.set_power_limit(Watts(190.0)).unwrap();
    let mut g = c.benchmark_group("node");
    g.bench_function("rapl_step", |b| {
        b.iter(|| black_box(node.step(&model, &load, Seconds(0.5))))
    });
    g.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let eps: Vec<f64> = (0..100).map(|i| 0.95 + 0.001 * i as f64).collect();
    let mut g = c.benchmark_group("characterization");
    g.bench_function("analytic_100_hosts", |b| {
        b.iter(|| black_box(JobChar::analytic(demo_config(), &model, &eps)))
    });
    g.sample_size(10);
    g.bench_function("measured_2_hosts_60_iters", |b| {
        b.iter(|| black_box(JobChar::measured(demo_config(), &model, &[0.97, 1.03], 60)))
    });
    g.finish();
}

fn bench_balancer_step(c: &mut Criterion) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes: Vec<Node> = (0..16)
        .map(|i| Node::new(NodeId(i), &model, 1.0 + 0.002 * i as f64).unwrap())
        .collect();
    let mut platform = JobPlatform::new(model, nodes, demo_config());
    let mut agent = PowerBalancerAgent::new(Watts(16.0 * 200.0));
    agent.init(&mut platform);
    let mut g = c.benchmark_group("runtime");
    g.bench_function("balancer_control_step_16_hosts", |b| {
        b.iter(|| {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        })
    });
    g.sample_size(10);
    g.bench_function("monitor_run_4_hosts_50_iters", |b| {
        b.iter(|| {
            let model = PowerModel::new(quartz_spec()).unwrap();
            let nodes: Vec<Node> = (0..4)
                .map(|i| Node::new(NodeId(i), &model, 1.0).unwrap())
                .collect();
            let platform = JobPlatform::new(model, nodes, demo_config());
            black_box(Controller::new(platform, MonitorAgent).run(50))
        })
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let eps = vec![1.0; 100];
    let jobs: Vec<JobChar> = (0..9)
        .map(|i| {
            JobChar::analytic(
                KernelConfig::balanced_ymm(f64::from(1 << (i % 6))),
                &model,
                &eps,
            )
        })
        .collect();
    let ctx = PolicyCtx {
        system_budget: Watts(900.0 * 180.0),
        min_node: Watts(136.0),
        tdp_node: Watts(240.0),
    };
    let mut g = c.benchmark_group("policy_allocation_900_hosts");
    for kind in PolicyKind::all() {
        let policy = policies::by_kind(kind);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| black_box(policy.allocate(&ctx, &jobs)))
        });
    }
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let samples: Vec<f64> = (0..2000)
        .map(|i| 1.8 + 0.1 * ((i * 7919) % 3) as f64 + 0.001 * ((i * 104729) % 13) as f64)
        .collect();
    let mut g = c.benchmark_group("analysis");
    g.bench_function("kmeans_2000_nodes_k3", |b| {
        b.iter(|| black_box(kmeans_1d(&samples, 3)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pcu_solve,
    bench_power_lut,
    bench_exec_pool,
    bench_node_step,
    bench_characterization,
    bench_balancer_step,
    bench_policies,
    bench_kmeans
);
criterion_main!(benches);
