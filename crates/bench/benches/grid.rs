//! Benches that regenerate the Fig. 7 / Fig. 8 evaluation grid: the whole
//! 5-policy × 6-mix × 3-budget cross product, and each mix individually.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmstack_bench::{bench_grid_params, bench_testbed};
use pmstack_experiments::grid::{run_mix, EvaluationGrid};
use pmstack_experiments::{figures, MixKind};
use std::hint::black_box;

fn bench_full_grid(c: &mut Criterion) {
    let tb = bench_testbed();
    let params = bench_grid_params();
    let mut g = c.benchmark_group("grid");
    g.sample_size(10);
    g.bench_function("fig7_fig8_full_grid", |b| {
        b.iter(|| black_box(EvaluationGrid::run(&tb, params)))
    });
    g.finish();
}

fn bench_per_mix(c: &mut Criterion) {
    let tb = bench_testbed();
    let params = bench_grid_params();
    let mut g = c.benchmark_group("grid_per_mix");
    g.sample_size(10);
    for kind in MixKind::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(run_mix(&tb, kind, params)))
        });
    }
    g.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let tb = bench_testbed();
    let grid = EvaluationGrid::run(&tb, bench_grid_params());
    let mut g = c.benchmark_group("grid_render");
    g.bench_function("fig7_render", |b| {
        b.iter(|| black_box(figures::fig7(&grid)))
    });
    g.bench_function("fig8_render", |b| {
        b.iter(|| black_box(figures::fig8(&grid)))
    });
    g.finish();
}

criterion_group!(benches, bench_full_grid, bench_per_mix, bench_rendering);
criterion_main!(benches);
