//! # pmstack-analysis — analysis toolkit for the reproduction
//!
//! Workload- and hardware-agnostic analysis utilities:
//!
//! * [`kmeans`] — one-dimensional k-means with deterministic seeding, used
//!   to partition nodes into frequency clusters (paper Fig. 6, §V-A2).
//! * [`roofline`] — the roofline model of Williams et al. used to validate
//!   the synthetic kernel's coverage (paper Fig. 3, §IV-A).
//! * [`stats`] — means, confidence intervals (the paper's 95% CIs over 100
//!   iterations), and percentile helpers.
//! * [`metrics`] — derived efficiency metrics (EDP, FLOPS/W, savings
//!   percentages relative to a baseline).
//! * [`render`] — plain-text tables and heat maps for the `repro` binary's
//!   figure output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kmeans;
pub mod metrics;
pub mod render;
pub mod roofline;
pub mod stats;

pub use kmeans::{kmeans_1d, KMeansResult};
pub use metrics::{savings_pct, SavingsRow};
pub use roofline::{Roofline, RooflinePoint};
pub use stats::{bootstrap_ci_mean, ci95_half_width, mean, std_dev, Summary};
