//! Derived efficiency metrics and baseline-relative savings.
//!
//! Fig. 8 reports every metric as a *percent improvement from the
//! StaticCaps policy*: time savings, energy savings, EDP savings, and
//! FLOPS/W increase. These helpers keep the sign conventions in one place.

use serde::{Deserialize, Serialize};

/// Percent saved going from `baseline` to `value` for a lower-is-better
/// metric: positive when `value < baseline`.
pub fn savings_pct(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (1.0 - value / baseline)
}

/// Percent increase going from `baseline` to `value` for a
/// higher-is-better metric: positive when `value > baseline`.
pub fn increase_pct(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (value / baseline - 1.0)
}

/// The Fig. 8 row set for one (policy, mix, budget) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsRow {
    /// Mean time savings vs the baseline, percent.
    pub time_pct: f64,
    /// 95% CI half-width of the time savings.
    pub time_ci: f64,
    /// Energy savings, percent.
    pub energy_pct: f64,
    /// EDP savings, percent.
    pub edp_pct: f64,
    /// FLOPS-per-watt increase, percent.
    pub flops_per_watt_pct: f64,
}

impl SavingsRow {
    /// Build from baseline and policy absolute metrics.
    pub fn from_absolute(
        baseline_time: f64,
        policy_time: f64,
        time_ci_frac: f64,
        baseline_energy: f64,
        policy_energy: f64,
        baseline_flops_per_watt: f64,
        policy_flops_per_watt: f64,
    ) -> Self {
        let baseline_edp = baseline_energy * baseline_time;
        let policy_edp = policy_energy * policy_time;
        Self {
            time_pct: savings_pct(baseline_time, policy_time),
            time_ci: 100.0 * time_ci_frac,
            energy_pct: savings_pct(baseline_energy, policy_energy),
            edp_pct: savings_pct(baseline_edp, policy_edp),
            flops_per_watt_pct: increase_pct(baseline_flops_per_watt, policy_flops_per_watt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_sign_conventions() {
        assert!((savings_pct(100.0, 93.0) - 7.0).abs() < 1e-12);
        assert!(savings_pct(100.0, 110.0) < 0.0);
        assert!((increase_pct(100.0, 111.0) - 11.0).abs() < 1e-12);
        assert!(increase_pct(100.0, 90.0) < 0.0);
    }

    #[test]
    fn zero_baselines_are_safe() {
        assert_eq!(savings_pct(0.0, 5.0), 0.0);
        assert_eq!(increase_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn row_from_absolute_is_internally_consistent() {
        let row = SavingsRow::from_absolute(100.0, 93.0, 0.005, 200.0, 178.0, 1.0, 1.11);
        assert!((row.time_pct - 7.0).abs() < 1e-9);
        assert!((row.energy_pct - 11.0).abs() < 1e-9);
        assert!((row.flops_per_watt_pct - 11.0).abs() < 1e-9);
        // EDP savings compounds time and energy.
        assert!((row.edp_pct - (100.0 * (1.0 - (178.0 * 93.0) / (200.0 * 100.0)))).abs() < 1e-9);
        assert!((row.time_ci - 0.5).abs() < 1e-12);
    }
}
