//! One-dimensional k-means clustering.
//!
//! §V-A2: "We used k-means clustering over the achieved frequencies to
//! partition the nodes into three groups", selecting the medium-frequency
//! cluster (n = 918 of 2000) for the experiments. This is a deterministic
//! 1-D implementation: centroids initialize on quantiles, Lloyd iterations
//! run to convergence, and ties break toward the lower cluster.

use crate::stats::percentile;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids, ascending.
    pub centroids: Vec<f64>,
    /// Cluster index (into `centroids`) of each input sample.
    pub assignment: Vec<usize>,
    /// Samples per cluster.
    pub sizes: Vec<usize>,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Indices of the samples in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// The index of the largest cluster (the paper keeps the medium/
    /// largest frequency group for its experiments).
    pub fn largest_cluster(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .expect("at least one cluster")
    }
}

/// Cluster `samples` into `k` groups. Deterministic: quantile
/// initialization, Lloyd iterations until assignments stabilize (or 200
/// rounds). Panics on `k == 0` or fewer samples than clusters.
pub fn kmeans_1d(samples: &[f64], k: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(samples.len() >= k, "need at least k samples");
    assert!(
        samples.iter().all(|x| x.is_finite()),
        "samples must be finite"
    );

    // Quantile-spread initialization keeps the result deterministic and
    // well-separated for multi-modal data.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| percentile(samples, 100.0 * (i as f64 + 0.5) / k as f64))
        .collect();
    let mut assignment = vec![0usize; samples.len()];
    let mut iterations = 0;

    for _ in 0..200 {
        iterations += 1;
        let mut changed = false;
        for (i, &x) in samples.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (x - *a)
                        .abs()
                        .partial_cmp(&(x - *b).abs())
                        .expect("finite distances")
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Recompute centroids; an emptied cluster keeps its old centroid.
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (i, &x) in samples.iter().enumerate() {
            sums[assignment[i]] += x;
            counts[assignment[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    // Order clusters by centroid ascending and relabel.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        centroids[a]
            .partial_cmp(&centroids[b])
            .expect("finite centroids")
    });
    let relabel: Vec<usize> = {
        let mut inv = vec![0; k];
        for (new, &old) in order.iter().enumerate() {
            inv[old] = new;
        }
        inv
    };
    let centroids_sorted: Vec<f64> = order.iter().map(|&c| centroids[c]).collect();
    let assignment: Vec<usize> = assignment.iter().map(|&a| relabel[a]).collect();
    let mut sizes = vec![0usize; k];
    for &a in &assignment {
        sizes[a] += 1;
    }
    static KMEANS_ITERATIONS: pmstack_obs::StaticCounter =
        pmstack_obs::StaticCounter::new("analysis.kmeans.iterations");
    KMEANS_ITERATIONS.add(iterations as u64);
    KMeansResult {
        centroids: centroids_sorted,
        assignment,
        sizes,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_three_obvious_modes() {
        let mut samples = Vec::new();
        samples.extend(std::iter::repeat_n(1.6, 50));
        samples.extend(std::iter::repeat_n(1.8, 90));
        samples.extend(std::iter::repeat_n(2.0, 60));
        let r = kmeans_1d(&samples, 3);
        assert_eq!(r.sizes, vec![50, 90, 60]);
        assert!((r.centroids[0] - 1.6).abs() < 1e-9);
        assert!((r.centroids[1] - 1.8).abs() < 1e-9);
        assert!((r.centroids[2] - 2.0).abs() < 1e-9);
        assert_eq!(r.largest_cluster(), 1);
    }

    #[test]
    fn centroids_are_sorted_ascending() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let r = kmeans_1d(&samples, 4);
        for w in r.centroids.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn members_partition_the_input() {
        let samples = [1.0, 1.1, 5.0, 5.1, 9.0];
        let r = kmeans_1d(&samples, 3);
        let total: usize = (0..3).map(|c| r.members(c).len()).sum();
        assert_eq!(total, samples.len());
        assert_eq!(r.sizes.iter().sum::<usize>(), samples.len());
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let samples = [1.0, 2.0, 3.0];
        let r = kmeans_1d(&samples, 3);
        assert_eq!(r.sizes, vec![1, 1, 1]);
    }

    #[test]
    fn deterministic_across_calls() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 7919) % 100) as f64 / 10.0).collect();
        assert_eq!(kmeans_1d(&samples, 3), kmeans_1d(&samples, 3));
    }

    #[test]
    #[should_panic(expected = "need at least k samples")]
    fn too_few_samples_panics() {
        kmeans_1d(&[1.0], 2);
    }
}
