//! Statistics used by the evaluation (means, 95% confidence intervals).
//!
//! The paper reports means over 100 iterations per configuration with 95%
//! confidence intervals (Fig. 8 error bars). Samples here are plain `f64`
//! slices; the caller owns units.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95% confidence interval of the mean, using the normal
/// approximation (the paper's n = 100 makes the t-correction negligible).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Percentile by linear interpolation, `p` in `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Bootstrap confidence interval of the mean: resample `xs` with
/// replacement `resamples` times using a seeded generator and return the
/// `(lo, hi)` bounds at the given confidence (e.g. `0.95`). Used to
/// cross-check the normal-approximation CI on skewed iteration-time
/// distributions.
pub fn bootstrap_ci_mean(xs: &[f64], resamples: usize, confidence: f64, seed: u64) -> (f64, f64) {
    if xs.len() < 2 || resamples == 0 {
        let m = mean(xs);
        return (m, m);
    }
    // A small, fast xorshift keeps this dependency-free and deterministic.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..xs.len())
                .map(|_| xs[(next() % xs.len() as u64) as usize])
                .sum();
            sum / xs.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lo = percentile(&means, 100.0 * alpha);
    let hi = percentile(&means, 100.0 * (1.0 - alpha));
    (lo, hi)
}

/// A one-pass summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95% CI half-width of the mean.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            ci95: ci95_half_width(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic sample is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| f64::from(i % 3)).collect();
        let large: Vec<f64> = (0..1000).map(|i| f64::from(i % 3)).collect();
        assert!(ci95_half_width(&large) < ci95_half_width(&small));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(ci95_half_width(&[1.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_brackets_the_mean_and_shrinks_with_n() {
        let small: Vec<f64> = (0..20).map(|i| f64::from(i % 5)).collect();
        let large: Vec<f64> = (0..2000).map(|i| f64::from(i % 5)).collect();
        let m = mean(&small);
        let (lo, hi) = bootstrap_ci_mean(&small, 500, 0.95, 42);
        assert!(lo <= m && m <= hi, "[{lo}, {hi}] must bracket {m}");
        let (lo2, hi2) = bootstrap_ci_mean(&large, 500, 0.95, 42);
        assert!(hi2 - lo2 < hi - lo, "more samples → tighter interval");
    }

    #[test]
    fn bootstrap_agrees_with_normal_ci_on_well_behaved_data() {
        let xs: Vec<f64> = (0..500)
            .map(|i| 10.0 + ((i * 31) % 7) as f64 * 0.1)
            .collect();
        let (lo, hi) = bootstrap_ci_mean(&xs, 800, 0.95, 7);
        let half = ci95_half_width(&xs);
        let m = mean(&xs);
        assert!(((hi - lo) / 2.0 - half).abs() < half * 0.5);
        assert!((((hi + lo) / 2.0) - m).abs() < half);
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert_eq!(bootstrap_ci_mean(&[], 100, 0.95, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci_mean(&[3.0], 100, 0.95, 1), (3.0, 3.0));
        let (lo, hi) = bootstrap_ci_mean(&[1.0, 2.0], 0, 0.95, 1);
        assert_eq!((lo, hi), (1.5, 1.5));
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 3.0, 5.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(s.ci95 > 0.0);
    }
}
