//! The roofline model (Williams et al., CACM 2009).
//!
//! Fig. 3 of the paper overlays the synthetic kernel's achieved throughput
//! on the machine's roofline to verify the kernel covers the full spectrum
//! of achievable throughput. This module provides the model: a set of
//! compute ceilings (GFLOP/s) and bandwidth diagonals (GB/s); attainable
//! performance at intensity `I` is `min(peak_flops, I · peak_bw)`.

use serde::{Deserialize, Serialize};

/// A named compute ceiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Label, e.g. "DP vector FMA peak".
    pub name: String,
    /// GFLOP/s.
    pub gflops: f64,
}

/// A named bandwidth diagonal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth {
    /// Label, e.g. "DRAM".
    pub name: String,
    /// GB/s.
    pub gb_per_s: f64,
}

/// A machine roofline: ceilings and bandwidths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute ceilings, any order.
    pub ceilings: Vec<Ceiling>,
    /// Bandwidth diagonals, any order.
    pub bandwidths: Vec<Bandwidth>,
}

/// A measured point to overlay on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label of the kernel configuration.
    pub label: String,
    /// Arithmetic intensity in FLOPs/byte.
    pub intensity: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

impl Roofline {
    /// The highest compute ceiling.
    pub fn peak_gflops(&self) -> f64 {
        self.ceilings.iter().map(|c| c.gflops).fold(0.0, f64::max)
    }

    /// The highest bandwidth diagonal.
    pub fn peak_bandwidth(&self) -> f64 {
        self.bandwidths
            .iter()
            .map(|b| b.gb_per_s)
            .fold(0.0, f64::max)
    }

    /// Attainable GFLOP/s at intensity `I` against the outermost roofline.
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.peak_bandwidth()).min(self.peak_gflops())
    }

    /// The ridge point: the intensity at which the outermost bandwidth
    /// diagonal meets the outermost ceiling.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops() / self.peak_bandwidth()
    }

    /// Fraction of the attainable performance a point achieves, in `[0, ∞)`
    /// (can exceed 1 only through model error).
    pub fn efficiency(&self, point: &RooflinePoint) -> f64 {
        let roof = self.attainable(point.intensity);
        if roof <= 0.0 {
            0.0
        } else {
            point.gflops / roof
        }
    }

    /// True when a set of points "covers" the roofline: at least one point
    /// within `tol` of the bandwidth diagonal (memory-bound side) and one
    /// within `tol` of a compute ceiling (compute-bound side) — the Fig. 3
    /// verification criterion.
    pub fn covered_by(&self, points: &[RooflinePoint], tol: f64) -> bool {
        let below_ridge = points
            .iter()
            .any(|p| p.intensity < self.ridge_intensity() && self.efficiency(p) >= 1.0 - tol);
        let above_ridge = points
            .iter()
            .any(|p| p.intensity >= self.ridge_intensity() && self.efficiency(p) >= 1.0 - tol);
        below_ridge && above_ridge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline() -> Roofline {
        Roofline {
            ceilings: vec![
                Ceiling {
                    name: "DP vector FMA".into(),
                    gflops: 1414.0,
                },
                Ceiling {
                    name: "DP scalar add".into(),
                    gflops: 176.0,
                },
            ],
            bandwidths: vec![Bandwidth {
                name: "DRAM".into(),
                gb_per_s: 150.0,
            }],
        }
    }

    #[test]
    fn attainable_follows_min_rule() {
        let r = roofline();
        // Memory bound at I=1: 150 GFLOP/s.
        assert!((r.attainable(1.0) - 150.0).abs() < 1e-9);
        // Compute bound at I=100.
        assert!((r.attainable(100.0) - 1414.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_point() {
        let r = roofline();
        assert!((r.ridge_intensity() - 1414.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_of_perfect_point_is_one() {
        let r = roofline();
        let p = RooflinePoint {
            label: "perfect".into(),
            intensity: 2.0,
            gflops: 300.0,
        };
        assert!((r.efficiency(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_requires_both_regimes() {
        let r = roofline();
        let mem = RooflinePoint {
            label: "mem".into(),
            intensity: 0.5,
            gflops: 75.0,
        };
        let cpu = RooflinePoint {
            label: "cpu".into(),
            intensity: 32.0,
            gflops: 1400.0,
        };
        assert!(!r.covered_by(std::slice::from_ref(&mem), 0.05));
        assert!(!r.covered_by(std::slice::from_ref(&cpu), 0.05));
        assert!(r.covered_by(&[mem, cpu], 0.05));
    }
}
