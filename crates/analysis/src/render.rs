//! Plain-text rendering of tables, heat maps, and histograms.
//!
//! The `repro` binary prints each paper table/figure as text; these helpers
//! keep the formatting consistent and testable.

/// Render a table with a header row; columns are sized to content and
/// right-aligned except the first.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[c]));
            } else {
                line.push_str(&format!("  {:>w$}", cell, w = widths[c]));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Render a heat map of `values[row][col]` with row and column labels,
/// one decimal place (the Figs. 4/5 format).
pub fn heatmap(
    corner: &str,
    col_labels: &[String],
    row_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(row_labels.len(), values.len(), "row label arity");
    let header: Vec<&str> = std::iter::once(corner)
        .chain(col_labels.iter().map(String::as_str))
        .collect();
    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .zip(values)
        .map(|(label, row)| {
            assert_eq!(row.len(), col_labels.len(), "column arity");
            std::iter::once(label.clone())
                .chain(row.iter().map(|v| format!("{v:.0}")))
                .collect()
        })
        .collect();
    table(&header, &rows)
}

/// Render a horizontal-bar histogram of `samples` over `bins` equal-width
/// bins; each `#` is one `per_hash` count.
pub fn histogram(samples: &[f64], bins: usize, per_hash: usize) -> String {
    assert!(bins > 0 && per_hash > 0);
    if samples.is_empty() {
        return String::from("(no samples)\n");
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for &x in samples {
        let b = (((x - min) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let mut out = String::new();
    for (b, &count) in counts.iter().enumerate() {
        let lo = min + b as f64 * width;
        out.push_str(&format!(
            "{:8.3} | {:5} | {}\n",
            lo,
            count,
            "#".repeat(count / per_hash)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "watts"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "123.4".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("123.4"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn heatmap_renders_grid() {
        let out = heatmap(
            "I (F/B)",
            &["0%".into(), "25%".into()],
            &["8".into(), "16".into()],
            &[vec![232.0, 228.0], vec![222.0, 221.0]],
        );
        assert!(out.contains("232"));
        assert!(out.contains("I (F/B)"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn histogram_counts_all_samples() {
        let samples = [1.0, 1.1, 1.2, 2.0, 2.1, 3.0];
        let out = histogram(&samples, 3, 1);
        let total: usize = out
            .lines()
            .map(|l| {
                l.split('|')
                    .nth(1)
                    .unwrap()
                    .trim()
                    .parse::<usize>()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, samples.len());
    }

    #[test]
    fn histogram_of_empty_sample() {
        assert_eq!(histogram(&[], 3, 1), "(no samples)\n");
    }
}
