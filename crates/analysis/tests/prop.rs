//! Property-based tests of the analysis toolkit.

use pmstack_analysis::kmeans::kmeans_1d;
use pmstack_analysis::metrics::{increase_pct, savings_pct};
use pmstack_analysis::roofline::{Bandwidth, Ceiling, Roofline};
use pmstack_analysis::stats::{ci95_half_width, mean, percentile, std_dev};
use proptest::prelude::*;

proptest! {
    /// k-means always partitions the input: sizes sum to n, every sample is
    /// assigned to its nearest centroid, centroids ascend.
    #[test]
    fn kmeans_partition_validity(
        samples in prop::collection::vec(0.0f64..10.0, 3..200),
        k in 1usize..4,
    ) {
        prop_assume!(samples.len() >= k);
        let r = kmeans_1d(&samples, k);
        prop_assert_eq!(r.sizes.iter().sum::<usize>(), samples.len());
        prop_assert_eq!(r.assignment.len(), samples.len());
        for w in r.centroids.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        for (i, &x) in samples.iter().enumerate() {
            let assigned = r.assignment[i];
            let d_assigned = (x - r.centroids[assigned]).abs();
            for (c, &centroid) in r.centroids.iter().enumerate() {
                prop_assert!(
                    d_assigned <= (x - centroid).abs() + 1e-9,
                    "sample {x} assigned to {assigned} but {c} is closer"
                );
            }
        }
    }

    /// Mean lies within [min, max]; std-dev and CI are non-negative; CI of
    /// a constant sample is zero.
    #[test]
    fn stats_sanity(samples in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let m = mean(&samples);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        prop_assert!(std_dev(&samples) >= 0.0);
        prop_assert!(ci95_half_width(&samples) >= 0.0);
        let constant = vec![samples[0]; samples.len()];
        prop_assert!(ci95_half_width(&constant).abs() < 1e-9);
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(samples in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&samples, p);
            prop_assert!(v >= last - 1e-9);
            last = v;
        }
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((percentile(&samples, 0.0) - lo).abs() < 1e-9);
        prop_assert!((percentile(&samples, 100.0) - hi).abs() < 1e-9);
    }

    /// savings/increase are inverse views: saving x% of time is the same
    /// magnitude as the ratio implies, and both are zero at equality.
    #[test]
    fn savings_identities(baseline in 0.1f64..1e6, ratio in 0.1f64..2.0) {
        let value = baseline * ratio;
        let s = savings_pct(baseline, value);
        let i = increase_pct(baseline, value);
        prop_assert!((s + 100.0 * (ratio - 1.0)).abs() < 1e-6);
        prop_assert!((i - 100.0 * (ratio - 1.0)).abs() < 1e-6);
        prop_assert!((savings_pct(baseline, baseline)).abs() < 1e-9);
    }

    /// Roofline attainable performance is monotone in intensity and
    /// saturates exactly at the peak.
    #[test]
    fn roofline_monotone(peak in 100.0f64..2000.0, bw in 10.0f64..500.0) {
        let roof = Roofline {
            ceilings: vec![Ceiling { name: "peak".into(), gflops: peak }],
            bandwidths: vec![Bandwidth { name: "dram".into(), gb_per_s: bw }],
        };
        let mut last = 0.0;
        for i in [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let a = roof.attainable(i);
            prop_assert!(a >= last - 1e-9);
            prop_assert!(a <= peak + 1e-9);
            last = a;
        }
        prop_assert!((roof.attainable(1e9) - peak).abs() < 1e-6);
        prop_assert!((roof.ridge_intensity() - peak / bw).abs() < 1e-9);
    }
}
