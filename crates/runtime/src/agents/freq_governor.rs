//! The frequency governor agent — the DVFS control path.
//!
//! §VII surveys application-level tools (EAR, Nornir) that manage power by
//! scaling *frequency* instead of programming RAPL limits. This agent
//! implements that path over the simulated `IA32_PERF_CTL` interface: a
//! fixed frequency cap on every host of the job.
//!
//! Its instructive weakness, exercised by the tests: under manufacturing
//! variation a fixed frequency yields *different power per node* (the
//! inefficient parts draw more), so meeting a power budget with DVFS alone
//! either wastes headroom or overshoots — exactly why the paper's stack
//! standardizes on power-domain control with RAPL underneath.

use crate::agent::Agent;
use crate::platform::JobPlatform;
use pmstack_simhw::{Hertz, Watts};

/// A static per-job frequency cap through the PERF_CTL path.
#[derive(Debug, Clone, Copy)]
pub struct FrequencyGovernorAgent {
    freq: Hertz,
}

impl FrequencyGovernorAgent {
    /// Cap every host of the job at `freq`.
    pub fn new(freq: Hertz) -> Self {
        Self { freq }
    }

    /// The programmed cap.
    pub fn freq(&self) -> Hertz {
        self.freq
    }

    /// The frequency whose *nominal-node* power draw best matches a
    /// per-host power target for the given workload — how a frequency-
    /// oriented tool translates a power budget into a p-state.
    pub fn freq_for_power_target(platform: &JobPlatform, per_host_target: Watts) -> Hertz {
        let model = platform.model();
        let load = platform.load();
        use pmstack_simhw::LoadModel;
        model
            .spec()
            .pstates()
            .highest_fitting(|f| load.node_power_at(model, 1.0, f) <= per_host_target)
    }
}

impl Agent for FrequencyGovernorAgent {
    fn name(&self) -> &'static str {
        "frequency_governor"
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        // Release any power limit (DVFS-only control) and program the cap.
        let tdp = platform.model().spec().tdp_per_node();
        platform.set_uniform_limit(tdp).expect("TDP is settable");
        platform
            .set_uniform_freq_cap(Some(self.freq))
            .expect("validated frequency");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::PowerGovernorAgent;
    use crate::controller::Controller;
    use pmstack_kernel::KernelConfig;
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    fn platform(eps: &[f64]) -> JobPlatform {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        JobPlatform::new(model, nodes, KernelConfig::balanced_ymm(16.0))
    }

    #[test]
    fn caps_every_host_at_the_programmed_frequency() {
        let mut p = platform(&[1.0, 1.05]);
        let mut agent = FrequencyGovernorAgent::new(Hertz::from_ghz(1.8));
        agent.init(&mut p);
        let out = p.run_iteration();
        for f in &out.host_lead {
            assert_eq!(*f, Hertz::from_ghz(1.8));
        }
    }

    #[test]
    fn dvfs_power_varies_with_hardware_variation() {
        // Fixed frequency + variation ⇒ unequal power: the weakness RAPL
        // power capping does not have.
        let mut p = platform(&[0.94, 1.07]);
        let mut agent = FrequencyGovernorAgent::new(Hertz::from_ghz(2.0));
        agent.init(&mut p);
        let out = p.run_iteration();
        assert!(
            out.host_power[1].value() > out.host_power[0].value() + 5.0,
            "inefficient node must draw visibly more: {:?}",
            out.host_power
        );
    }

    #[test]
    fn equal_power_budget_rapl_beats_dvfs_on_varied_nodes() {
        // Translate a per-host power target into a frequency (nominal-node
        // calibration, as an EAR-style tool would), run both controllers on
        // a *varied* pair of nodes, and compare at equal energy: the
        // power-capping governor adapts per node and finishes no slower
        // while respecting the budget; the DVFS governor overshoots on the
        // inefficient node.
        let target = Watts(170.0);
        let freq = FrequencyGovernorAgent::freq_for_power_target(&platform(&[1.0]), target);

        let dvfs =
            Controller::new(platform(&[0.94, 1.07]), FrequencyGovernorAgent::new(freq)).run(80);
        let rapl = Controller::new(
            platform(&[0.94, 1.07]),
            PowerGovernorAgent::new(Watts(2.0 * target.value())),
        )
        .run(80);

        // Under DVFS the per-host powers diverge with the variation factor
        // (the cap is a frequency, not a power)…
        let dvfs_spread = (dvfs.hosts[1].avg_power.value() - dvfs.hosts[0].avg_power.value()).abs();
        assert!(
            dvfs_spread > 8.0,
            "DVFS power spread {dvfs_spread:.1} W should track the ±7% variation"
        );
        // …while RAPL pins both hosts near the budgeted power (small
        // residual spread from p-state quantization below the cap).
        let rapl_spread = (rapl.hosts[1].avg_power.value() - rapl.hosts[0].avg_power.value()).abs();
        assert!(
            rapl_spread < dvfs_spread / 1.5 && rapl_spread < 8.0,
            "RAPL spread {rapl_spread:.1} W should be far tighter than DVFS {dvfs_spread:.1} W"
        );
        let rapl_max_host = rapl
            .hosts
            .iter()
            .map(|h| h.avg_power.value())
            .fold(0.0, f64::max);
        assert!(
            rapl_max_host <= target.value() + 5.0,
            "RAPL host {rapl_max_host:.1} W must respect {target}"
        );
    }
}
