//! The within-host domain balancer.
//!
//! The power balancer agents move watts *across hosts*; this planner moves
//! watts *across RAPL domains within a host*. A host whose node-level grant
//! is fixed can still be mis-provisioned internally: a memory-bound phase
//! starves DRAM while PP0 holds slack, a compute phase does the opposite.
//! The planner inspects per-domain grants and demands and proposes
//! step-bounded shifts from the host's max-slack domain to its max-deficit
//! domain, leaving the node-level grant untouched — exactly the move the
//! resource manager's domain ledger can apply without re-admission.
//!
//! The planner is deliberately platform-free: it consumes plain
//! `[Watts; 3]` rows (indexed by [`RaplDomain::index`]) so the experiment
//! driver can feed it ledger splits and metered draws without the runtime
//! growing a dependency on the resource manager.

use pmstack_obs::StaticCounter;
use pmstack_simhw::{RaplDomain, Watts};

/// Observability: domain-to-domain shifts proposed by the planner.
static BALANCER_DOMAIN_SHIFTS: StaticCounter = StaticCounter::new("runtime.balancer.domain_shifts");

/// One proposed within-host move of watts between two RAPL domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainShift {
    /// Fleet-global host index the shift applies to.
    pub host: usize,
    /// Domain surrendering the watts.
    pub from: RaplDomain,
    /// Domain receiving the watts.
    pub to: RaplDomain,
    /// Watts moved; always positive and step-bounded.
    pub watts: Watts,
}

/// Tunables for the domain balancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainBalancerParams {
    /// Maximum watts moved per host per planning round. Bounding the step
    /// keeps the search stable under noisy demand estimates, mirroring the
    /// probe-step discipline of the host-level balancer.
    pub step: Watts,
    /// Slack and deficit below this threshold are treated as balanced;
    /// prevents oscillating micro-shifts around the fixed point.
    pub deadband: Watts,
}

impl Default for DomainBalancerParams {
    fn default() -> Self {
        Self {
            step: Watts(4.0),
            deadband: Watts(0.5),
        }
    }
}

/// Plans within-host domain-to-domain power shifts.
#[derive(Debug, Clone, Default)]
pub struct DomainBalancer {
    params: DomainBalancerParams,
}

impl DomainBalancer {
    /// A planner with the default step and deadband.
    pub fn new() -> Self {
        Self::default()
    }

    /// A planner with explicit tunables.
    pub fn with_params(params: DomainBalancerParams) -> Self {
        Self { params }
    }

    /// The active tunables.
    pub fn params(&self) -> DomainBalancerParams {
        self.params
    }

    /// Propose at most one shift per host: from the domain with the most
    /// slack (grant above demand) to the domain with the deepest deficit
    /// (demand above grant), moving `min(step, slack, deficit)` watts.
    ///
    /// `grants` and `demands` are parallel per-host rows indexed by
    /// [`RaplDomain::index`]. Rows beyond the shorter slice are ignored, so
    /// a partially-metered fleet degrades to fewer plans, not a panic.
    /// Hosts already balanced (within the deadband) yield no shift.
    pub fn plan(&self, grants: &[[Watts; 3]], demands: &[[Watts; 3]]) -> Vec<DomainShift> {
        let mut shifts = Vec::new();
        for (host, (grant, demand)) in grants.iter().zip(demands).enumerate() {
            let mut donor: Option<(usize, f64)> = None;
            let mut needy: Option<(usize, f64)> = None;
            for d in 0..3 {
                let slack = grant[d].value() - demand[d].value();
                if slack > self.params.deadband.value()
                    && donor.is_none_or(|(_, best)| slack > best)
                {
                    donor = Some((d, slack));
                }
                if -slack > self.params.deadband.value()
                    && needy.is_none_or(|(_, best)| -slack > best)
                {
                    needy = Some((d, -slack));
                }
            }
            let (Some((from, slack)), Some((to, deficit))) = (donor, needy) else {
                continue;
            };
            let watts = Watts(slack.min(deficit)).min(self.params.step);
            if watts <= Watts::ZERO {
                continue;
            }
            shifts.push(DomainShift {
                host,
                from: RaplDomain::ALL[from],
                to: RaplDomain::ALL[to],
                watts,
            });
            BALANCER_DOMAIN_SHIFTS.inc();
        }
        shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w3(a: f64, b: f64, c: f64) -> [Watts; 3] {
        [Watts(a), Watts(b), Watts(c)]
    }

    #[test]
    fn shifts_from_max_slack_to_max_deficit() {
        let planner = DomainBalancer::new();
        // Host 0: pkg-rest has 10 W slack, dram needs 6 W, pp0 balanced.
        let shifts = planner.plan(&[w3(30.0, 60.0, 10.0)], &[w3(20.0, 60.0, 16.0)]);
        assert_eq!(shifts.len(), 1);
        let s = shifts[0];
        assert_eq!(s.host, 0);
        assert_eq!(s.from, RaplDomain::Pkg);
        assert_eq!(s.to, RaplDomain::Dram);
        // Step-bounded: deficit is 6 W but the default step is 4 W.
        assert_eq!(s.watts, Watts(4.0));
    }

    #[test]
    fn shift_is_bounded_by_the_smaller_of_slack_and_deficit() {
        let planner = DomainBalancer::with_params(DomainBalancerParams {
            step: Watts(50.0),
            deadband: Watts(0.5),
        });
        // Slack 2 W < deficit 30 W: only the slack can move.
        let shifts = planner.plan(&[w3(22.0, 40.0, 10.0)], &[w3(20.0, 70.0, 10.0)]);
        assert_eq!(shifts.len(), 1);
        assert_eq!(shifts[0].watts, Watts(2.0));
        assert_eq!(shifts[0].from, RaplDomain::Pkg);
        assert_eq!(shifts[0].to, RaplDomain::Pp0);
    }

    #[test]
    fn balanced_hosts_yield_no_shift() {
        let planner = DomainBalancer::new();
        let grants = [w3(30.0, 60.0, 12.0), w3(25.0, 55.0, 14.0)];
        // Within the deadband everywhere.
        let demands = [w3(30.2, 59.9, 12.1), w3(25.0, 55.0, 14.0)];
        assert!(planner.plan(&grants, &demands).is_empty());
    }

    #[test]
    fn all_slack_or_all_deficit_yields_no_shift() {
        let planner = DomainBalancer::new();
        // Pure surplus: nowhere to send it within the host.
        assert!(planner
            .plan(&[w3(40.0, 80.0, 20.0)], &[w3(10.0, 20.0, 5.0)])
            .is_empty());
        // Pure deficit: nothing to take from.
        assert!(planner
            .plan(&[w3(10.0, 20.0, 5.0)], &[w3(40.0, 80.0, 20.0)])
            .is_empty());
    }

    #[test]
    fn plans_independently_per_host_and_tolerates_short_rows() {
        let planner = DomainBalancer::new();
        let grants = [
            w3(30.0, 60.0, 10.0), // pkg-rest slack, dram deficit
            w3(10.0, 70.0, 14.0), // pp0 slack, pkg-rest deficit
            w3(20.0, 50.0, 12.0), // balanced
        ];
        let demands = [
            w3(20.0, 60.0, 16.0),
            w3(18.0, 50.0, 14.0),
            // third demand row missing: host 2 is skipped, not a panic
        ];
        let shifts = planner.plan(&grants, &demands);
        assert_eq!(shifts.len(), 2);
        assert_eq!(
            (shifts[0].host, shifts[0].from, shifts[0].to),
            (0, RaplDomain::Pkg, RaplDomain::Dram)
        );
        assert_eq!(
            (shifts[1].host, shifts[1].from, shifts[1].to),
            (1, RaplDomain::Pp0, RaplDomain::Pkg)
        );
    }

    #[test]
    fn shifts_conserve_the_node_grant_when_applied() {
        let planner = DomainBalancer::new();
        let grants = [w3(30.0, 60.0, 10.0)];
        let demands = [w3(20.0, 60.0, 16.0)];
        let before: f64 = grants[0].iter().map(|w| w.value()).sum();
        let mut after = grants[0];
        for s in planner.plan(&grants, &demands) {
            after[s.from.index()] -= s.watts;
            after[s.to.index()] += s.watts;
        }
        let sum: f64 = after.iter().map(|w| w.value()).sum();
        assert!((sum - before).abs() < 1e-12, "node grant must be conserved");
    }
}
