//! The power governor agent: a static, uniform per-host cap.
//!
//! This is the performance-agnostic way to enforce a job power budget —
//! divide it evenly and hold it. It is the within-job behaviour of the
//! paper's `StaticCaps` and `MinimizeWaste` policies.

use crate::agent::Agent;
use crate::platform::JobPlatform;
use pmstack_simhw::Watts;

/// A uniform static per-host power cap enforcing a job budget.
#[derive(Debug, Clone, Copy)]
pub struct PowerGovernorAgent {
    budget: Watts,
}

impl PowerGovernorAgent {
    /// Enforce `budget` watts across the whole job.
    pub fn new(budget: Watts) -> Self {
        Self { budget }
    }
}

impl Agent for PowerGovernorAgent {
    fn name(&self) -> &'static str {
        "power_governor"
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        let per_host = self.budget / platform.num_hosts() as f64;
        platform
            .set_uniform_limit(per_host)
            .expect("node clamps limits into the settable range");
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::KernelConfig;
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    #[test]
    fn governor_splits_budget_uniformly() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..4)
            .map(|i| Node::new(NodeId(i), &model, 1.0).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, KernelConfig::balanced_ymm(8.0));
        let mut agent = PowerGovernorAgent::new(Watts(640.0));
        agent.init(&mut platform);
        for l in platform.host_limits() {
            assert!((l.value() - 160.0).abs() < 0.5);
        }
        assert_eq!(agent.budget(), Some(Watts(640.0)));
    }

    #[test]
    fn governor_respects_hardware_floor() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..2)
            .map(|i| Node::new(NodeId(i), &model, 1.0).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, KernelConfig::balanced_ymm(8.0));
        // 100 W/host requested; hardware floor is 136 W/node.
        let mut agent = PowerGovernorAgent::new(Watts(200.0));
        agent.init(&mut platform);
        for l in platform.host_limits() {
            assert!((l.value() - 136.0).abs() < 0.5);
        }
    }
}
