//! The power balancer agent.
//!
//! Re-implements the behaviour of GEOPM's `power_balancer` that the paper's
//! methodology relies on (§III-A): *"the power balancer agent reduces the
//! power limit where it does not impact performance, and redistributes that
//! power where it can improve performance, all during execution."*
//!
//! The algorithm, per control step (one kernel iteration here), starting
//! from a uniform split of the job budget:
//!
//! 1. **Harvest** — a host whose lead (critical-path) frequency still holds
//!    the turbo ceiling has power to spare: one probe step is cut. On hardware
//!    whose PCU demotes spin-polling cores first, these cuts are
//!    performance-free and harvest the slack power of waiting/imbalanced
//!    ranks — the Fig. 4 → Fig. 5 gap. A throttled host that is *off* the
//!    job's critical path is pure slack and is trimmed too.
//! 2. **Grant** — freed watts are pooled and granted (rate-limited) to
//!    power-bound hosts on the critical path, equalizing iteration times
//!    across hosts that differ in manufacturing efficiency.
//!
//! Steps halve on direction reversals (the binary-search refinement the
//! real agent uses) and restores run faster than cuts, so the search
//! breathes slightly *above* each host's needed power — protecting elapsed
//! time while still harvesting the slack.

use crate::agent::Agent;
use crate::platform::{IterationOutcome, JobPlatform};
use pmstack_obs::{StaticCounter, StaticFloatCounter};
use pmstack_simhw::{Seconds, Watts};

/// Observability: probe cuts taken by the harvest pass.
static BALANCER_CUTS: StaticCounter = StaticCounter::new("runtime.balancer.cuts");
/// Observability: grants paid out to power-bound critical-path hosts.
static BALANCER_GRANTS: StaticCounter = StaticCounter::new("runtime.balancer.grants");
/// Observability: total watts harvested from slack hosts.
static BALANCER_HARVESTED_W: StaticFloatCounter =
    StaticFloatCounter::new("runtime.balancer.harvested_w");
/// Observability: total watts granted to power-bound hosts.
static BALANCER_GRANTED_W: StaticFloatCounter =
    StaticFloatCounter::new("runtime.balancer.granted_w");

/// Tunable parameters of the balancer (exposed for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancerParams {
    /// Watts removed per probe/cut step.
    pub step: Watts,
    /// Relative epoch-time degradation treated as "no impact".
    pub tolerance: f64,
    /// Relative distance from the slowest host within which a host counts
    /// as on the critical path and may receive grants.
    pub critical_band: f64,
}

impl Default for BalancerParams {
    fn default() -> Self {
        Self {
            step: Watts(4.0),
            tolerance: 0.01,
            critical_band: 0.01,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HostState {
    /// The limit this agent wants for the host.
    target: Watts,
    /// Current adjustment step; halves on direction reversals (the
    /// balancer's binary-search convergence) and re-expands after
    /// sustained moves in one direction.
    step: Watts,
    /// Direction of the last adjustment: -1 cut, +1 grant, 0 none.
    last_dir: i8,
    /// Consecutive adjustments in the same direction.
    streak: u8,
    /// The host is fail-stop dead; its power was returned to the pool and
    /// it is excluded from the search permanently.
    dead: bool,
}

impl HostState {
    /// Update the step size for a move in direction `dir`, returning the
    /// step to use for this move.
    fn step_for(&mut self, dir: i8, initial: Watts) -> Watts {
        if self.last_dir != 0 && dir != self.last_dir {
            // Reversal: we bracketed the optimum; refine.
            self.step = (self.step * 0.5).max(Watts(0.25));
            self.streak = 0;
        } else {
            self.streak = self.streak.saturating_add(1);
            if self.streak >= 4 {
                // Sustained motion: the optimum moved; accelerate.
                self.step = (self.step * 2.0).min(initial);
                self.streak = 0;
            }
        }
        self.last_dir = dir;
        self.step
    }
}

/// The performance-aware power balancer.
#[derive(Debug, Clone)]
pub struct PowerBalancerAgent {
    budget: Watts,
    params: BalancerParams,
    hosts: Vec<HostState>,
    /// Watts freed by cuts, not yet granted.
    pool: Watts,
}

impl PowerBalancerAgent {
    /// Balance `budget` watts across the job.
    pub fn new(budget: Watts) -> Self {
        Self::with_params(budget, BalancerParams::default())
    }

    /// Balance with explicit parameters.
    pub fn with_params(budget: Watts, params: BalancerParams) -> Self {
        Self {
            budget,
            params,
            hosts: Vec::new(),
            pool: Watts::ZERO,
        }
    }

    /// The per-host limits the agent currently targets.
    pub fn targets(&self) -> Vec<Watts> {
        self.hosts.iter().map(|h| h.target).collect()
    }

    /// Watts currently freed and unallocated.
    pub fn pool(&self) -> Watts {
        self.pool
    }
}

impl Agent for PowerBalancerAgent {
    fn name(&self) -> &'static str {
        "power_balancer"
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.budget)
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let alive = platform.alive_hosts().max(1);
        let share = (self.budget / alive as f64).clamp(floor, tdp);
        self.hosts = (0..platform.num_hosts())
            .map(|h| {
                let dead = !platform.is_host_alive(h);
                HostState {
                    target: if dead { Watts::ZERO } else { share },
                    step: self.params.step,
                    last_dir: 0,
                    streak: 0,
                    dead,
                }
            })
            .collect();
        self.pool = Watts::ZERO;
        platform
            .set_uniform_limit(share)
            .expect("share is clamped into the settable range");
    }

    fn on_phase_change(&mut self, _platform: &mut JobPlatform) {
        // A new phase has a new power signature: re-open every host's
        // search at the full step so convergence is fast again.
        let initial = self.params.step;
        for state in &mut self.hosts {
            state.step = initial;
            state.last_dir = 0;
            state.streak = 0;
        }
    }

    fn adjust(&mut self, platform: &mut JobPlatform, outcome: &IterationOutcome) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let f_turbo = spec.f_turbo;

        // Graceful degradation: a host that died this interval leaves the
        // search and its power returns to the pool, where the grant path
        // redistributes it to the survivors — the within-job version of the
        // coordinator re-allocating a failed node's budget.
        for (h, state) in self.hosts.iter_mut().enumerate() {
            if !state.dead && !outcome.host_alive.get(h).copied().unwrap_or(true) {
                state.dead = true;
                self.pool += state.target;
                state.target = Watts::ZERO;
            }
        }

        let slowest = outcome
            .host_compute_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);

        // Harvest: a host whose critical path still holds the turbo ceiling
        // has free power above its needs (cuts there only demote spin-
        // polling cores); a throttled host *off* the job's critical path is
        // pure slack, trim it too. One step per control interval, the
        // gentle cadence the real balancer uses.
        let initial = self.params.step;
        for (h, state) in self.hosts.iter_mut().enumerate() {
            // Dead hosts left the search; stale telemetry means we cannot
            // judge slack, so the host holds its last-known cap untouched.
            if state.dead || !outcome.host_fresh.get(h).copied().unwrap_or(true) {
                continue;
            }
            let throttled = outcome.host_lead[h] < f_turbo;
            let off_critical = outcome.host_compute_time[h].value()
                < slowest.value() * (1.0 - self.params.critical_band);
            if (!throttled || off_critical) && state.target > floor {
                let cut = state.step_for(-1, initial).min(state.target - floor);
                state.target -= cut;
                self.pool += cut;
                BALANCER_CUTS.inc();
                BALANCER_HARVESTED_W.add(cut.value());
            }
        }

        // Grant: throttled hosts on the critical path are power-bound —
        // extra watts buy elapsed time. Rate-limited to one step per
        // interval so a transiently throttled host cannot swallow the pool.
        // Only hosts with fresh telemetry qualify: granting on stale data
        // would chase a critical path that may no longer exist.
        let recipients: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| {
                !self.hosts[h].dead
                    && outcome.host_fresh.get(h).copied().unwrap_or(true)
                    && outcome.host_lead[h] < f_turbo
                    && outcome.host_compute_time[h].value()
                        >= slowest.value() * (1.0 - self.params.critical_band)
                    && self.hosts[h].target < tdp
            })
            .collect();
        if !recipients.is_empty() && self.pool > Watts::ZERO {
            let fair_share = self.pool / recipients.len() as f64;
            for &h in &recipients {
                let state = &mut self.hosts[h];
                // Restores are deliberately faster than cuts (twice the
                // nominal step): a throttled critical path costs elapsed
                // time immediately, so the search hovers just *above* the
                // needed power rather than below it. The reversal still
                // halves the subsequent cut probe.
                state.step_for(1, initial);
                let grant = fair_share
                    .min(initial * 2.0)
                    .min(tdp - state.target)
                    .min(self.pool);
                state.target += grant;
                self.pool -= grant;
                if grant > Watts::ZERO {
                    BALANCER_GRANTS.inc();
                    BALANCER_GRANTED_W.add(grant.value());
                }
            }
        }

        for (h, state) in self.hosts.iter().enumerate() {
            if state.dead {
                continue;
            }
            platform
                .set_host_limit(h, state.target)
                .expect("targets stay within the settable range");
        }
        debug_assert!(
            self.hosts.iter().map(|h| h.target).sum::<Watts>() + self.pool
                <= self.budget + Watts(1e-6),
            "balancer must never exceed its budget"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    fn run_balancer(
        config: KernelConfig,
        eps: &[f64],
        budget_per_host: f64,
        iterations: usize,
    ) -> (PowerBalancerAgent, JobPlatform) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let mut agent = PowerBalancerAgent::new(Watts(budget_per_host * eps.len() as f64));
        agent.init(&mut platform);
        for _ in 0..iterations {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        (agent, platform)
    }

    #[test]
    fn converges_to_needed_power_under_ample_budget() {
        // Heavy waiting: lots of harvestable slack. Under a TDP-level
        // budget the balancer should settle near the workload's needed
        // power, well below the uniform share.
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX);
        let (agent, platform) = run_balancer(config, &[1.0, 1.0], 240.0, 120);
        let load = KernelLoad::new(config, platform.model().spec());
        let needed = load.needed_power(platform.model(), 1.0);
        for t in agent.targets() {
            assert!(
                (t.value() - needed.value()).abs() < 16.0,
                "target {t} should approach needed {needed} (search breathes                  around the optimum)"
            );
        }
        // The harvested surplus sits unspent in the pool.
        assert!(agent.pool().value() > 50.0);
    }

    #[test]
    fn balanced_workload_keeps_its_power() {
        // Balanced, compute-heavy: needed == used; probing must back off
        // near the used power, not collapse to the floor.
        let config = KernelConfig::balanced_ymm(16.0);
        let (agent, platform) = run_balancer(config, &[1.0], 240.0, 120);
        let load = KernelLoad::new(config, platform.model().spec());
        let used = load.used_power(platform.model(), 1.0);
        let t = agent.targets()[0];
        assert!(
            t.value() > used.value() - 12.0,
            "target {t} collapsed below used {used}"
        );
    }

    #[test]
    fn shifts_power_toward_inefficient_node_under_scarcity() {
        // Two nodes, one inefficient, tight budget: the balancer should
        // give the inefficient (slower-under-cap) node more power.
        let config = KernelConfig::balanced_ymm(16.0);
        let (agent, _) = run_balancer(config, &[0.94, 1.07], 170.0, 200);
        let t = agent.targets();
        assert!(
            t[1].value() > t[0].value() + 2.0,
            "inefficient node got {} vs efficient {}",
            t[1],
            t[0]
        );
    }

    #[test]
    fn equalizes_epoch_times_under_scarcity() {
        let config = KernelConfig::balanced_ymm(16.0);
        let (_, mut platform) = run_balancer(config, &[0.94, 1.07], 170.0, 200);
        // Let enforcement settle on the final targets, then compare.
        for _ in 0..40 {
            platform.run_iteration();
        }
        let out = platform.run_iteration();
        let a = out.host_compute_time[0].value();
        let b = out.host_compute_time[1].value();
        assert!(
            (a - b).abs() / b < 0.06,
            "epoch times {a} vs {b} should be near-equal"
        );
    }

    #[test]
    fn dead_host_returns_its_power_to_the_survivors() {
        // Tight budget, three hosts. Kill one mid-run: the balancer must
        // not panic, must zero the dead host's target, and the survivors
        // end up with more power than their original scarce share.
        let config = KernelConfig::balanced_ymm(16.0);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let budget = Watts(3.0 * 160.0);
        let mut agent = PowerBalancerAgent::new(budget);
        agent.init(&mut platform);
        for _ in 0..40 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        platform.inject_fault(2, pmstack_simhw::FaultKind::NodeDeath);
        for _ in 0..80 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        let t = agent.targets();
        assert_eq!(t[2], Watts::ZERO, "dead host's target is zeroed");
        for &survivor in &t[..2] {
            assert!(
                survivor.value() > 165.0,
                "survivor holds {survivor}, should exceed the scarce 160 W share"
            );
        }
        let total: Watts = t.iter().copied().sum::<Watts>() + agent.pool();
        assert!(total <= budget + Watts(1e-6), "budget is conserved");
    }

    #[test]
    fn stale_telemetry_holds_the_last_known_cap() {
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let mut agent = PowerBalancerAgent::new(Watts(2.0 * 200.0));
        agent.init(&mut platform);
        for _ in 0..30 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        let held = agent.targets()[0];
        platform.inject_fault(
            0,
            pmstack_simhw::FaultKind::TelemetryDropout { iterations: 5 },
        );
        for _ in 0..5 {
            let out = platform.run_iteration();
            assert!(!out.host_fresh[0]);
            agent.adjust(&mut platform, &out);
            assert_eq!(
                agent.targets()[0],
                held,
                "blind host's cap must not move on stale data"
            );
        }
        // Fresh telemetry resumes the search.
        let out = platform.run_iteration();
        assert!(out.host_fresh[0]);
        agent.adjust(&mut platform, &out);
    }

    #[test]
    fn never_exceeds_budget() {
        let config = KernelConfig::new(
            4.0,
            VectorWidth::Ymm,
            WaitingFraction::P25,
            Imbalance::ThreeX,
        );
        let budget = Watts(180.0 * 3.0);
        let (agent, _) = run_balancer(config, &[1.0, 0.95, 1.05], 180.0, 150);
        let total: Watts = agent.targets().iter().copied().sum();
        assert!(total <= budget + Watts(1e-6));
    }
}
