//! The power balancer agent.
//!
//! Re-implements the behaviour of GEOPM's `power_balancer` that the paper's
//! methodology relies on (§III-A): *"the power balancer agent reduces the
//! power limit where it does not impact performance, and redistributes that
//! power where it can improve performance, all during execution."*
//!
//! The algorithm, per control step (one kernel iteration here), starting
//! from a uniform split of the job budget:
//!
//! 1. **Harvest** — a host whose lead (critical-path) frequency still holds
//!    the turbo ceiling has power to spare: one probe step is cut. On hardware
//!    whose PCU demotes spin-polling cores first, these cuts are
//!    performance-free and harvest the slack power of waiting/imbalanced
//!    ranks — the Fig. 4 → Fig. 5 gap. A throttled host that is *off* the
//!    job's critical path is pure slack and is trimmed too.
//! 2. **Grant** — freed watts are pooled and granted (rate-limited) to
//!    power-bound hosts on the critical path, equalizing iteration times
//!    across hosts that differ in manufacturing efficiency.
//!
//! Steps halve on direction reversals (the binary-search refinement the
//! real agent uses) and restores run faster than cuts, so the search
//! breathes slightly *above* each host's needed power — protecting elapsed
//! time while still harvesting the slack.

use crate::agent::Agent;
use crate::platform::{IterationOutcome, JobPlatform};
use pmstack_obs::{StaticCounter, StaticFloatCounter};
use pmstack_simhw::{Seconds, Watts, DEFAULT_SEGMENT_HOSTS};

/// Observability: probe cuts taken by the harvest pass.
static BALANCER_CUTS: StaticCounter = StaticCounter::new("runtime.balancer.cuts");
/// Observability: grants paid out to power-bound critical-path hosts.
static BALANCER_GRANTS: StaticCounter = StaticCounter::new("runtime.balancer.grants");
/// Observability: total watts harvested from slack hosts.
static BALANCER_HARVESTED_W: StaticFloatCounter =
    StaticFloatCounter::new("runtime.balancer.harvested_w");
/// Observability: total watts granted to power-bound hosts.
static BALANCER_GRANTED_W: StaticFloatCounter =
    StaticFloatCounter::new("runtime.balancer.granted_w");
/// Observability: host-limit writes the hierarchical balancer elided because
/// the target was bitwise unchanged since the last write.
static BALANCER_WRITES_SKIPPED: StaticCounter =
    StaticCounter::new("runtime.balancer.writes_skipped");

/// Tunable parameters of the balancer (exposed for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancerParams {
    /// Watts removed per probe/cut step.
    pub step: Watts,
    /// Relative epoch-time degradation treated as "no impact".
    pub tolerance: f64,
    /// Relative distance from the slowest host within which a host counts
    /// as on the critical path and may receive grants.
    pub critical_band: f64,
}

impl Default for BalancerParams {
    fn default() -> Self {
        Self {
            step: Watts(4.0),
            tolerance: 0.01,
            critical_band: 0.01,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HostState {
    /// The limit this agent wants for the host.
    target: Watts,
    /// Current adjustment step; halves on direction reversals (the
    /// balancer's binary-search convergence) and re-expands after
    /// sustained moves in one direction.
    step: Watts,
    /// Direction of the last adjustment: -1 cut, +1 grant, 0 none.
    last_dir: i8,
    /// Consecutive adjustments in the same direction.
    streak: u8,
    /// The host is fail-stop dead; its power was returned to the pool and
    /// it is excluded from the search permanently.
    dead: bool,
}

impl HostState {
    /// Update the step size for a move in direction `dir`, returning the
    /// step to use for this move.
    fn step_for(&mut self, dir: i8, initial: Watts) -> Watts {
        if self.last_dir != 0 && dir != self.last_dir {
            // Reversal: we bracketed the optimum; refine.
            self.step = (self.step * 0.5).max(Watts(0.25));
            self.streak = 0;
        } else {
            self.streak = self.streak.saturating_add(1);
            if self.streak >= 4 {
                // Sustained motion: the optimum moved; accelerate.
                self.step = (self.step * 2.0).min(initial);
                self.streak = 0;
            }
        }
        self.last_dir = dir;
        self.step
    }
}

/// The performance-aware power balancer.
#[derive(Debug, Clone)]
pub struct PowerBalancerAgent {
    budget: Watts,
    params: BalancerParams,
    hosts: Vec<HostState>,
    /// Watts freed by cuts, not yet granted.
    pool: Watts,
}

impl PowerBalancerAgent {
    /// Balance `budget` watts across the job.
    pub fn new(budget: Watts) -> Self {
        Self::with_params(budget, BalancerParams::default())
    }

    /// Balance with explicit parameters.
    pub fn with_params(budget: Watts, params: BalancerParams) -> Self {
        Self {
            budget,
            params,
            hosts: Vec::new(),
            pool: Watts::ZERO,
        }
    }

    /// The per-host limits the agent currently targets.
    pub fn targets(&self) -> Vec<Watts> {
        self.hosts.iter().map(|h| h.target).collect()
    }

    /// Watts currently freed and unallocated.
    pub fn pool(&self) -> Watts {
        self.pool
    }
}

impl Agent for PowerBalancerAgent {
    fn name(&self) -> &'static str {
        "power_balancer"
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.budget)
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let alive = platform.alive_hosts().max(1);
        let share = (self.budget / alive as f64).clamp(floor, tdp);
        self.hosts = (0..platform.num_hosts())
            .map(|h| {
                let dead = !platform.is_host_alive(h);
                HostState {
                    target: if dead { Watts::ZERO } else { share },
                    step: self.params.step,
                    last_dir: 0,
                    streak: 0,
                    dead,
                }
            })
            .collect();
        self.pool = Watts::ZERO;
        platform
            .set_uniform_limit(share)
            .expect("share is clamped into the settable range");
    }

    fn on_phase_change(&mut self, _platform: &mut JobPlatform) {
        // A new phase has a new power signature: re-open every host's
        // search at the full step so convergence is fast again.
        let initial = self.params.step;
        for state in &mut self.hosts {
            state.step = initial;
            state.last_dir = 0;
            state.streak = 0;
        }
    }

    fn adjust(&mut self, platform: &mut JobPlatform, outcome: &IterationOutcome) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let f_turbo = spec.f_turbo;

        // Graceful degradation: a host that died this interval leaves the
        // search and its power returns to the pool, where the grant path
        // redistributes it to the survivors — the within-job version of the
        // coordinator re-allocating a failed node's budget.
        for (h, state) in self.hosts.iter_mut().enumerate() {
            if !state.dead && !outcome.host_alive.get(h).copied().unwrap_or(true) {
                state.dead = true;
                self.pool += state.target;
                state.target = Watts::ZERO;
            }
        }

        let slowest = outcome
            .host_compute_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);

        // Harvest: a host whose critical path still holds the turbo ceiling
        // has free power above its needs (cuts there only demote spin-
        // polling cores); a throttled host *off* the job's critical path is
        // pure slack, trim it too. One step per control interval, the
        // gentle cadence the real balancer uses.
        let initial = self.params.step;
        for (h, state) in self.hosts.iter_mut().enumerate() {
            // Dead hosts left the search; stale telemetry means we cannot
            // judge slack, so the host holds its last-known cap untouched.
            if state.dead || !outcome.host_fresh.get(h).copied().unwrap_or(true) {
                continue;
            }
            let throttled = outcome.host_lead[h] < f_turbo;
            let off_critical = outcome.host_compute_time[h].value()
                < slowest.value() * (1.0 - self.params.critical_band);
            if (!throttled || off_critical) && state.target > floor {
                let cut = state.step_for(-1, initial).min(state.target - floor);
                state.target -= cut;
                self.pool += cut;
                BALANCER_CUTS.inc();
                BALANCER_HARVESTED_W.add(cut.value());
            }
        }

        // Grant: throttled hosts on the critical path are power-bound —
        // extra watts buy elapsed time. Rate-limited to one step per
        // interval so a transiently throttled host cannot swallow the pool.
        // Only hosts with fresh telemetry qualify: granting on stale data
        // would chase a critical path that may no longer exist.
        let recipients: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| {
                !self.hosts[h].dead
                    && outcome.host_fresh.get(h).copied().unwrap_or(true)
                    && outcome.host_lead[h] < f_turbo
                    && outcome.host_compute_time[h].value()
                        >= slowest.value() * (1.0 - self.params.critical_band)
                    && self.hosts[h].target < tdp
            })
            .collect();
        if !recipients.is_empty() && self.pool > Watts::ZERO {
            let fair_share = self.pool / recipients.len() as f64;
            for &h in &recipients {
                let state = &mut self.hosts[h];
                // Restores are deliberately faster than cuts (twice the
                // nominal step): a throttled critical path costs elapsed
                // time immediately, so the search hovers just *above* the
                // needed power rather than below it. The reversal still
                // halves the subsequent cut probe.
                state.step_for(1, initial);
                let grant = fair_share
                    .min(initial * 2.0)
                    .min(tdp - state.target)
                    .min(self.pool);
                state.target += grant;
                self.pool -= grant;
                if grant > Watts::ZERO {
                    BALANCER_GRANTS.inc();
                    BALANCER_GRANTED_W.add(grant.value());
                }
            }
        }

        for (h, state) in self.hosts.iter().enumerate() {
            if state.dead {
                continue;
            }
            platform
                .set_host_limit(h, state.target)
                .expect("targets stay within the settable range");
        }
        debug_assert!(
            self.hosts.iter().map(|h| h.target).sum::<Watts>() + self.pool
                <= self.budget + Watts(1e-6),
            "balancer must never exceed its budget"
        );
    }
}

/// Per-shard working set for one hierarchical `adjust` pass. Borrowing
/// disjoint `HostState` slices into per-shard tasks lets the harvest and
/// grant phases fan out across the exec pool without any shared mutable
/// state; the scalar summaries come back in the task itself.
struct ShardPass<'a> {
    /// Global index of the first host in this shard.
    base: usize,
    hosts: &'a mut [HostState],
    /// Shard-local critical path (max epoch time), filled by the survey.
    slowest: Seconds,
    /// Watts freed by harvest cuts and dead-host release in this shard.
    freed: Watts,
    /// Hosts in this shard eligible for grants after the harvest.
    recipients: usize,
    /// Grant budget the top level allotted to this shard.
    quota: Watts,
    /// Quota left unspent (recipients hit their TDP headroom first).
    unspent: Watts,
    cuts: u64,
    harvested: f64,
    grants: u64,
    granted: f64,
}

/// Whether a host may receive grant watts this interval. Must be a pure
/// function of state that does not change between the harvest and grant
/// phases, so the top-level count and the per-shard application agree.
fn grant_eligible(
    state: &HostState,
    outcome: &IterationOutcome,
    h: usize,
    f_turbo: pmstack_simhw::Hertz,
    tdp: Watts,
    slowest: Seconds,
    critical_band: f64,
) -> bool {
    !state.dead
        && outcome.host_fresh.get(h).copied().unwrap_or(true)
        && outcome.host_lead[h] < f_turbo
        && outcome.host_compute_time[h].value() >= slowest.value() * (1.0 - critical_band)
        && state.target < tdp
}

/// The power balancer, restructured for 100k–1M-host fleets.
///
/// Policy-wise this is [`PowerBalancerAgent`] — harvest slack from hosts
/// holding turbo or sitting off the critical path, grant the pool to
/// power-bound critical-path hosts, halve steps on reversals. Three things
/// change to make the per-interval pass scale:
///
/// 1. **Hierarchical aggregation.** The per-host survey (critical-path max)
///    and the harvest sweep run shard-by-shard across the exec pool; the
///    top level then works on O(shards) summaries, not O(hosts) state. The
///    grant pool is split into per-shard quotas (`per_grant × recipients`,
///    capped by the remaining pool *in shard order*) and each shard spends
///    its quota independently, so the redistribution needs no global pass.
/// 2. **Deterministic folds.** Cross-shard reductions happen in shard
///    order with the same arithmetic every run — `f64::max` for the
///    critical path and a fixed-order sum for the pool — so a parallel run
///    is bit-identical to a sequential one.
/// 3. **Write elision.** `set_host_limit` is only issued when a host's
///    target changed bitwise since the last write. The flat agent rewrites
///    every target every interval, which dirties every bank segment and
///    forbids steady-state replay even at a fixed point; eliding the
///    no-op writes keeps quiesced shards on the replay path. (A skipped
///    write also leaves any pending one-shot MSR glitch to be consumed by
///    the next telemetry read instead of the next write — an observable
///    but benign reordering this agent accepts by design.)
///
/// The grant arithmetic differs from the flat agent in one corner: a shard
/// cannot dip into watts another shard declined (`min(pool)` becomes
/// `min(shard quota)`), so under extreme TDP-headroom skew the pool drains
/// one interval later. The policy fixed points are the same.
#[derive(Debug, Clone)]
pub struct HierarchicalBalancerAgent {
    budget: Watts,
    params: BalancerParams,
    /// Hosts per shard; aligned with the platform's bank segments so a
    /// shard's writes land in one segment's cache line of invalidation.
    shard_hosts: usize,
    hosts: Vec<HostState>,
    /// Last limit actually written per host, for write elision. Compared
    /// bitwise: any real move produces a different f64.
    programmed: Vec<Watts>,
    pool: Watts,
}

impl HierarchicalBalancerAgent {
    /// Balance `budget` watts across the job, sharded at the bank's
    /// default segment size.
    pub fn new(budget: Watts) -> Self {
        Self::with_params(budget, BalancerParams::default())
    }

    /// Balance with explicit parameters.
    pub fn with_params(budget: Watts, params: BalancerParams) -> Self {
        Self {
            budget,
            params,
            shard_hosts: DEFAULT_SEGMENT_HOSTS,
            hosts: Vec::new(),
            programmed: Vec::new(),
            pool: Watts::ZERO,
        }
    }

    /// Override the shard size (pass the platform's `segment_hosts()` so
    /// agent shards and bank segments coincide).
    pub fn with_shard_hosts(mut self, hosts: usize) -> Self {
        assert!(hosts >= 1, "shards must hold at least one host");
        self.shard_hosts = hosts;
        self
    }

    /// The per-host limits the agent currently targets.
    pub fn targets(&self) -> Vec<Watts> {
        self.hosts.iter().map(|h| h.target).collect()
    }

    /// Watts currently freed and unallocated.
    pub fn pool(&self) -> Watts {
        self.pool
    }

    /// Split the host-state vec into per-shard tasks.
    fn shard_tasks(&mut self) -> Vec<ShardPass<'_>> {
        let shard = self.shard_hosts;
        let mut tasks = Vec::with_capacity(self.hosts.len().div_ceil(shard.max(1)));
        let mut rest: &mut [HostState] = &mut self.hosts;
        let mut base = 0;
        while !rest.is_empty() {
            let take = shard.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            tasks.push(ShardPass {
                base,
                hosts: head,
                slowest: Seconds::ZERO,
                freed: Watts::ZERO,
                recipients: 0,
                quota: Watts::ZERO,
                unspent: Watts::ZERO,
                cuts: 0,
                harvested: 0.0,
                grants: 0,
                granted: 0.0,
            });
            base += take;
            rest = tail;
        }
        tasks
    }
}

impl Agent for HierarchicalBalancerAgent {
    fn name(&self) -> &'static str {
        "hier_balancer"
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.budget)
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let alive = platform.alive_hosts().max(1);
        let share = (self.budget / alive as f64).clamp(floor, tdp);
        self.hosts = (0..platform.num_hosts())
            .map(|h| {
                let dead = !platform.is_host_alive(h);
                HostState {
                    target: if dead { Watts::ZERO } else { share },
                    step: self.params.step,
                    last_dir: 0,
                    streak: 0,
                    dead,
                }
            })
            .collect();
        self.programmed = self.hosts.iter().map(|s| s.target).collect();
        self.pool = Watts::ZERO;
        platform
            .set_uniform_limit(share)
            .expect("share is clamped into the settable range");
    }

    fn on_phase_change(&mut self, _platform: &mut JobPlatform) {
        let initial = self.params.step;
        for state in &mut self.hosts {
            state.step = initial;
            state.last_dir = 0;
            state.streak = 0;
        }
    }

    fn adjust(&mut self, platform: &mut JobPlatform, outcome: &IterationOutcome) {
        let spec = platform.model().spec();
        let floor = spec.min_rapl_per_node();
        let tdp = spec.tdp_per_node();
        let f_turbo = spec.f_turbo;
        let initial = self.params.step;
        let critical_band = self.params.critical_band;
        let carried_pool = self.pool;

        let mut tasks = self.shard_tasks();

        // Survey: shard-local critical-path maxima in parallel, then an
        // O(shards) in-order fold. f64 max is exact and associative, so
        // this equals the flat agent's full-fleet fold bit for bit.
        pmstack_exec::par_for_each_mut(&mut tasks, |_, t| {
            t.slowest = outcome.host_compute_time[t.base..t.base + t.hosts.len()]
                .iter()
                .copied()
                .fold(Seconds::ZERO, Seconds::max);
        });
        let slowest = tasks
            .iter()
            .map(|t| t.slowest)
            .fold(Seconds::ZERO, Seconds::max);

        // Harvest + dead-host release, one shard per task. Each shard
        // mutates only its own states and reports freed watts and its
        // recipient count; nothing global is touched.
        pmstack_exec::par_for_each_mut(&mut tasks, |_, t| {
            for (j, state) in t.hosts.iter_mut().enumerate() {
                let h = t.base + j;
                if !state.dead && !outcome.host_alive.get(h).copied().unwrap_or(true) {
                    state.dead = true;
                    t.freed += state.target;
                    state.target = Watts::ZERO;
                }
                if state.dead || !outcome.host_fresh.get(h).copied().unwrap_or(true) {
                    continue;
                }
                let throttled = outcome.host_lead[h] < f_turbo;
                let off_critical =
                    outcome.host_compute_time[h].value() < slowest.value() * (1.0 - critical_band);
                if (!throttled || off_critical) && state.target > floor {
                    let cut = state.step_for(-1, initial).min(state.target - floor);
                    state.target -= cut;
                    t.freed += cut;
                    t.cuts += 1;
                    t.harvested += cut.value();
                }
            }
            for (j, state) in t.hosts.iter().enumerate() {
                if grant_eligible(
                    state,
                    outcome,
                    t.base + j,
                    f_turbo,
                    tdp,
                    slowest,
                    critical_band,
                ) {
                    t.recipients += 1;
                }
            }
        });

        // Top level: pool the freed watts and split them into per-shard
        // quotas, both in shard order so the arithmetic is deterministic.
        let mut pool = carried_pool;
        let mut recipients = 0usize;
        for t in &tasks {
            pool += t.freed;
            recipients += t.recipients;
        }
        let mut remaining = pool;
        if recipients > 0 && pool > Watts::ZERO {
            let fair_share = pool / recipients as f64;
            let per_grant = fair_share.min(initial * 2.0);
            for t in &mut tasks {
                let quota = (per_grant * t.recipients as f64).min(remaining);
                remaining -= quota;
                t.quota = quota;
            }
            // Grants: each shard spends its own quota independently.
            pmstack_exec::par_for_each_mut(&mut tasks, |_, t| {
                let mut quota = t.quota;
                for (j, state) in t.hosts.iter_mut().enumerate() {
                    if !grant_eligible(
                        state,
                        outcome,
                        t.base + j,
                        f_turbo,
                        tdp,
                        slowest,
                        critical_band,
                    ) {
                        continue;
                    }
                    state.step_for(1, initial);
                    let grant = per_grant.min(tdp - state.target).min(quota);
                    state.target += grant;
                    quota -= grant;
                    if grant > Watts::ZERO {
                        t.grants += 1;
                        t.granted += grant.value();
                    }
                }
                t.unspent = quota;
            });
            for t in &tasks {
                remaining += t.unspent;
            }
        }

        let mut cuts = 0u64;
        let mut harvested = 0.0;
        let mut grants = 0u64;
        let mut granted = 0.0;
        for t in &tasks {
            cuts += t.cuts;
            harvested += t.harvested;
            grants += t.grants;
            granted += t.granted;
        }
        drop(tasks);
        self.pool = remaining;
        if cuts > 0 {
            BALANCER_CUTS.add(cuts);
            BALANCER_HARVESTED_W.add(harvested);
        }
        if grants > 0 {
            BALANCER_GRANTS.add(grants);
            BALANCER_GRANTED_W.add(granted);
        }

        // Apply, eliding bitwise no-op writes so a shard whose targets sit
        // at a fixed point never dirties its bank segment.
        let mut skipped = 0u64;
        for (h, state) in self.hosts.iter().enumerate() {
            if state.dead {
                continue;
            }
            if state.target.value().to_bits() == self.programmed[h].value().to_bits() {
                skipped += 1;
                continue;
            }
            platform
                .set_host_limit(h, state.target)
                .expect("targets stay within the settable range");
            self.programmed[h] = state.target;
        }
        if skipped > 0 {
            BALANCER_WRITES_SKIPPED.add(skipped);
        }
        debug_assert!(
            self.hosts.iter().map(|h| h.target).sum::<Watts>() + self.pool
                <= self.budget + Watts(1e-6),
            "balancer must never exceed its budget"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    fn run_balancer(
        config: KernelConfig,
        eps: &[f64],
        budget_per_host: f64,
        iterations: usize,
    ) -> (PowerBalancerAgent, JobPlatform) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let mut agent = PowerBalancerAgent::new(Watts(budget_per_host * eps.len() as f64));
        agent.init(&mut platform);
        for _ in 0..iterations {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        (agent, platform)
    }

    #[test]
    fn converges_to_needed_power_under_ample_budget() {
        // Heavy waiting: lots of harvestable slack. Under a TDP-level
        // budget the balancer should settle near the workload's needed
        // power, well below the uniform share.
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX);
        let (agent, platform) = run_balancer(config, &[1.0, 1.0], 240.0, 120);
        let load = KernelLoad::new(config, platform.model().spec());
        let needed = load.needed_power(platform.model(), 1.0);
        for t in agent.targets() {
            assert!(
                (t.value() - needed.value()).abs() < 16.0,
                "target {t} should approach needed {needed} (search breathes                  around the optimum)"
            );
        }
        // The harvested surplus sits unspent in the pool.
        assert!(agent.pool().value() > 50.0);
    }

    #[test]
    fn balanced_workload_keeps_its_power() {
        // Balanced, compute-heavy: needed == used; probing must back off
        // near the used power, not collapse to the floor.
        let config = KernelConfig::balanced_ymm(16.0);
        let (agent, platform) = run_balancer(config, &[1.0], 240.0, 120);
        let load = KernelLoad::new(config, platform.model().spec());
        let used = load.used_power(platform.model(), 1.0);
        let t = agent.targets()[0];
        assert!(
            t.value() > used.value() - 12.0,
            "target {t} collapsed below used {used}"
        );
    }

    #[test]
    fn shifts_power_toward_inefficient_node_under_scarcity() {
        // Two nodes, one inefficient, tight budget: the balancer should
        // give the inefficient (slower-under-cap) node more power.
        let config = KernelConfig::balanced_ymm(16.0);
        let (agent, _) = run_balancer(config, &[0.94, 1.07], 170.0, 200);
        let t = agent.targets();
        assert!(
            t[1].value() > t[0].value() + 2.0,
            "inefficient node got {} vs efficient {}",
            t[1],
            t[0]
        );
    }

    #[test]
    fn equalizes_epoch_times_under_scarcity() {
        let config = KernelConfig::balanced_ymm(16.0);
        let (_, mut platform) = run_balancer(config, &[0.94, 1.07], 170.0, 200);
        // Let enforcement settle on the final targets, then compare.
        for _ in 0..40 {
            platform.run_iteration();
        }
        let out = platform.run_iteration();
        let a = out.host_compute_time[0].value();
        let b = out.host_compute_time[1].value();
        assert!(
            (a - b).abs() / b < 0.06,
            "epoch times {a} vs {b} should be near-equal"
        );
    }

    #[test]
    fn dead_host_returns_its_power_to_the_survivors() {
        // Tight budget, three hosts. Kill one mid-run: the balancer must
        // not panic, must zero the dead host's target, and the survivors
        // end up with more power than their original scarce share.
        let config = KernelConfig::balanced_ymm(16.0);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let budget = Watts(3.0 * 160.0);
        let mut agent = PowerBalancerAgent::new(budget);
        agent.init(&mut platform);
        for _ in 0..40 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        platform.inject_fault(2, pmstack_simhw::FaultKind::NodeDeath);
        for _ in 0..80 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        let t = agent.targets();
        assert_eq!(t[2], Watts::ZERO, "dead host's target is zeroed");
        for &survivor in &t[..2] {
            assert!(
                survivor.value() > 165.0,
                "survivor holds {survivor}, should exceed the scarce 160 W share"
            );
        }
        let total: Watts = t.iter().copied().sum::<Watts>() + agent.pool();
        assert!(total <= budget + Watts(1e-6), "budget is conserved");
    }

    #[test]
    fn stale_telemetry_holds_the_last_known_cap() {
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config);
        let mut agent = PowerBalancerAgent::new(Watts(2.0 * 200.0));
        agent.init(&mut platform);
        for _ in 0..30 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        let held = agent.targets()[0];
        platform.inject_fault(
            0,
            pmstack_simhw::FaultKind::TelemetryDropout { iterations: 5 },
        );
        for _ in 0..5 {
            let out = platform.run_iteration();
            assert!(!out.host_fresh[0]);
            agent.adjust(&mut platform, &out);
            assert_eq!(
                agent.targets()[0],
                held,
                "blind host's cap must not move on stale data"
            );
        }
        // Fresh telemetry resumes the search.
        let out = platform.run_iteration();
        assert!(out.host_fresh[0]);
        agent.adjust(&mut platform, &out);
    }

    #[test]
    fn never_exceeds_budget() {
        let config = KernelConfig::new(
            4.0,
            VectorWidth::Ymm,
            WaitingFraction::P25,
            Imbalance::ThreeX,
        );
        let budget = Watts(180.0 * 3.0);
        let (agent, _) = run_balancer(config, &[1.0, 0.95, 1.05], 180.0, 150);
        let total: Watts = agent.targets().iter().copied().sum();
        assert!(total <= budget + Watts(1e-6));
    }

    fn run_hier(
        config: KernelConfig,
        eps: &[f64],
        budget_per_host: f64,
        shard_hosts: usize,
        iterations: usize,
    ) -> (HierarchicalBalancerAgent, JobPlatform) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config).with_segment_hosts(shard_hosts);
        let mut agent = HierarchicalBalancerAgent::new(Watts(budget_per_host * eps.len() as f64))
            .with_shard_hosts(shard_hosts);
        agent.init(&mut platform);
        for _ in 0..iterations {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        (agent, platform)
    }

    #[test]
    fn hierarchical_shifts_power_toward_inefficient_node_under_scarcity() {
        // Same scenario as the flat agent's test, with hosts split across
        // shards: the inefficient (slower-under-cap) node must still end
        // up with more power.
        let config = KernelConfig::balanced_ymm(16.0);
        let (agent, _) = run_hier(config, &[0.94, 1.07], 170.0, 1, 200);
        let t = agent.targets();
        assert!(
            t[1].value() > t[0].value() + 2.0,
            "inefficient node got {} vs efficient {}",
            t[1],
            t[0]
        );
    }

    #[test]
    fn hierarchical_tracks_flat_policy_fixed_point() {
        // Both agents on identical fleets under the same scarce budget
        // must settle in the same neighbourhood: same per-host ordering
        // and targets within a few probe steps of each other.
        let config = KernelConfig::balanced_ymm(16.0);
        let eps = [0.94, 1.0, 1.07, 0.97];
        let (flat, _) = run_balancer(config, &eps, 170.0, 250);
        let (hier, _) = run_hier(config, &eps, 170.0, 2, 250);
        let tf = flat.targets();
        let th = hier.targets();
        for (h, (a, b)) in tf.iter().zip(&th).enumerate() {
            assert!(
                (a.value() - b.value()).abs() < 12.0,
                "host {h}: flat {a} vs hierarchical {b} diverged"
            );
        }
    }

    #[test]
    fn hierarchical_dead_host_returns_its_power_to_the_survivors() {
        let config = KernelConfig::balanced_ymm(16.0);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config).with_segment_hosts(2);
        let budget = Watts(3.0 * 160.0);
        let mut agent = HierarchicalBalancerAgent::new(budget).with_shard_hosts(2);
        agent.init(&mut platform);
        for _ in 0..40 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        platform.inject_fault(2, pmstack_simhw::FaultKind::NodeDeath);
        for _ in 0..80 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
        }
        let t = agent.targets();
        assert_eq!(t[2], Watts::ZERO, "dead host's target is zeroed");
        for &survivor in &t[..2] {
            assert!(
                survivor.value() > 165.0,
                "survivor holds {survivor}, should exceed the scarce 160 W share"
            );
        }
        let total: Watts = t.iter().copied().sum::<Watts>() + agent.pool();
        assert!(total <= budget + Watts(1e-6), "budget is conserved");
    }

    #[test]
    fn hierarchical_never_exceeds_budget() {
        let config = KernelConfig::new(
            4.0,
            VectorWidth::Ymm,
            WaitingFraction::P25,
            Imbalance::ThreeX,
        );
        let budget = Watts(180.0 * 3.0);
        let (agent, _) = run_hier(config, &[1.0, 0.95, 1.05], 180.0, 2, 150);
        let total: Watts = agent.targets().iter().copied().sum::<Watts>() + agent.pool();
        assert!(total <= budget + Watts(1e-6));
    }

    #[test]
    fn hierarchical_write_elision_lets_the_platform_settle() {
        // Uniform fleet, balanced workload, scarce budget: every host is
        // throttled and on the critical path, so after the pool drains the
        // targets freeze. The flat agent would keep rewriting the same
        // limits and dirty every segment each interval; the hierarchical
        // agent elides those writes, so the platform's steady-state
        // fast-forward must engage *while the agent is still running*.
        let config = KernelConfig::balanced_ymm(16.0);
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = [1.0, 1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut platform = JobPlatform::new(model, nodes, config).with_segment_hosts(2);
        let mut agent = HierarchicalBalancerAgent::new(Watts(4.0 * 150.0)).with_shard_hosts(2);
        agent.init(&mut platform);
        let mut settled = false;
        for _ in 0..300 {
            let out = platform.run_iteration();
            agent.adjust(&mut platform, &out);
            if platform.steady_state_active() {
                settled = true;
                break;
            }
        }
        assert!(
            settled,
            "write elision should let steady-state replay engage under a live agent"
        );
    }
}
