//! The agent implementations the paper's methodology uses.

mod balancer;
mod domains;
mod freq_governor;
mod governor;
mod monitor;

pub use balancer::{BalancerParams, HierarchicalBalancerAgent, PowerBalancerAgent};
pub use domains::{DomainBalancer, DomainBalancerParams, DomainShift};
pub use freq_governor::FrequencyGovernorAgent;
pub use governor::PowerGovernorAgent;
pub use monitor::MonitorAgent;
