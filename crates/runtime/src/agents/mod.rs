//! The agent implementations the paper's methodology uses.

mod balancer;
mod freq_governor;
mod governor;
mod monitor;

pub use balancer::{BalancerParams, HierarchicalBalancerAgent, PowerBalancerAgent};
pub use freq_governor::FrequencyGovernorAgent;
pub use governor::PowerGovernorAgent;
pub use monitor::MonitorAgent;
