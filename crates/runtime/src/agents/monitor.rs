//! The monitor agent: observe, never control.
//!
//! GEOPM's `monitor` agent "simply reports requested metrics of interest,
//! such as energy and time, without modifying system behavior" (§III-B).
//! The paper's *used power* characterization (Fig. 4) comes from runs under
//! this agent with no power limit.

use crate::agent::Agent;
use crate::platform::JobPlatform;

/// The observe-only agent.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorAgent;

impl Agent for MonitorAgent {
    fn name(&self) -> &'static str {
        "monitor"
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        // Release any inherited limit: program every host to node TDP,
        // the power-on default.
        let tdp = platform.model().spec().tdp_per_node();
        platform
            .set_uniform_limit(tdp)
            .expect("TDP is always settable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::KernelConfig;
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};

    #[test]
    fn monitor_resets_limits_to_tdp() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = vec![Node::new(NodeId(0), &model, 1.0).unwrap()];
        let mut platform = JobPlatform::new(model, nodes, KernelConfig::balanced_ymm(8.0));
        platform.set_uniform_limit(Watts(150.0)).unwrap();
        let mut agent = MonitorAgent;
        agent.init(&mut platform);
        assert!((platform.host_limits()[0].value() - 240.0).abs() < 0.5);
        assert!(agent.budget().is_none());
    }
}
