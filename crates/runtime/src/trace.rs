//! Execution traces — the per-control-interval signal record GEOPM writes
//! alongside its reports.
//!
//! A [`Tracer`] collects one [`TraceRecord`] per iteration per host;
//! [`Trace::to_csv`] renders the standard column layout for offline
//! analysis, and the accessors answer the questions agents' post-mortems
//! ask (power over time, limit over time, convergence point).

use crate::platform::IterationOutcome;
use pmstack_simhw::{Hertz, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One host's signals during one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time at the end of the iteration.
    pub time: Seconds,
    /// Iteration index.
    pub iteration: usize,
    /// Host index within the job.
    pub host: usize,
    /// Average node power during the iteration.
    pub power: Watts,
    /// Lead (critical-core) frequency.
    pub freq: Hertz,
    /// Enforced node power limit.
    pub limit: Watts,
    /// Critical-path compute time of the iteration on this host.
    pub epoch: Seconds,
}

/// A whole-job execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Build a trace directly from records (tests and offline tooling;
    /// callers are responsible for iteration-major ordering).
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// All records, iteration-major then host order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records for one host, in time order.
    pub fn host(&self, host: usize) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.host == host).collect()
    }

    /// Iterations recorded.
    pub fn iterations(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.iteration + 1)
            .max()
            .unwrap_or(0)
    }

    /// The first iteration after which a host's limit stays within
    /// `tolerance` watts of its final value — the convergence point of an
    /// adaptive agent on that host.
    pub fn convergence_iteration(&self, host: usize, tolerance: Watts) -> Option<usize> {
        let series = self.host(host);
        let last = series.last()?.limit;
        let converged_from = series
            .iter()
            .rposition(|r| (r.limit - last).abs() > tolerance)
            .map(|i| i + 1)
            .unwrap_or(0);
        series.get(converged_from).map(|r| r.iteration)
    }

    /// GEOPM-style CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,iteration,host,power_w,freq_ghz,limit_w,epoch_s\n");
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:.4},{},{},{:.2},{:.3},{:.2},{:.5}",
                r.time.value(),
                r.iteration,
                r.host,
                r.power.value(),
                r.freq.ghz(),
                r.limit.value(),
                r.epoch.value()
            );
        }
        out
    }
}

/// Collects records from iteration outcomes.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    trace: Trace,
    iteration: usize,
    time: Seconds,
}

impl Tracer {
    /// A fresh tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one iteration's outcome.
    pub fn record(&mut self, outcome: &IterationOutcome) {
        self.time += outcome.elapsed;
        for host in 0..outcome.host_power.len() {
            self.trace.records.push(TraceRecord {
                time: self.time,
                iteration: self.iteration,
                host,
                power: outcome.host_power[host],
                freq: outcome.host_lead[host],
                limit: outcome.host_limit[host],
                epoch: outcome.host_compute_time[host],
            });
        }
        self.iteration += 1;
    }

    /// Finish, yielding the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Agent;
    use crate::agents::PowerBalancerAgent;
    use crate::platform::JobPlatform;
    use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    fn traced_balancer_run(iters: usize) -> Trace {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = vec![
            Node::new(NodeId(0), &model, 0.98).unwrap(),
            Node::new(NodeId(1), &model, 1.03).unwrap(),
        ];
        let mut platform = JobPlatform::new(
            model,
            nodes,
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX),
        );
        let mut agent = PowerBalancerAgent::new(Watts(2.0 * 240.0));
        agent.init(&mut platform);
        let mut tracer = Tracer::new();
        for _ in 0..iters {
            let out = platform.run_iteration();
            tracer.record(&out);
            agent.adjust(&mut platform, &out);
        }
        tracer.finish()
    }

    #[test]
    fn trace_covers_every_host_and_iteration() {
        let trace = traced_balancer_run(20);
        assert_eq!(trace.iterations(), 20);
        assert_eq!(trace.records().len(), 40);
        assert_eq!(trace.host(0).len(), 20);
        assert_eq!(trace.host(1).len(), 20);
        // Time is monotone.
        let times: Vec<f64> = trace.host(0).iter().map(|r| r.time.value()).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn trace_shows_balancer_harvest() {
        let trace = traced_balancer_run(80);
        let series = trace.host(0);
        let early = series[1].limit.value();
        let late = series.last().unwrap().limit.value();
        assert!(
            late < early - 20.0,
            "limit should drop as slack is harvested: {early} → {late}"
        );
        // The convergence detector finds a point before the end.
        let conv = trace.convergence_iteration(0, Watts(6.0)).unwrap();
        assert!(conv < 79, "converged at {conv}");
    }

    #[test]
    fn csv_is_rectangular() {
        let trace = traced_balancer_run(5);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 10);
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn empty_trace_is_sane() {
        let trace = Tracer::new().finish();
        assert_eq!(trace.iterations(), 0);
        assert!(trace.convergence_iteration(0, Watts(1.0)).is_none());
        assert_eq!(trace.to_csv().lines().count(), 1);
    }
}
