//! The resource-manager ↔ job-runtime endpoint.
//!
//! The paper's conclusion calls out that "there is not currently an existing
//! protocol or central mechanism for coordinating power management decisions
//! across a data center's power delivery hierarchy" and emulates the loop
//! with pre-characterization. This module implements the missing protocol as
//! a small shared-state channel (mirroring GEOPM's endpoint design): the
//! resource manager posts a job power budget; the runtime acknowledges it
//! and reports achieved power back.

use parking_lot::Mutex;
use pmstack_simhw::Watts;
use std::sync::Arc;

#[derive(Debug, Default)]
struct EndpointState {
    budget: Option<Watts>,
    budget_serial: u64,
    achieved: Option<Watts>,
    achieved_samples: u64,
}

/// A bidirectional RM ↔ runtime power-coordination channel.
#[derive(Debug, Clone, Default)]
pub struct Endpoint {
    state: Arc<Mutex<EndpointState>>,
}

impl Endpoint {
    /// A fresh endpoint with no budget posted.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resource-manager half.
    pub fn rm_half(&self) -> EndpointRm {
        EndpointRm {
            state: Arc::clone(&self.state),
        }
    }

    /// The job-runtime half.
    pub fn runtime_half(&self) -> EndpointRuntime {
        EndpointRuntime {
            state: Arc::clone(&self.state),
        }
    }
}

/// The resource manager's view of an endpoint.
#[derive(Debug, Clone)]
pub struct EndpointRm {
    state: Arc<Mutex<EndpointState>>,
}

impl EndpointRm {
    /// Post (or update) the job's power budget.
    pub fn set_budget(&self, budget: Watts) {
        let mut s = self.state.lock();
        s.budget = Some(budget);
        s.budget_serial += 1;
    }

    /// The most recent power the runtime reported achieving.
    pub fn achieved_power(&self) -> Option<Watts> {
        self.state.lock().achieved
    }

    /// How many achieved-power samples the runtime has reported.
    pub fn sample_count(&self) -> u64 {
        self.state.lock().achieved_samples
    }
}

/// The job runtime's view of an endpoint.
#[derive(Debug, Clone)]
pub struct EndpointRuntime {
    state: Arc<Mutex<EndpointState>>,
}

impl EndpointRuntime {
    /// The currently posted budget, with its serial (bumps on every RM
    /// update so the runtime can detect changes cheaply).
    pub fn budget(&self) -> Option<(Watts, u64)> {
        let s = self.state.lock();
        s.budget.map(|b| (b, s.budget_serial))
    }

    /// Report the job's achieved power for this control interval.
    pub fn report_achieved(&self, power: Watts) {
        let mut s = self.state.lock();
        s.achieved = Some(power);
        s.achieved_samples += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_flows_rm_to_runtime() {
        let ep = Endpoint::new();
        let rm = ep.rm_half();
        let rt = ep.runtime_half();
        assert!(rt.budget().is_none());
        rm.set_budget(Watts(1500.0));
        let (b, serial) = rt.budget().unwrap();
        assert_eq!(b, Watts(1500.0));
        rm.set_budget(Watts(1600.0));
        let (b2, serial2) = rt.budget().unwrap();
        assert_eq!(b2, Watts(1600.0));
        assert!(serial2 > serial, "serial must bump on update");
    }

    #[test]
    fn achieved_flows_runtime_to_rm() {
        let ep = Endpoint::new();
        let rm = ep.rm_half();
        let rt = ep.runtime_half();
        assert!(rm.achieved_power().is_none());
        rt.report_achieved(Watts(1450.0));
        rt.report_achieved(Watts(1480.0));
        assert_eq!(rm.achieved_power(), Some(Watts(1480.0)));
        assert_eq!(rm.sample_count(), 2);
    }

    #[test]
    fn endpoint_is_shareable_across_threads() {
        let ep = Endpoint::new();
        let rm = ep.rm_half();
        let rt = ep.runtime_half();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    rt.report_achieved(Watts(f64::from(i)));
                }
            });
            s.spawn(move || {
                for i in 0..100 {
                    rm.set_budget(Watts(f64::from(i)));
                }
            });
        });
        assert_eq!(ep.rm_half().sample_count(), 100);
    }
}
