//! # pmstack-runtime — a GEOPM-like job runtime
//!
//! The paper uses the GEOPM job runtime to apply energy- and performance-
//! aware power management inside a job (§III-A). This crate re-implements
//! the pieces the paper depends on, against the simulated hardware:
//!
//! * [`platform`] — the *PlatformIO* layer: a job's view of its hosts,
//!   bulk-synchronous iteration execution, per-host signal sampling
//!   (power, energy, frequency, epoch time) and the power-limit control.
//! * [`agent`] + [`agents`] — the plugin architecture and the three agents
//!   the paper exercises:
//!   [`agents::MonitorAgent`] (observe only),
//!   [`agents::PowerGovernorAgent`] (uniform static
//!   caps), and [`agents::PowerBalancerAgent`]
//!   (reduce the limit where it does not impact performance, redistribute
//!   where it does — the §III-A feedback loop).
//! * [`controller`] — the per-job control loop driving iterations and
//!   agent adjustments, producing [`report`]s.
//! * [`trace`] — per-iteration signal traces (the GEOPM trace-file
//!   analogue) with a convergence detector.
//! * [`endpoint`] — the resource-manager ↔ runtime channel over which a
//!   job's power budget is updated at execution time (the protocol the
//!   paper names as future work and emulates via pre-characterization; we
//!   implement both modes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod agents;
pub mod controller;
pub mod endpoint;
pub mod platform;
pub mod report;
pub mod trace;

pub use agent::Agent;
pub use agents::{
    DomainBalancer, DomainBalancerParams, DomainShift, FrequencyGovernorAgent,
    HierarchicalBalancerAgent, MonitorAgent, PowerBalancerAgent, PowerGovernorAgent,
};
pub use controller::Controller;
pub use endpoint::{Endpoint, EndpointRm, EndpointRuntime};
pub use platform::{FleetSnapshot, IterationBuffers, IterationOutcome, JobPlatform};
pub use report::{HostReport, JobReport};
pub use trace::{Trace, TraceRecord, Tracer};
