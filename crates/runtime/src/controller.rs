//! The per-job control loop.
//!
//! Drives the job's iterations, lets the agent adjust limits after each one
//! (GEOPM's controller cadence), optionally consumes budget updates from a
//! resource-manager [`crate::endpoint::Endpoint`], and assembles the
//! [`crate::report::JobReport`].

use crate::agent::Agent;
use crate::endpoint::EndpointRuntime;
use crate::platform::{IterationBuffers, JobPlatform};
use crate::report::{HostReport, JobReport};
use pmstack_simhw::{Joules, NodeHealth, Seconds, Watts};

/// Fleets at least this large fan the controller's per-host accumulators
/// (epoch sums, tail-limit sums) across the exec pool in segment-aligned
/// chunks; below it the spawn overhead dwarfs the adds.
const PAR_ACCUM_THRESHOLD: usize = 4096;

/// `sums[i] += src[i]` for every `i`. Elementwise, so chunking cannot change
/// a single bit; mega-fleets run the chunks on the pool, aligned to the
/// bank's segment size so the memory stride matches the stepping pass.
fn accumulate_into<T>(sums: &mut [T], src: &[T], segment: usize)
where
    T: std::ops::AddAssign + Copy + Send + Sync,
{
    debug_assert_eq!(sums.len(), src.len());
    if sums.len() < PAR_ACCUM_THRESHOLD {
        for (s, v) in sums.iter_mut().zip(src) {
            *s += *v;
        }
        return;
    }
    pmstack_exec::par_chunks_mut(sums, segment.max(1), |base, block| {
        for (j, s) in block.iter_mut().enumerate() {
            *s += src[base + j];
        }
    });
}

/// A job controller binding a platform to an agent.
pub struct Controller<A: Agent> {
    platform: JobPlatform,
    agent: A,
    endpoint: Option<EndpointRuntime>,
}

impl<A: Agent> Controller<A> {
    /// Create a controller over a platform.
    pub fn new(platform: JobPlatform, agent: A) -> Self {
        Self {
            platform,
            agent,
            endpoint: None,
        }
    }

    /// Attach a resource-manager endpoint; budget updates posted there are
    /// picked up between iterations (the execution-time feedback loop the
    /// paper emulates with pre-characterization).
    pub fn with_endpoint(mut self, endpoint: EndpointRuntime) -> Self {
        self.endpoint = Some(endpoint);
        self
    }

    /// Access the platform.
    pub fn platform(&self) -> &JobPlatform {
        &self.platform
    }

    /// Access the agent.
    pub fn agent(&self) -> &A {
        &self.agent
    }

    /// Run `iterations` bulk-synchronous iterations and report.
    pub fn run(&mut self, iterations: usize) -> JobReport {
        assert!(iterations > 0, "a run needs at least one iteration");
        let _span = pmstack_obs::span!("runtime.job.secs");
        self.agent.init(&mut self.platform);

        let n = self.platform.num_hosts();
        let energy_start = self.platform.host_energy();
        let mut iteration_times = Vec::with_capacity(iterations);
        let mut epoch_sums = vec![Seconds::ZERO; n];
        let mut elapsed = Seconds::ZERO;
        // Steady-state limits are reported as the mean over the last
        // quarter of the run: dynamic agents breathe around their optimum,
        // and the time average is what pre-characterization consumes.
        let tail_start = iterations - (iterations / 4).max(1).min(iterations);
        let mut tail_limit_sums = vec![Watts::ZERO; n];
        let mut tail_count = 0usize;
        let mut bufs = IterationBuffers::new();
        let mut limits_buf = Vec::with_capacity(n);

        for iter in 0..iterations {
            self.platform.run_iteration_into(&mut bufs);
            let outcome = bufs.outcome();
            elapsed += outcome.elapsed;
            iteration_times.push(outcome.elapsed);
            let segment = self.platform.segment_hosts();
            accumulate_into(&mut epoch_sums, &outcome.host_compute_time, segment);
            Self::mark_host_trust(&mut self.platform, outcome);
            self.agent.adjust(&mut self.platform, outcome);
            if iter >= tail_start {
                self.platform.host_limits_into(&mut limits_buf);
                accumulate_into(&mut tail_limit_sums, &limits_buf, segment);
                tail_count += 1;
            }
            if let Some(ep) = &self.endpoint {
                ep.report_achieved(outcome.total_power());
            }
        }

        let energy_end = self.platform.host_energy();
        let limits: Vec<Watts> = tail_limit_sums
            .iter()
            .map(|&s| s / tail_count.max(1) as f64)
            .collect();
        let hosts: Vec<HostReport> = (0..n)
            .map(|h| {
                let energy = energy_end[h] - energy_start[h];
                HostReport {
                    host: h,
                    eps: self.platform.host_eps(h),
                    avg_power: if elapsed.value() > 0.0 {
                        energy / elapsed
                    } else {
                        Watts::ZERO
                    },
                    energy,
                    final_limit: limits[h],
                    mean_epoch: epoch_sums[h] / iterations as f64,
                }
            })
            .collect();

        let flops =
            self.platform.load().perf().node_flops_per_iteration() * iterations as f64 * n as f64;
        JobReport {
            agent: self.agent.name().to_string(),
            iterations,
            elapsed,
            iteration_times,
            energy: hosts.iter().map(|h| h.energy).sum::<Joules>(),
            flops,
            hosts,
        }
    }

    /// Run a multi-phase application: each phase rebinds the platform's
    /// workload, notifies the agent (adaptive agents re-open their search),
    /// and contributes its iterations to one combined report.
    pub fn run_phased(&mut self, workload: &pmstack_kernel::PhasedWorkload) -> JobReport {
        assert!(!workload.is_empty(), "a run needs at least one phase");
        self.agent.init(&mut self.platform);

        let n = self.platform.num_hosts();
        let energy_start = self.platform.host_energy();
        let mut iteration_times = Vec::with_capacity(workload.total_iterations());
        let mut epoch_sums = vec![Seconds::ZERO; n];
        let mut elapsed = Seconds::ZERO;
        let mut flops = 0.0;
        let mut limit_sums = vec![Watts::ZERO; n];
        let mut limit_count = 0usize;
        let mut bufs = IterationBuffers::new();
        let mut limits_buf = Vec::with_capacity(n);

        for (p, phase) in workload.phases.iter().enumerate() {
            self.platform.set_config(phase.config);
            if p > 0 {
                self.agent.on_phase_change(&mut self.platform);
            }
            for _ in 0..phase.iterations {
                self.platform.run_iteration_into(&mut bufs);
                let outcome = bufs.outcome();
                elapsed += outcome.elapsed;
                iteration_times.push(outcome.elapsed);
                let segment = self.platform.segment_hosts();
                accumulate_into(&mut epoch_sums, &outcome.host_compute_time, segment);
                Self::mark_host_trust(&mut self.platform, outcome);
                self.agent.adjust(&mut self.platform, outcome);
                self.platform.host_limits_into(&mut limits_buf);
                accumulate_into(&mut limit_sums, &limits_buf, segment);
                limit_count += 1;
                if let Some(ep) = &self.endpoint {
                    ep.report_achieved(outcome.total_power());
                }
            }
            flops += self.platform.load().perf().node_flops_per_iteration()
                * phase.iterations as f64
                * n as f64;
        }

        let energy_end = self.platform.host_energy();
        let total_iters = workload.total_iterations();
        let hosts: Vec<HostReport> = (0..n)
            .map(|h| {
                let energy = energy_end[h] - energy_start[h];
                HostReport {
                    host: h,
                    eps: self.platform.host_eps(h),
                    avg_power: if elapsed.value() > 0.0 {
                        energy / elapsed
                    } else {
                        Watts::ZERO
                    },
                    energy,
                    final_limit: limit_sums[h] / limit_count.max(1) as f64,
                    mean_epoch: epoch_sums[h] / total_iters as f64,
                }
            })
            .collect();
        JobReport {
            agent: self.agent.name().to_string(),
            iterations: total_iters,
            elapsed,
            iteration_times,
            energy: hosts.iter().map(|h| h.energy).sum::<Joules>(),
            flops,
            hosts,
        }
    }

    /// Propagate the iteration's telemetry quality into host health: hosts
    /// with stale readings become suspect (agents hold their last-known
    /// caps there), hosts with fresh readings are cleared again. Death is
    /// recorded by the hardware layer itself. (Associated function so the
    /// borrowed outcome can live in the caller's iteration buffers.)
    fn mark_host_trust(platform: &mut JobPlatform, outcome: &crate::platform::IterationOutcome) {
        for h in 0..outcome.host_alive.len() {
            if !outcome.host_alive[h] {
                continue;
            }
            // Skip no-op transitions: in steady state every host is already
            // Healthy and fresh, so this pass is a read-only scan instead of
            // a fleet of redundant health writes.
            let health = platform.host_health_of(h);
            if outcome.host_fresh[h] {
                if health != NodeHealth::Healthy {
                    platform.mark_host_healthy(h);
                }
            } else if health != NodeHealth::Suspect {
                platform.mark_host_suspect(h);
            }
        }
    }

    /// Tear down, returning the nodes to the caller.
    pub fn into_platform(self) -> JobPlatform {
        self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{MonitorAgent, PowerBalancerAgent, PowerGovernorAgent};
    use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};

    fn platform(config: KernelConfig, eps: &[f64]) -> JobPlatform {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        JobPlatform::new(model, nodes, config)
    }

    #[test]
    fn monitor_run_reports_used_power() {
        let config = KernelConfig::balanced_ymm(8.0);
        let p = platform(config, &[1.0, 1.0]);
        let mut c = Controller::new(p, MonitorAgent);
        let report = c.run(20);
        assert_eq!(report.iterations, 20);
        assert_eq!(report.hosts.len(), 2);
        // Uncapped balanced ymm 8 F/B draws ~229 W/node in the model.
        for h in &report.hosts {
            assert!(
                (h.avg_power.value() - 229.0).abs() < 8.0,
                "avg power {}",
                h.avg_power
            );
        }
        assert!(report.flops > 0.0);
        assert!(report.elapsed.value() > 0.0);
    }

    #[test]
    fn governor_run_respects_budget() {
        let config = KernelConfig::balanced_ymm(16.0);
        let p = platform(config, &[1.0, 1.0]);
        let budget = Watts(2.0 * 170.0);
        let mut c = Controller::new(p, PowerGovernorAgent::new(budget));
        let report = c.run(60);
        // After the enforcement filter settles, average power within budget
        // (small transient at the start is expected).
        assert!(
            report.avg_power() <= budget + Watts(8.0),
            "avg {} vs budget {}",
            report.avg_power(),
            budget
        );
    }

    #[test]
    fn balancer_beats_governor_on_imbalanced_job_under_same_budget() {
        // The headline property of §III-A: with the same budget, the
        // balancer finishes imbalanced work no slower and cheaper — or,
        // under scarcity, faster.
        let config = KernelConfig::new(
            16.0,
            VectorWidth::Ymm,
            WaitingFraction::P50,
            Imbalance::TwoX,
        );
        let budget = Watts(2.0 * 175.0);
        let gov = Controller::new(
            platform(config, &[1.0, 1.05]),
            PowerGovernorAgent::new(budget),
        )
        .run(150);
        let bal = Controller::new(
            platform(config, &[1.0, 1.05]),
            PowerBalancerAgent::new(budget),
        )
        .run(150);
        assert!(
            bal.elapsed.value() <= gov.elapsed.value() * 1.01,
            "balancer {} vs governor {}",
            bal.elapsed,
            gov.elapsed
        );
        assert!(
            bal.energy < gov.energy,
            "balancer energy {} vs governor {}",
            bal.energy,
            gov.energy
        );
    }

    #[test]
    fn report_iteration_series_has_run_length() {
        let config = KernelConfig::balanced_ymm(4.0);
        let mut c = Controller::new(platform(config, &[1.0]), MonitorAgent);
        let report = c.run(7);
        assert_eq!(report.iteration_times.len(), 7);
        let sum: f64 = report.iteration_times.iter().map(|t| t.value()).sum();
        assert!((sum - report.elapsed.value()).abs() < 1e-9);
    }
}
