//! Runtime reports — the artifact the paper's characterization pipeline
//! consumes ("obtained from GEOPM reports", §III-A).

use pmstack_simhw::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Per-host section of a job report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostReport {
    /// Host index within the job.
    pub host: usize,
    /// Node efficiency factor (diagnostic; not visible to real tools).
    pub eps: f64,
    /// Average node power over the run.
    pub avg_power: Watts,
    /// Total node energy.
    pub energy: Joules,
    /// Final programmed node power limit.
    pub final_limit: Watts,
    /// Mean per-iteration critical-path compute time.
    pub mean_epoch: Seconds,
}

/// A whole-job report produced by the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The agent that governed the run.
    pub agent: String,
    /// Iterations executed.
    pub iterations: usize,
    /// Elapsed wall time of the run.
    pub elapsed: Seconds,
    /// Per-iteration elapsed times (for confidence intervals).
    pub iteration_times: Vec<Seconds>,
    /// Total job energy.
    pub energy: Joules,
    /// Total FLOPs performed by the job.
    pub flops: f64,
    /// Per-host details.
    pub hosts: Vec<HostReport>,
}

impl JobReport {
    /// Average job power over the run.
    pub fn avg_power(&self) -> Watts {
        if self.elapsed.value() <= 0.0 {
            return Watts::ZERO;
        }
        self.energy / self.elapsed
    }

    /// Achieved FLOPS per watt.
    pub fn flops_per_watt(&self) -> f64 {
        if self.energy.value() <= 0.0 {
            return 0.0;
        }
        self.flops / self.energy.value()
    }

    /// Energy-delay product (J·s).
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.value() * self.elapsed.value()
    }

    /// The highest per-host average power — what the `Precharacterized`
    /// policy submits as its job cap (§III-B).
    pub fn max_host_avg_power(&self) -> Watts {
        self.hosts
            .iter()
            .map(|h| h.avg_power)
            .fold(Watts::ZERO, Watts::max)
    }

    /// Per-host final limits — the "final power distribution from a
    /// pre-characterization run" the paper's policies consume.
    pub fn final_limits(&self) -> Vec<Watts> {
        self.hosts.iter().map(|h| h.final_limit).collect()
    }

    /// Per-host average powers.
    pub fn host_avg_powers(&self) -> Vec<Watts> {
        self.hosts.iter().map(|h| h.avg_power).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> JobReport {
        JobReport {
            agent: "monitor".into(),
            iterations: 2,
            elapsed: Seconds(10.0),
            iteration_times: vec![Seconds(5.0), Seconds(5.0)],
            energy: Joules(2000.0),
            flops: 4e12,
            hosts: vec![
                HostReport {
                    host: 0,
                    eps: 1.0,
                    avg_power: Watts(90.0),
                    energy: Joules(900.0),
                    final_limit: Watts(200.0),
                    mean_epoch: Seconds(4.0),
                },
                HostReport {
                    host: 1,
                    eps: 1.05,
                    avg_power: Watts(110.0),
                    energy: Joules(1100.0),
                    final_limit: Watts(220.0),
                    mean_epoch: Seconds(5.0),
                },
            ],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.avg_power(), Watts(200.0));
        assert!((r.flops_per_watt() - 2e9).abs() < 1.0);
        assert_eq!(r.energy_delay_product(), 20000.0);
        assert_eq!(r.max_host_avg_power(), Watts(110.0));
        assert_eq!(r.final_limits(), vec![Watts(200.0), Watts(220.0)]);
    }

    #[test]
    fn zero_guards() {
        let mut r = report();
        r.elapsed = Seconds::ZERO;
        r.energy = Joules::ZERO;
        assert_eq!(r.avg_power(), Watts::ZERO);
        assert_eq!(r.flops_per_watt(), 0.0);
    }
}
