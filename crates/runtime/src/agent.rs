//! The agent plugin interface.
//!
//! GEOPM structures its optimization algorithms as *agents* — plugins that
//! observe platform signals and adjust controls on a fixed cadence. The
//! paper leans on two of them (monitor, power balancer); the governor is the
//! static middle ground. Agents here are driven once per kernel iteration
//! by the [`crate::controller::Controller`].

use crate::platform::{IterationOutcome, JobPlatform};
use pmstack_simhw::Watts;

/// A runtime power-management plugin.
pub trait Agent {
    /// Stable plugin name (appears in reports).
    fn name(&self) -> &'static str;

    /// Called once before the first iteration; agents program their initial
    /// control state here.
    fn init(&mut self, platform: &mut JobPlatform) {
        let _ = platform;
    }

    /// Called after every iteration with its outcome; agents adjust limits
    /// for subsequent iterations here.
    fn adjust(&mut self, platform: &mut JobPlatform, outcome: &IterationOutcome) {
        let _ = (platform, outcome);
    }

    /// Called when a multi-phase application crosses a phase boundary;
    /// adaptive agents reset their search state here so they re-converge
    /// quickly on the new phase's power signature.
    fn on_phase_change(&mut self, platform: &mut JobPlatform) {
        let _ = platform;
    }

    /// The job-level power budget this agent enforces, if any.
    fn budget(&self) -> Option<Watts> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passive;
    impl Agent for Passive {
        fn name(&self) -> &'static str {
            "passive"
        }
    }

    #[test]
    fn default_methods_are_inert() {
        let agent = Passive;
        assert_eq!(agent.name(), "passive");
        assert!(agent.budget().is_none());
    }
}
