//! The PlatformIO layer: a job's runtime view of its hosts.
//!
//! A [`JobPlatform`] owns the job's nodes (leased from the resource
//! manager), binds them to the job's kernel workload, executes
//! bulk-synchronous iterations against the RAPL-enforced limits, and exposes
//! the signals and controls agents operate on.
//!
//! # The columnar hot loop
//!
//! Host state lives in a [`NodeBank`] (struct-of-arrays columns) rather than
//! a `Vec<Node>`: one bulk-synchronous iteration is a single batched
//! [`NodeBank::step_all`] over parallel slices instead of `n` virtual
//! per-node steps, and per-step MSR decode/store traffic is hoisted into
//! mirrors refreshed only on control writes. [`JobPlatform::run_iteration_into`]
//! fills caller-owned double-buffered [`IterationBuffers`], so the
//! steady-state loop allocates nothing.
//!
//! # Steady-state fast-forward
//!
//! When jitter is off and an iteration leaves every enforcement filter at a
//! bitwise fixed point with no pending fault state, the next iteration is
//! provably identical except for energy accumulation. The platform captures
//! that iteration's outcome and per-host energy deltas and *replays* them —
//! same per-step additions, so results stay bit-identical to stepping — until
//! a control write, fault event, or workload change invalidates the cache.

use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_obs::{EventKind, StaticCounter};
use pmstack_simhw::power::OperatingPoint;
use pmstack_simhw::{
    FaultPlan, Hertz, HostStep, Joules, Node, NodeBank, NodeHealth, PowerModel, Seconds,
    SimHwError, StepReport, Watts,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// Observability: iterations served by steady-state replay instead of
/// stepping — the fast-forward path actually engaging.
static FFWD_ENGAGED: StaticCounter = StaticCounter::new("runtime.ffwd.engaged");
/// Observability: steady-state captures armed (jitter off, settled, clean).
static FFWD_CAPTURED: StaticCounter = StaticCounter::new("runtime.ffwd.captured");
/// Observability: invalidations that dropped an armed cache (control write,
/// fault, or config change while steady/settled state was live).
static FFWD_INVALIDATED: StaticCounter = StaticCounter::new("runtime.ffwd.invalidated");
/// Observability: iterations that reused settled operating points (skipping
/// the PCU resolve — the cache that works under jitter).
static SETTLED_HIT: StaticCounter = StaticCounter::new("runtime.settled.hit");
/// Observability: iterations that ran the full operating-point resolve.
static SETTLED_MISS: StaticCounter = StaticCounter::new("runtime.settled.miss");

/// Jobs with at least this many hosts fan node stepping out across the
/// work-stealing pool; below it, the spawn overhead dwarfs the per-node
/// stepping cost. Overridable at process start through the
/// `PMSTACK_PAR_STEP_THRESHOLD` environment variable.
const PAR_STEP_THRESHOLD: usize = 64;

/// The effective parallel-stepping threshold: `PMSTACK_PAR_STEP_THRESHOLD`
/// when set to a valid count, else [`PAR_STEP_THRESHOLD`]. Read once.
fn par_step_threshold() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED
        .get_or_init(|| threshold_from(std::env::var("PMSTACK_PAR_STEP_THRESHOLD").ok().as_deref()))
}

fn threshold_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse().ok())
        .unwrap_or(PAR_STEP_THRESHOLD)
}

/// A cheap, self-contained view of a live fleet for *other threads*: the
/// serving plane's step loop captures one per tick and publishes it behind
/// an `Arc`, so `/metrics` scrapes and `/stream` frames read consistent
/// state without ever locking the platform or stalling the step loop.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetSnapshot {
    /// Fleet size.
    pub hosts: usize,
    /// Hosts alive at capture.
    pub alive: usize,
    /// Bank segments backing the fleet.
    pub segments: usize,
    /// Simulated seconds elapsed.
    pub elapsed_s: f64,
    /// Whether the whole fleet was on the steady-state replay path.
    pub steady: bool,
    /// Cumulative fleet energy, joules.
    pub energy_j: f64,
    /// Observed fleet power over the captured iteration, watts.
    pub power_w: f64,
    /// Simulated duration of the captured iteration, seconds.
    pub iteration_s: f64,
}

/// The observable outcome of one bulk-synchronous iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// Elapsed wall time of the iteration (the barrier releases when the
    /// slowest host finishes).
    pub elapsed: Seconds,
    /// Per-host critical-path compute time (before the barrier).
    pub host_compute_time: Vec<Seconds>,
    /// Per-host average power over the iteration. When a host's telemetry
    /// is out (`host_fresh[h] == false`) this holds the last-known reading,
    /// not the true draw — exactly what an out-of-band agent would see.
    pub host_power: Vec<Watts>,
    /// Per-host lead frequency (stale under telemetry dropout, see above).
    pub host_lead: Vec<Hertz>,
    /// Per-host enforced node power limit during the iteration.
    pub host_limit: Vec<Watts>,
    /// Per-host liveness: `false` for fail-stop dead hosts, which no longer
    /// compute, draw power, or accept control.
    pub host_alive: Vec<bool>,
    /// Per-host telemetry freshness: `false` means the power/lead entries
    /// are stale last-known values, not this iteration's readings.
    pub host_fresh: Vec<bool>,
}

impl Default for IterationOutcome {
    fn default() -> Self {
        Self {
            elapsed: Seconds::ZERO,
            host_compute_time: Vec::new(),
            host_power: Vec::new(),
            host_lead: Vec::new(),
            host_limit: Vec::new(),
            host_alive: Vec::new(),
            host_fresh: Vec::new(),
        }
    }
}

impl IterationOutcome {
    /// Total job power during the iteration (as observed — stale entries
    /// contribute their last-known value).
    pub fn total_power(&self) -> Watts {
        self.host_power.iter().copied().sum()
    }

    /// Number of hosts still alive.
    pub fn alive_count(&self) -> usize {
        self.host_alive.iter().filter(|&&a| a).count()
    }

    /// True when any host died or reported stale telemetry this iteration.
    pub fn degraded(&self) -> bool {
        self.host_alive.iter().any(|&a| !a) || self.host_fresh.iter().any(|&f| !f)
    }

    /// Copy `src` into `self`, reusing every vector's allocation.
    fn assign_from(&mut self, src: &IterationOutcome) {
        self.elapsed = src.elapsed;
        self.host_compute_time.clone_from(&src.host_compute_time);
        self.host_power.clone_from(&src.host_power);
        self.host_lead.clone_from(&src.host_lead);
        self.host_limit.clone_from(&src.host_limit);
        self.host_alive.clone_from(&src.host_alive);
        self.host_fresh.clone_from(&src.host_fresh);
    }

    fn clear(&mut self) {
        self.elapsed = Seconds::ZERO;
        self.host_compute_time.clear();
        self.host_power.clear();
        self.host_lead.clear();
        self.host_limit.clear();
        self.host_alive.clear();
        self.host_fresh.clear();
    }
}

/// Double-buffered iteration outcomes: [`JobPlatform::run_iteration_into`]
/// fills the back buffer and swaps, so the hot loop reuses two outcomes'
/// worth of vectors forever instead of allocating seven per iteration.
#[derive(Debug, Default)]
pub struct IterationBuffers {
    front: IterationOutcome,
    back: IterationOutcome,
    /// Steady-state epoch stamps: a nonzero stamp means the buffer holds
    /// exactly the captured steady outcome of that epoch, so a replay whose
    /// epoch matches skips the outcome copy entirely — after two replays
    /// the per-iteration cost is the energy adds plus one swap.
    front_stamp: u64,
    back_stamp: u64,
}

impl IterationBuffers {
    /// Empty buffers; the first iteration sizes them.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently completed iteration's outcome.
    pub fn outcome(&self) -> &IterationOutcome {
        &self.front
    }

    /// The outcome before that (the double-buffer's back side). Empty until
    /// two iterations have run.
    pub fn previous(&self) -> &IterationOutcome {
        &self.back
    }

    fn swap(&mut self) {
        std::mem::swap(&mut self.front, &mut self.back);
        std::mem::swap(&mut self.front_stamp, &mut self.back_stamp);
    }
}

/// The captured steady state the fast-forward path replays: one settled
/// iteration's outcome plus each host's per-package energy delta.
#[derive(Debug)]
struct SteadyState {
    outcome: IterationOutcome,
    /// Per-host per-package energy of one settled iteration — the exact
    /// `per_socket_power * dt` product [`NodeBank::step_all`] would add.
    deltas: Vec<Joules>,
}

/// A job's hosts bound to its workload.
pub struct JobPlatform {
    model: PowerModel,
    bank: NodeBank,
    load: KernelLoad,
    jitter_sigma: f64,
    rng: ChaCha8Rng,
    elapsed: Seconds,
    /// Faults scheduled against this job's hosts, applied at iteration
    /// boundaries (host indices are platform-local).
    fault_plan: FaultPlan,
    /// Cursor into the plan's iteration-sorted event list: everything below
    /// it has fired. Replaces a per-iteration scan of the whole plan.
    fault_cursor: usize,
    /// Index of the next bulk-synchronous iteration (for fault scheduling).
    iteration: u64,
    /// Last successfully read per-host power (held through dropouts).
    last_power: Vec<Watts>,
    /// Last successfully read per-host lead frequency.
    last_lead: Vec<Hertz>,
    /// Reusable per-iteration scratch: operating points and step results.
    ops: Vec<Option<OperatingPoint>>,
    steps: Vec<HostStep>,
    /// Per-host un-jittered iteration time at `ops[h]` (cached alongside).
    op_times: Vec<f64>,
    /// Per-segment: true while that segment's `ops`/`op_times` from the
    /// previous iteration are still exact — its enforcement filters sat at a
    /// bitwise fixed point and no control write, fault, or workload change
    /// has touched the segment since. The operating point is a pure function
    /// of bitwise-unchanged inputs, so reusing it skips the PCU resolve
    /// without changing a single bit. Segment-local so a control write on
    /// one host forces a re-resolve of only its segment; also what
    /// accelerates *jittered* runs, where full fast-forward never engages.
    seg_ops_valid: Vec<bool>,
    /// Whether the steady-state fast-forward path may engage.
    fast_forward: bool,
    /// The captured steady state, if the fleet is at a bitwise fixed point.
    steady: Option<SteadyState>,
    /// Bumped on every steady-state capture; pairs with the buffer stamps to
    /// skip redundant outcome copies across consecutive replays.
    steady_epoch: u64,
    /// Buffers backing the allocating [`Self::run_iteration`] wrapper.
    scratch: IterationBuffers,
}

impl JobPlatform {
    /// Bind `nodes` to a kernel workload. Every host of a job runs the same
    /// configuration (one benchmark instance per job, as in the paper).
    pub fn new(model: PowerModel, nodes: Vec<Node>, config: KernelConfig) -> Self {
        assert!(!nodes.is_empty(), "a job needs at least one host");
        let load = KernelLoad::new(config, model.spec());
        let n = nodes.len();
        let bank = NodeBank::from_nodes(nodes);
        let segments = bank.num_segments();
        Self {
            model,
            bank,
            load,
            jitter_sigma: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
            elapsed: Seconds::ZERO,
            fault_plan: FaultPlan::none(),
            fault_cursor: 0,
            iteration: 0,
            last_power: vec![Watts::ZERO; n],
            last_lead: vec![Hertz(0.0); n],
            ops: Vec::with_capacity(n),
            steps: Vec::with_capacity(n),
            op_times: Vec::with_capacity(n),
            seg_ops_valid: vec![false; segments],
            fast_forward: true,
            steady: None,
            steady_epoch: 0,
            scratch: IterationBuffers::new(),
        }
    }

    /// Re-shard the backing bank into segments of `hosts` hosts — the
    /// cache-invalidation granularity. Mostly a test hook: small fleets get
    /// multi-segment behavior without needing 100k hosts. Drops every cache
    /// (the next iteration re-proves settledness).
    pub fn with_segment_hosts(mut self, hosts: usize) -> Self {
        self.bank.set_segment_hosts(hosts);
        self.seg_ops_valid.clear();
        self.seg_ops_valid.resize(self.bank.num_segments(), false);
        self.steady = None;
        self
    }

    /// Hosts per bank segment.
    pub fn segment_hosts(&self) -> usize {
        self.bank.segment_hosts()
    }

    /// Number of bank segments.
    pub fn num_segments(&self) -> usize {
        self.bank.num_segments()
    }

    /// Attach a fault plan. Events fire at the start of the matching
    /// bulk-synchronous iteration; host indices outside this job are
    /// ignored.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan.restricted_to(self.bank.len());
        self.fault_cursor = 0;
        self.invalidate_caches();
        self
    }

    /// Enable per-host per-iteration multiplicative compute-time jitter
    /// (log-normal-ish, σ small). The paper's error bars come from exactly
    /// this kind of run-to-run noise over 100 iterations.
    pub fn with_jitter(mut self, sigma: f64, seed: u64) -> Self {
        self.jitter_sigma = sigma;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.invalidate_caches();
        self
    }

    /// Drop every steady-state cache: the captured replay outcome and all
    /// segments' settled operating points. Called on anything that could
    /// change the next iteration fleet-wide — workload or jitter changes,
    /// fault-plan swaps. (Suspect/healthy marks are deliberately exempt:
    /// health marks never enter the operating point or the outcome.)
    fn invalidate_caches(&mut self) {
        if self.steady.is_some() || self.seg_ops_valid.iter().any(|&v| v) {
            FFWD_INVALIDATED.inc();
        }
        self.steady = None;
        self.seg_ops_valid.iter_mut().for_each(|v| *v = false);
    }

    /// Drop the caches a single-host change actually dirties: the fleet-wide
    /// replay outcome (it bakes in every host) plus only the touched host's
    /// segment of settled operating points. The other segments keep their
    /// caches — the partial-invalidation win that keeps a 100k-host fleet on
    /// the replay path when one host takes a control write or fault.
    fn invalidate_host_caches(&mut self, host: usize) {
        let sidx = self.bank.segment_of(host);
        if self.steady.is_some() || self.seg_ops_valid[sidx] {
            FFWD_INVALIDATED.inc();
        }
        self.steady = None;
        self.seg_ops_valid[sidx] = false;
    }

    /// Enable or disable the steady-state fast-forward path (on by
    /// default). With it off, every iteration steps the full columnar loop —
    /// the reference the determinism suite compares against.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// True while a captured steady state is armed (the next jitter-free,
    /// event-free iteration will replay instead of stepping).
    pub fn steady_state_active(&self) -> bool {
        self.fast_forward && self.steady.is_some()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.bank.len()
    }

    /// The shared power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The workload bound to this job.
    pub fn load(&self) -> &KernelLoad {
        &self.load
    }

    /// The job's hosts, re-synchronized from the hot columns. Needs `&mut`
    /// for that lazy flush; prefer the columnar accessors
    /// ([`Self::host_eps`], [`Self::host_energy_into`], …) on hot paths.
    pub fn nodes(&mut self) -> &[Node] {
        self.bank.nodes()
    }

    /// Rebind the platform to a new kernel configuration — a phase change
    /// in a multi-phase application. Node state (energy counters, limits,
    /// enforcement filters) carries across the boundary, exactly as on real
    /// hardware.
    pub fn set_config(&mut self, config: KernelConfig) {
        self.load = KernelLoad::new(config, self.model.spec());
        self.invalidate_caches();
    }

    /// Release the nodes back to the caller (lease return).
    pub fn into_nodes(self) -> Vec<Node> {
        self.bank.into_nodes()
    }

    /// Total simulated time this platform has executed.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Program one host's node power limit (clamped into the settable
    /// range by the node itself).
    pub fn set_host_limit(&mut self, host: usize, limit: Watts) -> Result<(), SimHwError> {
        if host >= self.bank.len() {
            return Err(SimHwError::UnknownNode(host));
        }
        self.invalidate_host_caches(host);
        self.bank.set_power_limit(host, limit)
    }

    /// Program (or release) one host's frequency cap through the DVFS path.
    pub fn set_host_freq_cap(&mut self, host: usize, cap: Option<Hertz>) -> Result<(), SimHwError> {
        if host >= self.bank.len() {
            return Err(SimHwError::UnknownNode(host));
        }
        self.invalidate_host_caches(host);
        self.bank.set_freq_cap(host, cap)
    }

    /// Apply a control operation to every host, skipping fail-stop dead
    /// ones (nothing left to program); other errors propagate. The shared
    /// error discipline of every uniform control sweep.
    fn for_each_live_host(
        &mut self,
        mut op: impl FnMut(&mut NodeBank, usize) -> Result<(), SimHwError>,
    ) -> Result<(), SimHwError> {
        self.invalidate_caches();
        for host in 0..self.bank.len() {
            match op(&mut self.bank, host) {
                Ok(()) | Err(SimHwError::NodeFailed(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Program every host to the same node power limit. Fail-stop dead
    /// hosts are skipped (nothing left to program); other errors propagate.
    pub fn set_uniform_limit(&mut self, limit: Watts) -> Result<(), SimHwError> {
        self.for_each_live_host(|bank, host| bank.set_power_limit(host, limit))
    }

    /// Program (or release) a frequency cap on every host — the DVFS
    /// control path through `IA32_PERF_CTL`. Fail-stop dead hosts are
    /// skipped, like [`Self::set_uniform_limit`].
    pub fn set_uniform_freq_cap(&mut self, cap: Option<Hertz>) -> Result<(), SimHwError> {
        self.for_each_live_host(|bank, host| bank.set_freq_cap(host, cap))
    }

    /// Per-host health as observed through the platform.
    pub fn host_health(&self) -> Vec<NodeHealth> {
        let mut out = Vec::new();
        self.host_health_into(&mut out);
        out
    }

    /// Fill `out` with per-host health without allocating (beyond first use).
    pub fn host_health_into(&self, out: &mut Vec<NodeHealth>) {
        out.clear();
        out.extend((0..self.bank.len()).map(|h| self.bank.health(h)));
    }

    /// The host's efficiency factor ε.
    pub fn host_eps(&self, host: usize) -> f64 {
        self.bank.eps(host)
    }

    /// True when the host exists and is not fail-stop dead.
    pub fn is_host_alive(&self, host: usize) -> bool {
        host < self.bank.len() && self.bank.is_alive(host)
    }

    /// Number of hosts still alive.
    pub fn alive_hosts(&self) -> usize {
        (0..self.bank.len())
            .filter(|&h| self.bank.is_alive(h))
            .count()
    }

    /// Mark a host suspect (stale telemetry, transient faults) without
    /// killing it; controllers call this when readings go missing.
    pub fn mark_host_suspect(&mut self, host: usize) {
        if host < self.bank.len() {
            self.bank.mark_suspect(host);
        }
    }

    /// Clear a host's suspect marking after telemetry recovers.
    pub fn mark_host_healthy(&mut self, host: usize) {
        if host < self.bank.len() {
            self.bank.mark_healthy(host);
        }
    }

    /// Inject a fault into one host immediately (outside any plan).
    pub fn inject_fault(&mut self, host: usize, kind: pmstack_simhw::FaultKind) {
        if host < self.bank.len() {
            self.invalidate_host_caches(host);
            self.bank.inject(host, kind);
        }
    }

    /// One host's observed health (allocation-free single-host probe).
    pub fn host_health_of(&self, host: usize) -> NodeHealth {
        self.bank.health(host)
    }

    /// The currently programmed per-host limits.
    pub fn host_limits(&self) -> Vec<Watts> {
        let mut out = Vec::new();
        self.host_limits_into(&mut out);
        out
    }

    /// Fill `out` with per-host programmed limits without allocating.
    pub fn host_limits_into(&self, out: &mut Vec<Watts>) {
        out.clear();
        out.extend((0..self.bank.len()).map(|h| self.bank.power_limit(h)));
    }

    /// Cumulative per-host energy.
    pub fn host_energy(&self) -> Vec<Joules> {
        let mut out = Vec::new();
        self.host_energy_into(&mut out);
        out
    }

    /// Fill `out` with cumulative per-host energy without allocating.
    pub fn host_energy_into(&self, out: &mut Vec<Joules>) {
        out.clear();
        out.extend((0..self.bank.len()).map(|h| self.bank.energy(h)));
    }

    /// Total cumulative fleet energy, summed without allocating — the
    /// per-tick call the serving plane makes at 100k+ hosts.
    pub fn total_energy(&self) -> Joules {
        (0..self.bank.len()).map(|h| self.bank.energy(h)).sum()
    }

    /// Capture a [`FleetSnapshot`] of this platform paired with the most
    /// recent iteration `outcome` it produced.
    pub fn fleet_snapshot(&self, outcome: &IterationOutcome) -> FleetSnapshot {
        // Before the first iteration the outcome is empty; fall back to the
        // platform's own liveness scan.
        let alive = if outcome.host_alive.len() == self.bank.len() {
            outcome.host_alive.iter().filter(|&&a| a).count()
        } else {
            self.alive_hosts()
        };
        FleetSnapshot {
            hosts: self.bank.len(),
            alive,
            segments: self.num_segments(),
            elapsed_s: self.elapsed().value(),
            steady: self.steady_state_active(),
            energy_j: self.total_energy().value(),
            power_w: outcome.total_power().value(),
            iteration_s: outcome.elapsed.value(),
        }
    }

    /// The operating point a host would settle on under its *enforced*
    /// limit (and any software frequency cap) right now. Out-of-range hosts
    /// are an error, consistent with [`Self::set_host_limit`].
    pub fn host_operating_point(&self, host: usize) -> Result<OperatingPoint, SimHwError> {
        if host >= self.bank.len() {
            return Err(SimHwError::UnknownNode(host));
        }
        Ok(self.bank.operating_point(host, &self.model, &self.load))
    }

    /// Execute one bulk-synchronous iteration (allocating wrapper around
    /// [`Self::run_iteration_into`], for callers that want an owned
    /// outcome).
    pub fn run_iteration(&mut self) -> IterationOutcome {
        let mut bufs = std::mem::take(&mut self.scratch);
        self.run_iteration_into(&mut bufs);
        let out = bufs.outcome().clone();
        self.scratch = bufs;
        out
    }

    /// Execute one bulk-synchronous iteration into caller-owned buffers:
    /// each host computes at the operating point its enforced limit allows;
    /// the barrier releases when the slowest host finishes; every node
    /// accumulates energy for the full elapsed time (waiting hosts poll at
    /// their operating-point power, which is the energy sink the paper's
    /// kernel deliberately models). The result lands in `bufs.outcome()`;
    /// after the first two iterations the loop is allocation-free.
    pub fn run_iteration_into(&mut self, bufs: &mut IterationBuffers) {
        // Fire the fault plan's events scheduled for this iteration before
        // anything computes — a node dying "during" an iteration is modeled
        // as dying at its leading barrier.
        loop {
            let events = self.fault_plan.events();
            if self.fault_cursor >= events.len()
                || events[self.fault_cursor].at_iteration > self.iteration
            {
                break;
            }
            let ev = events[self.fault_cursor];
            self.fault_cursor += 1;
            if ev.at_iteration == self.iteration && ev.host < self.bank.len() {
                // An applied event dirties only its host's segment.
                self.bank.inject(ev.host, ev.kind);
                self.invalidate_host_caches(ev.host);
            } else {
                // A skipped (stale / out-of-range) event invalidates
                // conservatively, matching the historical behavior.
                self.invalidate_caches();
            }
        }
        self.iteration += 1;

        // Fast path: the fleet is at a bitwise fixed point and nothing can
        // perturb this iteration — replay the captured outcome and energy.
        // A buffer already stamped with this steady epoch holds exactly the
        // captured outcome, so even the copy is skipped.
        if self.fast_forward {
            if let Some(steady) = &self.steady {
                FFWD_ENGAGED.inc();
                self.bank.replay_energy(&steady.deltas);
                if bufs.back_stamp != self.steady_epoch {
                    bufs.back.assign_from(&steady.outcome);
                    bufs.back_stamp = self.steady_epoch;
                }
                bufs.swap();
                self.elapsed += bufs.front.elapsed;
                return;
            }
        }

        let n = self.bank.len();
        let segs = self.bank.num_segments();
        debug_assert_eq!(self.seg_ops_valid.len(), segs);
        bufs.back_stamp = 0;
        let back = &mut bufs.back;
        back.clear();
        if self.ops.len() != n {
            self.ops.clear();
            self.ops.resize(n, None);
            self.op_times.clear();
            self.op_times.resize(n, 0.0);
            self.seg_ops_valid.iter_mut().for_each(|v| *v = false);
        }
        if self.seg_ops_valid.iter().all(|&v| v) {
            SETTLED_HIT.inc();
        } else {
            SETTLED_MISS.inc();
        }
        // Resolve (or reuse) operating points segment by segment, hosts in
        // order — the jitter draw per live host happens in the same order
        // on both paths, so the RNG stream is identical regardless of which
        // segments hit their cache.
        for sidx in 0..segs {
            let range = self.bank.segment_range(sidx);
            if self.seg_ops_valid[sidx] {
                // This segment's enforcement filters sat at a bitwise fixed
                // point last iteration and nothing touched the segment
                // since: every input of the (pure) PCU resolve is bitwise
                // unchanged, so the cached operating points and base
                // iteration times are exact.
                for host in range {
                    if self.ops[host].is_none() {
                        back.host_compute_time.push(Seconds::ZERO);
                        continue;
                    }
                    let jitter = self.draw_jitter();
                    back.host_compute_time
                        .push(Seconds(self.op_times[host] * jitter));
                }
            } else {
                for host in range {
                    if !self.bank.is_alive(host) {
                        // Dead hosts drop out of the computation: the
                        // surviving ranks redistribute (we charge no extra
                        // time) and the dead host contributes nothing to
                        // the barrier.
                        self.ops[host] = None;
                        self.op_times[host] = 0.0;
                        back.host_compute_time.push(Seconds::ZERO);
                        continue;
                    }
                    let op = self.bank.operating_point(host, &self.model, &self.load);
                    let base = self.load.iteration_time(&op).value();
                    let jitter = self.draw_jitter();
                    self.ops[host] = Some(op);
                    self.op_times[host] = base;
                    back.host_compute_time.push(Seconds(base * jitter));
                }
            }
        }
        let elapsed = back
            .host_compute_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);

        // Limits are observed at the iteration's start, before stepping
        // advances the enforcement filters.
        back.host_limit
            .extend((0..n).map(|h| self.bank.enforced_limit(h)));

        // Advance RAPL state (energy counters + enforcement filters) on
        // every live host through the iteration at its operating-point
        // power in one batched columnar pass; large jobs fan the column
        // chunks out across the pool. With fast-forward enabled the partial
        // path lets segments whose caches prove settledness replay instead
        // of re-running the filter arithmetic.
        self.steps.clear();
        self.steps.resize(n, HostStep::Skipped);
        let parallel = n >= par_step_threshold();
        let report = if self.fast_forward {
            self.bank
                .step_all_partial(elapsed, &self.ops, &mut self.steps, parallel)
        } else {
            let all_settled = self
                .bank
                .step_all(elapsed, &self.ops, &mut self.steps, parallel);
            StepReport {
                all_settled,
                segments_replayed: 0,
                segments_stepped: segs,
            }
        };
        let settled = report.all_settled;

        let mut all_fresh = true;
        for host in 0..n {
            match (&self.ops[host], self.steps[host]) {
                (None, _) => {
                    back.host_power.push(Watts::ZERO);
                    back.host_lead.push(Hertz(0.0));
                    back.host_alive.push(false);
                    back.host_fresh.push(false);
                }
                (Some(op), HostStep::Fresh) => {
                    self.last_power[host] = op.power;
                    self.last_lead[host] = op.lead;
                    back.host_power.push(op.power);
                    back.host_lead.push(op.lead);
                    back.host_alive.push(true);
                    back.host_fresh.push(true);
                }
                (Some(_), HostStep::Stale) => {
                    // Telemetry out: the hardware advanced underneath, but
                    // the observer only has last-known readings.
                    all_fresh = false;
                    back.host_power.push(self.last_power[host]);
                    back.host_lead.push(self.last_lead[host]);
                    back.host_alive.push(true);
                    back.host_fresh.push(false);
                }
                (Some(_), HostStep::Skipped) => unreachable!("live host was not stepped"),
            }
        }
        back.elapsed = elapsed;
        self.elapsed += elapsed;
        bufs.swap();

        // A segment whose filters are settled yields bit-identical operating
        // points next iteration — arm its op cache (jitter-compatible). The
        // full replay below additionally needs jitter off fleet-wide.
        for (sidx, valid) in self.seg_ops_valid.iter_mut().enumerate() {
            *valid = self.fast_forward && self.bank.segment_settled(sidx);
        }

        // Capture steady state: with jitter off, every filter at a bitwise
        // fixed point, no pending one-shot fault state, and clean telemetry,
        // the next event-free iteration is provably identical except for
        // energy — which replays as the same per-step product.
        if self.fast_forward
            && self.jitter_sigma == 0.0
            && settled
            && all_fresh
            && self.bank.quiescent()
        {
            if self.steady.is_none() {
                let sockets = self.bank.sockets().max(1) as f64;
                let deltas = self
                    .ops
                    .iter()
                    .map(|op| match op {
                        Some(op) => op.power / sockets * elapsed,
                        None => Joules::ZERO,
                    })
                    .collect();
                self.steady = Some(SteadyState {
                    outcome: bufs.front.clone(),
                    deltas,
                });
                self.steady_epoch += 1;
                // The front buffer holds exactly the captured outcome, so
                // stamp it: when it cycles back as the back buffer, the
                // replay path skips the copy.
                bufs.front_stamp = self.steady_epoch;
                FFWD_CAPTURED.inc();
                pmstack_obs::event(
                    self.elapsed.value(),
                    EventKind::FfwdCaptured {
                        hosts: self.bank.len() as u64,
                    },
                );
            }
        } else {
            self.steady = None;
        }
    }

    fn draw_jitter(&mut self) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        // Two-uniform approximation of a centered Gaussian is plenty for
        // multiplicative noise of a fraction of a percent.
        let u: f64 = self.rng.gen::<f64>() + self.rng.gen::<f64>() - 1.0;
        (1.0 + u * self.jitter_sigma * 1.7).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, NodeId};

    fn platform(n_hosts: usize, eps: &[f64]) -> JobPlatform {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..n_hosts)
            .map(|i| Node::new(NodeId(i), &model, eps.get(i).copied().unwrap_or(1.0)).unwrap())
            .collect();
        JobPlatform::new(
            model,
            nodes,
            KernelConfig::new(
                8.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ),
        )
    }

    #[test]
    fn iteration_elapsed_is_max_of_hosts() {
        let mut p = platform(3, &[1.0, 1.0, 1.07]);
        // Tight limit: the inefficient host is slower.
        p.set_uniform_limit(Watts(150.0)).unwrap();
        // Let enforcement settle.
        for _ in 0..30 {
            p.run_iteration();
        }
        let out = p.run_iteration();
        let max_t = out
            .host_compute_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);
        assert_eq!(out.elapsed, max_t);
        assert!(out.host_compute_time[2] >= out.host_compute_time[0]);
    }

    #[test]
    fn energy_accumulates_over_iterations() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.run_iteration();
        let e1 = p.host_energy();
        p.run_iteration();
        let e2 = p.host_energy();
        assert!(e2[0] > e1[0] && e2[1] > e1[1]);
    }

    #[test]
    fn fleet_snapshot_reflects_live_state() {
        let mut p = platform(3, &[1.0, 1.0, 1.07]);
        // Pre-iteration: the default outcome is empty, so liveness comes
        // from the platform's own scan.
        let snap = p.fleet_snapshot(&IterationOutcome::default());
        assert_eq!(snap.hosts, 3);
        assert_eq!(snap.alive, 3);
        assert_eq!(snap.energy_j, 0.0);
        let out = p.run_iteration();
        let snap = p.fleet_snapshot(&out);
        assert_eq!(snap.hosts, 3);
        assert_eq!(snap.alive, 3);
        assert_eq!(snap.segments, p.num_segments());
        assert!(snap.energy_j > 0.0);
        assert!(snap.power_w > 0.0);
        assert!(snap.iteration_s > 0.0);
        assert!((snap.elapsed_s - p.elapsed().value()).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_reproducible_and_small() {
        let mk = |seed| {
            let mut p = platform(1, &[1.0]).with_jitter(0.01, seed);
            (0..5)
                .map(|_| p.run_iteration().elapsed.value())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
        let ts = mk(3);
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        assert!(ts.iter().all(|t| (t - mean).abs() / mean < 0.1));
    }

    #[test]
    fn limits_are_programmable_per_host() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.set_host_limit(0, Watts(150.0)).unwrap();
        p.set_host_limit(1, Watts(200.0)).unwrap();
        let limits = p.host_limits();
        assert!((limits[0].value() - 150.0).abs() < 0.5);
        assert!((limits[1].value() - 200.0).abs() < 0.5);
        assert!(p.set_host_limit(5, Watts(150.0)).is_err());
    }

    #[test]
    fn out_of_range_limits_are_clamped_by_node() {
        let mut p = platform(1, &[1.0]);
        // 50 W/node is below the 136 W floor; node clamps per socket.
        p.set_host_limit(0, Watts(50.0)).unwrap();
        assert!((p.host_limits()[0].value() - 136.0).abs() < 0.5);
    }

    #[test]
    fn total_power_sums_hosts() {
        let mut p = platform(3, &[1.0, 1.0, 1.0]);
        let out = p.run_iteration();
        let sum: f64 = out.host_power.iter().map(|w| w.value()).sum();
        assert!((out.total_power().value() - sum).abs() < 1e-9);
    }

    #[test]
    fn planned_node_death_fires_at_its_iteration() {
        let plan = pmstack_simhw::FaultPlan::scripted(vec![pmstack_simhw::faults::kill(1, 3)]);
        let mut p = platform(2, &[1.0, 1.0]).with_fault_plan(plan);
        let before = p.run_iteration(); // iterations 0, 1, 2
        assert!(before.host_alive.iter().all(|&a| a));
        p.run_iteration();
        p.run_iteration();
        let after = p.run_iteration(); // iteration 3: host 1 dies at barrier
        assert!(after.host_alive[0]);
        assert!(!after.host_alive[1]);
        assert_eq!(after.alive_count(), 1);
        assert!(after.degraded());
        assert_eq!(after.host_power[1], Watts::ZERO);
        // The survivors keep the job going: elapsed still positive, and the
        // dead host no longer accumulates energy.
        let e1 = p.host_energy();
        p.run_iteration();
        let e2 = p.host_energy();
        assert!(e2[0] > e1[0]);
        assert_eq!(e2[1], e1[1]);
    }

    #[test]
    fn telemetry_dropout_serves_stale_readings_then_recovers() {
        let plan =
            pmstack_simhw::FaultPlan::scripted(vec![pmstack_simhw::faults::telemetry_dropout(
                0, 1, 3,
            )]);
        let mut p = platform(1, &[1.0]).with_fault_plan(plan);
        let fresh = p.run_iteration();
        assert!(fresh.host_fresh[0]);
        let known = fresh.host_power[0];
        let e_before = p.host_energy();
        for _ in 0..3 {
            let out = p.run_iteration();
            assert!(out.host_alive[0], "dropout must not kill the host");
            assert!(!out.host_fresh[0]);
            assert_eq!(out.host_power[0], known, "stale reading is last-known");
        }
        // The hardware kept running underneath the blackout.
        assert!(p.host_energy()[0] > e_before[0]);
        let recovered = p.run_iteration();
        assert!(recovered.host_fresh[0]);
    }

    #[test]
    fn stuck_rapl_pins_the_programmed_limit() {
        let mut p = platform(1, &[1.0]);
        p.inject_fault(0, pmstack_simhw::FaultKind::StuckRapl { pinned_w: 200.0 });
        // Writes "succeed" but the latch wins.
        p.set_host_limit(0, Watts(150.0)).unwrap();
        assert!((p.host_limits()[0].value() - 200.0).abs() < 0.5);
    }

    #[test]
    fn uniform_limit_skips_dead_hosts() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.inject_fault(1, pmstack_simhw::FaultKind::NodeDeath);
        p.set_uniform_limit(Watts(180.0)).unwrap();
        assert!((p.host_limits()[0].value() - 180.0).abs() < 0.5);
        assert!(!p.is_host_alive(1));
        assert_eq!(p.alive_hosts(), 1);
        assert_eq!(p.host_health()[1], NodeHealth::Dead);
    }

    #[test]
    fn host_operating_point_rejects_unknown_hosts() {
        let p = platform(2, &[1.0, 1.0]);
        assert!(p.host_operating_point(1).is_ok());
        assert!(matches!(
            p.host_operating_point(2),
            Err(SimHwError::UnknownNode(2))
        ));
    }

    #[test]
    fn par_threshold_env_parsing() {
        assert_eq!(threshold_from(None), PAR_STEP_THRESHOLD);
        assert_eq!(threshold_from(Some("16")), 16);
        assert_eq!(threshold_from(Some(" 900 ")), 900);
        assert_eq!(threshold_from(Some("bogus")), PAR_STEP_THRESHOLD);
    }

    /// The heart of the tentpole's correctness claim at the platform level:
    /// with fast-forward on and off, every observable of every iteration is
    /// bit-identical — including across a mid-run limit write that breaks
    /// and later re-establishes the steady state.
    #[test]
    fn fast_forward_is_bit_identical_to_stepping() {
        let mk = || {
            let mut p = platform(4, &[0.95, 1.0, 1.03, 1.07]);
            p.set_uniform_limit(Watts(180.0)).unwrap();
            p
        };
        let mut fast = mk();
        let mut slow = mk();
        slow.set_fast_forward(false);
        let mut fb = IterationBuffers::new();
        let mut sb = IterationBuffers::new();
        let mut engaged = false;
        for iter in 0..220 {
            if iter == 120 {
                fast.set_host_limit(2, Watts(160.0)).unwrap();
                slow.set_host_limit(2, Watts(160.0)).unwrap();
            }
            fast.run_iteration_into(&mut fb);
            slow.run_iteration_into(&mut sb);
            engaged |= fast.steady_state_active();
            let (f, s) = (fb.outcome(), sb.outcome());
            assert_eq!(f.elapsed.value().to_bits(), s.elapsed.value().to_bits());
            for h in 0..4 {
                assert_eq!(
                    f.host_power[h].value().to_bits(),
                    s.host_power[h].value().to_bits(),
                    "power diverged at iteration {iter} host {h}"
                );
                assert_eq!(
                    f.host_limit[h].value().to_bits(),
                    s.host_limit[h].value().to_bits()
                );
                assert_eq!(f.host_alive[h], s.host_alive[h]);
                assert_eq!(f.host_fresh[h], s.host_fresh[h]);
            }
        }
        assert!(engaged, "fast-forward should engage after settling");
        assert!(
            !slow.steady_state_active(),
            "disabled platform never arms steady state"
        );
        let (fe, se) = (fast.host_energy(), slow.host_energy());
        for h in 0..4 {
            assert_eq!(
                fe[h].value().to_bits(),
                se[h].value().to_bits(),
                "energy diverged on host {h}"
            );
        }
    }

    /// Fault events and jitter must each keep the fast path disarmed.
    #[test]
    fn fast_forward_disarms_on_faults_and_jitter() {
        let plan = pmstack_simhw::FaultPlan::scripted(vec![pmstack_simhw::faults::kill(0, 200)]);
        let mut p = platform(2, &[1.0, 1.0]).with_fault_plan(plan);
        p.set_uniform_limit(Watts(180.0)).unwrap();
        let mut bufs = IterationBuffers::new();
        for _ in 0..200 {
            p.run_iteration_into(&mut bufs);
        }
        assert!(p.steady_state_active());
        p.run_iteration_into(&mut bufs); // iteration 200: the death fires
        assert!(!bufs.outcome().host_alive[0]);

        let mut j = platform(2, &[1.0, 1.0]).with_jitter(0.01, 9);
        for _ in 0..80 {
            j.run_iteration_into(&mut bufs);
        }
        assert!(
            !j.steady_state_active(),
            "jitter must never arm steady state"
        );
    }

    /// The double buffer keeps the previous outcome readable and reuses
    /// allocations across iterations.
    #[test]
    fn iteration_buffers_double_buffer() {
        let mut p = platform(2, &[1.0, 1.0]);
        let mut bufs = IterationBuffers::new();
        p.run_iteration_into(&mut bufs);
        let first = bufs.outcome().clone();
        p.run_iteration_into(&mut bufs);
        assert_eq!(bufs.previous(), &first);
        assert_eq!(bufs.outcome().host_power.len(), 2);
    }
}
