//! The PlatformIO layer: a job's runtime view of its hosts.
//!
//! A [`JobPlatform`] owns the job's nodes (leased from the resource
//! manager), binds them to the job's kernel workload, executes
//! bulk-synchronous iterations against the RAPL-enforced limits, and exposes
//! the signals and controls agents operate on.

use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_simhw::power::OperatingPoint;
use pmstack_simhw::{
    FaultPlan, Hertz, Joules, Node, NodeHealth, NodePowerSample, PowerModel, Seconds, SimHwError,
    Watts,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Jobs with at least this many hosts fan node stepping out across the
/// work-stealing pool; below it, the spawn overhead dwarfs the per-node
/// stepping cost.
const PAR_STEP_THRESHOLD: usize = 64;

/// The observable outcome of one bulk-synchronous iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// Elapsed wall time of the iteration (the barrier releases when the
    /// slowest host finishes).
    pub elapsed: Seconds,
    /// Per-host critical-path compute time (before the barrier).
    pub host_compute_time: Vec<Seconds>,
    /// Per-host average power over the iteration. When a host's telemetry
    /// is out (`host_fresh[h] == false`) this holds the last-known reading,
    /// not the true draw — exactly what an out-of-band agent would see.
    pub host_power: Vec<Watts>,
    /// Per-host lead frequency (stale under telemetry dropout, see above).
    pub host_lead: Vec<Hertz>,
    /// Per-host enforced node power limit during the iteration.
    pub host_limit: Vec<Watts>,
    /// Per-host liveness: `false` for fail-stop dead hosts, which no longer
    /// compute, draw power, or accept control.
    pub host_alive: Vec<bool>,
    /// Per-host telemetry freshness: `false` means the power/lead entries
    /// are stale last-known values, not this iteration's readings.
    pub host_fresh: Vec<bool>,
}

impl IterationOutcome {
    /// Total job power during the iteration (as observed — stale entries
    /// contribute their last-known value).
    pub fn total_power(&self) -> Watts {
        self.host_power.iter().copied().sum()
    }

    /// Number of hosts still alive.
    pub fn alive_count(&self) -> usize {
        self.host_alive.iter().filter(|&&a| a).count()
    }

    /// True when any host died or reported stale telemetry this iteration.
    pub fn degraded(&self) -> bool {
        self.host_alive.iter().any(|&a| !a) || self.host_fresh.iter().any(|&f| !f)
    }
}

/// A job's hosts bound to its workload.
pub struct JobPlatform {
    model: PowerModel,
    nodes: Vec<Node>,
    load: KernelLoad,
    jitter_sigma: f64,
    rng: ChaCha8Rng,
    elapsed: Seconds,
    /// Faults scheduled against this job's hosts, applied at iteration
    /// boundaries (host indices are platform-local).
    fault_plan: FaultPlan,
    /// Index of the next bulk-synchronous iteration (for fault scheduling).
    iteration: u64,
    /// Last successfully read per-host power (held through dropouts).
    last_power: Vec<Watts>,
    /// Last successfully read per-host lead frequency.
    last_lead: Vec<Hertz>,
}

impl JobPlatform {
    /// Bind `nodes` to a kernel workload. Every host of a job runs the same
    /// configuration (one benchmark instance per job, as in the paper).
    pub fn new(model: PowerModel, nodes: Vec<Node>, config: KernelConfig) -> Self {
        assert!(!nodes.is_empty(), "a job needs at least one host");
        let load = KernelLoad::new(config, model.spec());
        let n = nodes.len();
        Self {
            model,
            nodes,
            load,
            jitter_sigma: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
            elapsed: Seconds::ZERO,
            fault_plan: FaultPlan::none(),
            iteration: 0,
            last_power: vec![Watts::ZERO; n],
            last_lead: vec![Hertz(0.0); n],
        }
    }

    /// Attach a fault plan. Events fire at the start of the matching
    /// bulk-synchronous iteration; host indices outside this job are
    /// ignored.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan.restricted_to(self.nodes.len());
        self
    }

    /// Enable per-host per-iteration multiplicative compute-time jitter
    /// (log-normal-ish, σ small). The paper's error bars come from exactly
    /// this kind of run-to-run noise over 100 iterations.
    pub fn with_jitter(mut self, sigma: f64, seed: u64) -> Self {
        self.jitter_sigma = sigma;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.nodes.len()
    }

    /// The shared power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The workload bound to this job.
    pub fn load(&self) -> &KernelLoad {
        &self.load
    }

    /// The job's hosts.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rebind the platform to a new kernel configuration — a phase change
    /// in a multi-phase application. Node state (energy counters, limits,
    /// enforcement filters) carries across the boundary, exactly as on real
    /// hardware.
    pub fn set_config(&mut self, config: KernelConfig) {
        self.load = KernelLoad::new(config, self.model.spec());
    }

    /// Release the nodes back to the caller (lease return).
    pub fn into_nodes(self) -> Vec<Node> {
        self.nodes
    }

    /// Total simulated time this platform has executed.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Program one host's node power limit (clamped into the settable
    /// range by the node itself).
    pub fn set_host_limit(&mut self, host: usize, limit: Watts) -> Result<(), SimHwError> {
        self.nodes
            .get_mut(host)
            .ok_or(SimHwError::UnknownNode(host))?
            .set_power_limit(limit)
    }

    /// Program every host to the same node power limit. Fail-stop dead
    /// hosts are skipped (nothing left to program); other errors propagate.
    pub fn set_uniform_limit(&mut self, limit: Watts) -> Result<(), SimHwError> {
        for host in 0..self.num_hosts() {
            match self.set_host_limit(host, limit) {
                Ok(()) | Err(SimHwError::NodeFailed(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Per-host health as observed through the platform.
    pub fn host_health(&self) -> Vec<NodeHealth> {
        self.nodes.iter().map(|n| n.health()).collect()
    }

    /// True when the host exists and is not fail-stop dead.
    pub fn is_host_alive(&self, host: usize) -> bool {
        self.nodes.get(host).is_some_and(|n| !n.is_dead())
    }

    /// Number of hosts still alive.
    pub fn alive_hosts(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_dead()).count()
    }

    /// Mark a host suspect (stale telemetry, transient faults) without
    /// killing it; controllers call this when readings go missing.
    pub fn mark_host_suspect(&mut self, host: usize) {
        if let Some(n) = self.nodes.get_mut(host) {
            n.mark_suspect();
        }
    }

    /// Clear a host's suspect marking after telemetry recovers.
    pub fn mark_host_healthy(&mut self, host: usize) {
        if let Some(n) = self.nodes.get_mut(host) {
            n.mark_healthy();
        }
    }

    /// Inject a fault into one host immediately (outside any plan).
    pub fn inject_fault(&mut self, host: usize, kind: pmstack_simhw::FaultKind) {
        if let Some(n) = self.nodes.get_mut(host) {
            n.inject(kind);
        }
    }

    /// Program (or release) a frequency cap on every host — the DVFS
    /// control path through `IA32_PERF_CTL`. Fail-stop dead hosts are
    /// skipped, like [`Self::set_uniform_limit`].
    pub fn set_uniform_freq_cap(
        &mut self,
        cap: Option<pmstack_simhw::Hertz>,
    ) -> Result<(), SimHwError> {
        for node in &mut self.nodes {
            match node.set_freq_cap(cap) {
                Ok(()) | Err(SimHwError::NodeFailed(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The currently programmed per-host limits.
    pub fn host_limits(&self) -> Vec<Watts> {
        self.nodes.iter().map(|n| n.power_limit()).collect()
    }

    /// Cumulative per-host energy.
    pub fn host_energy(&self) -> Vec<Joules> {
        self.nodes.iter().map(|n| n.energy()).collect()
    }

    /// The operating point a host would settle on under its *enforced*
    /// limit (and any software frequency cap) right now.
    pub fn host_operating_point(&self, host: usize) -> OperatingPoint {
        self.nodes[host].operating_point(&self.model, &self.load)
    }

    /// Execute one bulk-synchronous iteration: each host computes at the
    /// operating point its enforced limit allows; the barrier releases when
    /// the slowest host finishes; every node accumulates energy for the full
    /// elapsed time (waiting hosts poll at their operating-point power,
    /// which is the energy sink the paper's kernel deliberately models).
    pub fn run_iteration(&mut self) -> IterationOutcome {
        // Fire the fault plan's events scheduled for this iteration before
        // anything computes — a node dying "during" an iteration is modeled
        // as dying at its leading barrier.
        let events: Vec<_> = self.fault_plan.events_at(self.iteration).copied().collect();
        for ev in events {
            if let Some(node) = self.nodes.get_mut(ev.host) {
                node.inject(ev.kind);
            }
        }
        self.iteration += 1;

        let n = self.num_hosts();
        let mut ops = Vec::with_capacity(n);
        let mut compute = Vec::with_capacity(n);
        for host in 0..n {
            if self.nodes[host].is_dead() {
                // Dead hosts drop out of the computation: the surviving
                // ranks redistribute (we charge no extra time) and the dead
                // host contributes nothing to the barrier.
                ops.push(None);
                compute.push(Seconds::ZERO);
                continue;
            }
            let op = self.host_operating_point(host);
            let jitter = self.draw_jitter();
            let t = Seconds(self.load.iteration_time(&op).value() * jitter);
            ops.push(Some(op));
            compute.push(t);
        }
        let elapsed = compute.iter().copied().fold(Seconds::ZERO, Seconds::max);

        // Advance RAPL state (energy counters + enforcement filters) on
        // every live host through the iteration at its operating-point
        // power; the fallible read surfaces telemetry dropouts. Each node's
        // step touches only its own state, so large jobs fan the stepping
        // out across the pool (the per-node cost is small, so tiny jobs
        // stay on one thread).
        let model = &self.model;
        let load = &self.load;
        // Limits are observed at the iteration's start, before stepping
        // advances the enforcement filters.
        let host_limit: Vec<Watts> = self.nodes.iter().map(|n| n.enforced_limit()).collect();
        let mut steps: Vec<(&mut Node, Option<Result<NodePowerSample, SimHwError>>)> =
            self.nodes.iter_mut().map(|node| (node, None)).collect();
        let step_one = |host: usize, entry: &mut (&mut Node, Option<_>)| {
            if ops[host].is_some() {
                entry.1 = Some(entry.0.try_step(model, load, elapsed));
            }
        };
        if n >= PAR_STEP_THRESHOLD {
            pmstack_exec::par_for_each_mut(&mut steps, step_one);
        } else {
            for (host, entry) in steps.iter_mut().enumerate() {
                step_one(host, entry);
            }
        }

        let mut host_power = Vec::with_capacity(n);
        let mut host_lead = Vec::with_capacity(n);
        let mut host_alive = Vec::with_capacity(n);
        let mut host_fresh = Vec::with_capacity(n);
        for (host, ((_node, step), op)) in steps.iter().zip(&ops).enumerate() {
            let Some(op) = op else {
                host_power.push(Watts::ZERO);
                host_lead.push(Hertz(0.0));
                host_alive.push(false);
                host_fresh.push(false);
                continue;
            };
            host_alive.push(true);
            match step.as_ref().expect("live host stepped") {
                Ok(sample) => {
                    self.last_power[host] = sample.power;
                    self.last_lead[host] = op.lead;
                    host_power.push(sample.power);
                    host_lead.push(op.lead);
                    host_fresh.push(true);
                }
                Err(_) => {
                    // Telemetry out: the hardware advanced underneath, but
                    // the observer only has last-known readings.
                    host_power.push(self.last_power[host]);
                    host_lead.push(self.last_lead[host]);
                    host_fresh.push(false);
                }
            }
        }
        drop(steps);
        self.elapsed += elapsed;
        IterationOutcome {
            elapsed,
            host_compute_time: compute,
            host_power,
            host_lead,
            host_limit,
            host_alive,
            host_fresh,
        }
    }

    fn draw_jitter(&mut self) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        // Two-uniform approximation of a centered Gaussian is plenty for
        // multiplicative noise of a fraction of a percent.
        let u: f64 = self.rng.gen::<f64>() + self.rng.gen::<f64>() - 1.0;
        (1.0 + u * self.jitter_sigma * 1.7).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, NodeId};

    fn platform(n_hosts: usize, eps: &[f64]) -> JobPlatform {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..n_hosts)
            .map(|i| Node::new(NodeId(i), &model, eps.get(i).copied().unwrap_or(1.0)).unwrap())
            .collect();
        JobPlatform::new(
            model,
            nodes,
            KernelConfig::new(
                8.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ),
        )
    }

    #[test]
    fn iteration_elapsed_is_max_of_hosts() {
        let mut p = platform(3, &[1.0, 1.0, 1.07]);
        // Tight limit: the inefficient host is slower.
        p.set_uniform_limit(Watts(150.0)).unwrap();
        // Let enforcement settle.
        for _ in 0..30 {
            p.run_iteration();
        }
        let out = p.run_iteration();
        let max_t = out
            .host_compute_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);
        assert_eq!(out.elapsed, max_t);
        assert!(out.host_compute_time[2] >= out.host_compute_time[0]);
    }

    #[test]
    fn energy_accumulates_over_iterations() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.run_iteration();
        let e1 = p.host_energy();
        p.run_iteration();
        let e2 = p.host_energy();
        assert!(e2[0] > e1[0] && e2[1] > e1[1]);
    }

    #[test]
    fn jitter_is_reproducible_and_small() {
        let mk = |seed| {
            let mut p = platform(1, &[1.0]).with_jitter(0.01, seed);
            (0..5)
                .map(|_| p.run_iteration().elapsed.value())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
        let ts = mk(3);
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        assert!(ts.iter().all(|t| (t - mean).abs() / mean < 0.1));
    }

    #[test]
    fn limits_are_programmable_per_host() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.set_host_limit(0, Watts(150.0)).unwrap();
        p.set_host_limit(1, Watts(200.0)).unwrap();
        let limits = p.host_limits();
        assert!((limits[0].value() - 150.0).abs() < 0.5);
        assert!((limits[1].value() - 200.0).abs() < 0.5);
        assert!(p.set_host_limit(5, Watts(150.0)).is_err());
    }

    #[test]
    fn out_of_range_limits_are_clamped_by_node() {
        let mut p = platform(1, &[1.0]);
        // 50 W/node is below the 136 W floor; node clamps per socket.
        p.set_host_limit(0, Watts(50.0)).unwrap();
        assert!((p.host_limits()[0].value() - 136.0).abs() < 0.5);
    }

    #[test]
    fn total_power_sums_hosts() {
        let mut p = platform(3, &[1.0, 1.0, 1.0]);
        let out = p.run_iteration();
        let sum: f64 = out.host_power.iter().map(|w| w.value()).sum();
        assert!((out.total_power().value() - sum).abs() < 1e-9);
    }

    #[test]
    fn planned_node_death_fires_at_its_iteration() {
        let plan = pmstack_simhw::FaultPlan::scripted(vec![pmstack_simhw::faults::kill(1, 3)]);
        let mut p = platform(2, &[1.0, 1.0]).with_fault_plan(plan);
        let before = p.run_iteration(); // iterations 0, 1, 2
        assert!(before.host_alive.iter().all(|&a| a));
        p.run_iteration();
        p.run_iteration();
        let after = p.run_iteration(); // iteration 3: host 1 dies at barrier
        assert!(after.host_alive[0]);
        assert!(!after.host_alive[1]);
        assert_eq!(after.alive_count(), 1);
        assert!(after.degraded());
        assert_eq!(after.host_power[1], Watts::ZERO);
        // The survivors keep the job going: elapsed still positive, and the
        // dead host no longer accumulates energy.
        let e1 = p.host_energy();
        p.run_iteration();
        let e2 = p.host_energy();
        assert!(e2[0] > e1[0]);
        assert_eq!(e2[1], e1[1]);
    }

    #[test]
    fn telemetry_dropout_serves_stale_readings_then_recovers() {
        let plan =
            pmstack_simhw::FaultPlan::scripted(vec![pmstack_simhw::faults::telemetry_dropout(
                0, 1, 3,
            )]);
        let mut p = platform(1, &[1.0]).with_fault_plan(plan);
        let fresh = p.run_iteration();
        assert!(fresh.host_fresh[0]);
        let known = fresh.host_power[0];
        let e_before = p.host_energy();
        for _ in 0..3 {
            let out = p.run_iteration();
            assert!(out.host_alive[0], "dropout must not kill the host");
            assert!(!out.host_fresh[0]);
            assert_eq!(out.host_power[0], known, "stale reading is last-known");
        }
        // The hardware kept running underneath the blackout.
        assert!(p.host_energy()[0] > e_before[0]);
        let recovered = p.run_iteration();
        assert!(recovered.host_fresh[0]);
    }

    #[test]
    fn stuck_rapl_pins_the_programmed_limit() {
        let mut p = platform(1, &[1.0]);
        p.inject_fault(0, pmstack_simhw::FaultKind::StuckRapl { pinned_w: 200.0 });
        // Writes "succeed" but the latch wins.
        p.set_host_limit(0, Watts(150.0)).unwrap();
        assert!((p.host_limits()[0].value() - 200.0).abs() < 0.5);
    }

    #[test]
    fn uniform_limit_skips_dead_hosts() {
        let mut p = platform(2, &[1.0, 1.0]);
        p.inject_fault(1, pmstack_simhw::FaultKind::NodeDeath);
        p.set_uniform_limit(Watts(180.0)).unwrap();
        assert!((p.host_limits()[0].value() - 180.0).abs() < 0.5);
        assert!(!p.is_host_alive(1));
        assert_eq!(p.alive_hosts(), 1);
        assert_eq!(p.host_health()[1], NodeHealth::Dead);
    }
}
