//! Integration coverage for `runtime::trace`: exact CSV column layout and
//! round-trip at printed precision, the convergence-point accessor on
//! hand-built traces, and empty-trace edge cases.

use pmstack_runtime::{Trace, TraceRecord};
use pmstack_simhw::{Hertz, Seconds, Watts};

/// A hand-built record with every signal derived from `(iteration, host)`
/// so round-trip checks know the expected value in each cell.
fn record(iteration: usize, host: usize, limit_w: f64) -> TraceRecord {
    TraceRecord {
        time: Seconds(0.25 * (iteration + 1) as f64),
        iteration,
        host,
        power: Watts(150.0 + host as f64),
        freq: Hertz::from_ghz(2.0 + 0.001 * iteration as f64),
        limit: Watts(limit_w),
        epoch: Seconds(0.125),
    }
}

/// Iteration-major trace over `hosts` hosts whose limits follow `limit_of`.
fn build(iterations: usize, hosts: usize, limit_of: impl Fn(usize, usize) -> f64) -> Trace {
    let mut records = Vec::new();
    for it in 0..iterations {
        for h in 0..hosts {
            records.push(record(it, h, limit_of(it, h)));
        }
    }
    Trace::from_records(records)
}

#[test]
fn csv_header_matches_geopm_column_layout() {
    let trace = build(1, 1, |_, _| 185.0);
    let csv = trace.to_csv();
    assert_eq!(
        csv.lines().next().unwrap(),
        "time_s,iteration,host,power_w,freq_ghz,limit_w,epoch_s"
    );
}

#[test]
fn csv_round_trips_every_field_at_printed_precision() {
    let trace = build(3, 2, |it, h| 200.0 - 10.0 * it as f64 + h as f64);
    let csv = trace.to_csv();
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), trace.records().len());
    for (row, rec) in rows.iter().zip(trace.records()) {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 7, "row `{row}` not 7 columns");
        // Columns print at fixed precision: .4, int, int, .2, .3, .2, .5.
        assert_eq!(cols[0], format!("{:.4}", rec.time.value()));
        assert_eq!(cols[1].parse::<usize>().unwrap(), rec.iteration);
        assert_eq!(cols[2].parse::<usize>().unwrap(), rec.host);
        assert_eq!(cols[3], format!("{:.2}", rec.power.value()));
        assert_eq!(cols[4], format!("{:.3}", rec.freq.ghz()));
        assert_eq!(cols[5], format!("{:.2}", rec.limit.value()));
        assert_eq!(cols[6], format!("{:.5}", rec.epoch.value()));
        // And parsing the printed value recovers the original to the
        // printed precision.
        assert!((cols[3].parse::<f64>().unwrap() - rec.power.value()).abs() < 5e-3);
        assert!((cols[5].parse::<f64>().unwrap() - rec.limit.value()).abs() < 5e-3);
    }
}

#[test]
fn convergence_finds_the_settling_point() {
    // Host 0: limit walks 230 → 220 → 210 → 200, then holds 200 for the
    // rest. With a 5 W tolerance the first in-band iteration is 3.
    let trace = build(8, 2, |it, h| {
        if h == 0 {
            (230.0 - 10.0 * it as f64).max(200.0)
        } else {
            185.0 // host 1 never moves: converged from iteration 0
        }
    });
    assert_eq!(trace.convergence_iteration(0, Watts(5.0)), Some(3));
    assert_eq!(trace.convergence_iteration(1, Watts(5.0)), Some(0));
    // A tolerance wide enough to cover the whole walk converges at 0.
    assert_eq!(trace.convergence_iteration(0, Watts(50.0)), Some(0));
    // A zero tolerance still finds the exact settling iteration.
    assert_eq!(trace.convergence_iteration(0, Watts(0.0)), Some(3));
}

#[test]
fn convergence_never_settling_returns_none_equivalent_last() {
    // The limit changes on every iteration; only the final sample is
    // within tolerance of itself, so convergence lands on the last index.
    let trace = build(5, 1, |it, _| 200.0 + 10.0 * it as f64);
    assert_eq!(trace.convergence_iteration(0, Watts(1.0)), Some(4));
}

#[test]
fn unknown_host_has_no_convergence_point() {
    let trace = build(4, 1, |_, _| 185.0);
    assert_eq!(trace.convergence_iteration(7, Watts(5.0)), None);
}

#[test]
fn empty_trace_edge_cases() {
    let trace = Trace::from_records(Vec::new());
    assert_eq!(trace.iterations(), 0);
    assert!(trace.records().is_empty());
    assert!(trace.host(0).is_empty());
    assert_eq!(trace.convergence_iteration(0, Watts(1.0)), None);
    let csv = trace.to_csv();
    assert_eq!(csv.lines().count(), 1, "header only");
    assert!(csv.ends_with('\n'));
}

#[test]
fn single_record_trace_is_converged_at_its_only_iteration() {
    let trace = Trace::from_records(vec![record(0, 0, 185.0)]);
    assert_eq!(trace.iterations(), 1);
    assert_eq!(trace.convergence_iteration(0, Watts(1.0)), Some(0));
}
