//! Integration tests of graceful degradation in the job runtime: injected
//! faults must bend the run (stale telemetry, lost hosts, reclaimed power),
//! never break it (no panics, no budget violations, reports still produced).

use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_runtime::{Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{
    faults, quartz_spec, FaultKind, FaultPlan, Node, NodeHealth, NodeId, PowerModel, Watts,
};

fn platform(eps: &[f64], plan: FaultPlan) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes = eps
        .iter()
        .enumerate()
        .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
        .collect();
    JobPlatform::new(
        model,
        nodes,
        KernelConfig::new(
            16.0,
            VectorWidth::Ymm,
            WaitingFraction::P25,
            Imbalance::Balanced,
        ),
    )
    .with_fault_plan(plan)
}

#[test]
fn telemetry_dropout_degrades_the_run_without_crashing() {
    // A mid-run telemetry blackout on host 0: the controller must finish
    // the run, the agent must hold the blind host's cap, and the report
    // must still carry true hardware-counter energy (the dropout hides
    // samples from the observer, not from the energy accounting).
    let plan = FaultPlan::scripted(vec![faults::telemetry_dropout(0, 40, 8)]);
    let budget = Watts(2.0 * 180.0);
    let mut controller = Controller::new(
        platform(&[1.0, 1.05], plan),
        PowerBalancerAgent::new(budget),
    );
    let report = controller.run(120);
    assert_eq!(report.iterations, 120);
    assert!(report.hosts.iter().all(|h| h.energy.value() > 0.0));
    assert!(
        report.avg_power() <= budget + Watts(10.0),
        "budget respected through the blackout: {}",
        report.avg_power()
    );
    // Telemetry recovered afterwards, so the host ends healthy again.
    assert_eq!(
        controller.platform().host_health(),
        vec![NodeHealth::Healthy, NodeHealth::Healthy]
    );
}

#[test]
fn dropout_marks_the_host_suspect_while_blind() {
    let plan = FaultPlan::scripted(vec![faults::telemetry_dropout(1, 5, 50)]);
    let mut controller = Controller::new(platform(&[1.0, 1.0], plan), MonitorAgent);
    let report = controller.run(20);
    assert_eq!(report.iterations, 20);
    // The blackout outlives the run: the host is suspect, not dead.
    let health = controller.platform().host_health();
    assert_eq!(health[0], NodeHealth::Healthy);
    assert_eq!(health[1], NodeHealth::Suspect);
    assert!(controller.platform().is_host_alive(1));
}

#[test]
fn node_death_mid_run_still_produces_a_full_report() {
    let plan = FaultPlan::scripted(vec![faults::kill(1, 30)]);
    let budget = Watts(3.0 * 170.0);
    let mut controller = Controller::new(
        platform(&[1.0, 1.0, 1.07], plan),
        PowerBalancerAgent::new(budget),
    );
    let report = controller.run(100);
    assert_eq!(report.iterations, 100);
    assert_eq!(report.hosts.len(), 3);
    let health = controller.platform().host_health();
    assert_eq!(health[1], NodeHealth::Dead);
    // The dead host stopped drawing power; the survivors kept computing
    // under the (re-balanced) budget.
    assert!(report.hosts[1].energy < report.hosts[0].energy);
    assert!(
        report.avg_power() <= budget + Watts(10.0),
        "budget respected across the death: {}",
        report.avg_power()
    );
}

#[test]
fn stuck_rapl_and_transient_msr_faults_are_survivable() {
    let plan = FaultPlan::scripted(vec![
        faults::stuck_rapl(0, 10, Watts(190.0)),
        pmstack_simhw::FaultEvent {
            at_iteration: 20,
            host: 1,
            kind: FaultKind::TransientMsrFault,
        },
    ]);
    let mut controller = Controller::new(
        platform(&[1.0, 1.0], plan),
        PowerBalancerAgent::new(Watts(2.0 * 200.0)),
    );
    let report = controller.run(60);
    assert_eq!(report.iterations, 60);
    // The stuck host enforces the pinned value no matter what the agent
    // programs.
    assert!(
        (controller.platform().host_limits()[0].value() - 190.0).abs() < 0.5,
        "latched limit wins: {}",
        controller.platform().host_limits()[0]
    );
    // The one-shot MSR fault was absorbed; both hosts end alive.
    assert_eq!(controller.platform().alive_hosts(), 2);
}

#[test]
fn randomized_plans_never_panic_the_controller() {
    // Deterministic fuzz: a handful of seeded random plans over a small
    // job. Whatever fires, runs finish and report.
    for seed in 0..8 {
        let plan = FaultPlan::randomized(seed, 3, 50, 4);
        let mut controller = Controller::new(
            platform(&[1.0, 0.95, 1.05], plan),
            PowerBalancerAgent::new(Watts(3.0 * 175.0)),
        );
        let report = controller.run(60);
        assert_eq!(report.iterations, 60, "seed {seed}");
        assert!(report.elapsed.value() > 0.0, "seed {seed}");
    }
}
