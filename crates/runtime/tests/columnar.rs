//! Property tests pinning the columnar platform to the seed semantics.
//!
//! The reference below is a line-for-line transcription of the pre-columnar
//! `JobPlatform::run_iteration`: per-`Node` virtual stepping, a fresh
//! operating-point resolve per host per iteration, and `Vec`s collected per
//! call. The columnar bank, the settled operating-point cache, and the
//! steady-state fast-forward replay must all be *bit-identical* to it — for
//! every observable of every iteration, over random fault plans, jitter
//! seeds, and limit/cap schedules.

use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_runtime::{IterationBuffers, JobPlatform};
use pmstack_simhw::{
    quartz_spec, ClassId, ClassedBank, FaultEvent, FaultKind, FaultPlan, Hertz, HostStep, Joules,
    Node, NodeClass, NodeId, OperatingPoint, PowerModel, Seconds, Watts,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One iteration's observables, bit-comparable.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    elapsed: u64,
    compute: Vec<u64>,
    power: Vec<u64>,
    lead: Vec<u64>,
    limit: Vec<u64>,
    alive: Vec<bool>,
    fresh: Vec<bool>,
}

/// The seed's per-node iteration loop, kept as the oracle.
struct Reference {
    model: PowerModel,
    load: KernelLoad,
    nodes: Vec<Node>,
    plan: FaultPlan,
    sigma: f64,
    rng: ChaCha8Rng,
    iteration: u64,
    last_power: Vec<Watts>,
    last_lead: Vec<Hertz>,
}

impl Reference {
    fn new(config: KernelConfig, eps: &[f64], plan: FaultPlan, sigma: f64, seed: u64) -> Self {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let load = KernelLoad::new(config, model.spec());
        let nodes: Vec<Node> = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let n = nodes.len();
        Self {
            model,
            load,
            nodes,
            plan,
            sigma,
            rng: ChaCha8Rng::seed_from_u64(seed),
            iteration: 0,
            last_power: vec![Watts::ZERO; n],
            last_lead: vec![Hertz(0.0); n],
        }
    }

    fn draw_jitter(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let u: f64 = self.rng.gen::<f64>() + self.rng.gen::<f64>() - 1.0;
        (1.0 + u * self.sigma * 1.7).max(0.5)
    }

    fn run_iteration(&mut self) -> Observed {
        let events: Vec<FaultEvent> = self
            .plan
            .events()
            .iter()
            .filter(|e| e.at_iteration == self.iteration)
            .copied()
            .collect();
        for ev in events {
            if let Some(node) = self.nodes.get_mut(ev.host) {
                node.inject(ev.kind);
            }
        }
        self.iteration += 1;

        let n = self.nodes.len();
        let mut ops = Vec::with_capacity(n);
        let mut compute = Vec::with_capacity(n);
        for host in 0..n {
            if self.nodes[host].is_dead() {
                ops.push(None);
                compute.push(Seconds::ZERO);
                continue;
            }
            let op = self.nodes[host].operating_point(&self.model, &self.load);
            let jitter = self.draw_jitter();
            compute.push(Seconds(self.load.iteration_time(&op).value() * jitter));
            ops.push(Some(op));
        }
        let elapsed = compute.iter().copied().fold(Seconds::ZERO, Seconds::max);
        let limits: Vec<Watts> = self.nodes.iter().map(|n| n.enforced_limit()).collect();

        let mut power = Vec::with_capacity(n);
        let mut lead = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        let mut fresh = Vec::with_capacity(n);
        for (host, &op) in ops.iter().enumerate().take(n) {
            let Some(op) = op else {
                power.push(Watts::ZERO);
                lead.push(Hertz(0.0));
                alive.push(false);
                fresh.push(false);
                continue;
            };
            alive.push(true);
            match self.nodes[host].try_step(&self.model, &self.load, elapsed) {
                Ok(sample) => {
                    self.last_power[host] = sample.power;
                    self.last_lead[host] = op.lead;
                    power.push(sample.power);
                    lead.push(op.lead);
                    fresh.push(true);
                }
                Err(_) => {
                    power.push(self.last_power[host]);
                    lead.push(self.last_lead[host]);
                    fresh.push(false);
                }
            }
        }
        Observed {
            elapsed: elapsed.value().to_bits(),
            compute: compute.iter().map(|t| t.value().to_bits()).collect(),
            power: power.iter().map(|p| p.value().to_bits()).collect(),
            lead: lead.iter().map(|f| f.value().to_bits()).collect(),
            limit: limits.iter().map(|l| l.value().to_bits()).collect(),
            alive,
            fresh,
        }
    }

    fn energies(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.energy().value().to_bits())
            .collect()
    }
}

fn observe(bufs: &IterationBuffers) -> Observed {
    let o = bufs.outcome();
    Observed {
        elapsed: o.elapsed.value().to_bits(),
        compute: o
            .host_compute_time
            .iter()
            .map(|t| t.value().to_bits())
            .collect(),
        power: o.host_power.iter().map(|p| p.value().to_bits()).collect(),
        lead: o.host_lead.iter().map(|f| f.value().to_bits()).collect(),
        limit: o.host_limit.iter().map(|l| l.value().to_bits()).collect(),
        alive: o.host_alive.clone(),
        fresh: o.host_fresh.clone(),
    }
}

fn build_platform(
    config: KernelConfig,
    eps: &[f64],
    plan: FaultPlan,
    sigma: f64,
    seed: u64,
    fast_forward: bool,
) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes = eps
        .iter()
        .enumerate()
        .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
        .collect();
    let mut p = JobPlatform::new(model, nodes, config)
        .with_fault_plan(plan)
        .with_jitter(sigma, seed);
    p.set_fast_forward(fast_forward);
    p
}

/// A scheduled control write: at iteration `at`, set host `host`'s limit
/// (and possibly a frequency cap).
#[derive(Debug, Clone)]
struct ControlWrite {
    at: u64,
    host: usize,
    limit: f64,
    cap_ghz: Option<f64>,
}

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::NodeDeath),
        (100.0f64..260.0).prop_map(|w| FaultKind::StuckRapl { pinned_w: w }),
        (1u32..5).prop_map(|iterations| FaultKind::TelemetryDropout { iterations }),
        Just(FaultKind::TransientMsrFault),
    ]
}

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        0.5f64..24.0,
        prop_oneof![
            Just(WaitingFraction::P0),
            Just(WaitingFraction::P50),
            Just(WaitingFraction::P75)
        ],
    )
        .prop_map(|(i, w)| {
            let k = if w == WaitingFraction::P0 {
                Imbalance::Balanced
            } else {
                Imbalance::TwoX
            };
            KernelConfig::new(i, VectorWidth::Ymm, w, k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Columnar stepping — with fast-forward both armed and disarmed — is
    /// bit-identical to the seed's per-node loop for every observable of
    /// every iteration, over random fault plans, jitter seeds, and
    /// limit/cap schedules.
    #[test]
    fn columnar_matches_seed_semantics(
        config in arb_config(),
        eps in prop::collection::vec(0.92f64..1.08, 1..5),
        sigma in prop_oneof![Just(0.0), 0.002f64..0.02],
        seed in 0u64..u64::MAX,
        faults in prop::collection::vec((0u64..50, 0usize..5, arb_kind()), 0..4),
        writes in prop::collection::vec(
            (
                0u64..50,
                0usize..5,
                120.0f64..260.0,
                prop_oneof![Just(None), (1.2f64..2.6).prop_map(Some)],
            ),
            0..4,
        ),
    ) {
        let n = eps.len();
        let plan = FaultPlan::scripted(
            faults
                .iter()
                .map(|&(at_iteration, host, kind)| FaultEvent {
                    at_iteration,
                    host: host % n,
                    kind,
                })
                .collect(),
        );
        let writes: Vec<ControlWrite> = writes
            .iter()
            .map(|&(at, host, limit, cap_ghz)| ControlWrite {
                at,
                host: host % n,
                limit,
                cap_ghz,
            })
            .collect();

        let mut reference = Reference::new(config, &eps, plan.clone(), sigma, seed);
        let mut fast = build_platform(config, &eps, plan.clone(), sigma, seed, true);
        let mut slow = build_platform(config, &eps, plan.clone(), sigma, seed, false);
        // Pathologically small segments: every host write and fault now
        // straddles a segment boundary somewhere in the schedule.
        let mut sharded =
            build_platform(config, &eps, plan, sigma, seed, true).with_segment_hosts(2);
        let mut fast_bufs = IterationBuffers::new();
        let mut slow_bufs = IterationBuffers::new();
        let mut shard_bufs = IterationBuffers::new();

        for iter in 0..50u64 {
            fast.run_iteration_into(&mut fast_bufs);
            slow.run_iteration_into(&mut slow_bufs);
            sharded.run_iteration_into(&mut shard_bufs);
            let expected = reference.run_iteration();
            prop_assert_eq!(&observe(&fast_bufs), &expected, "fast-forward path, iteration {}", iter);
            prop_assert_eq!(&observe(&slow_bufs), &expected, "reference path, iteration {}", iter);
            prop_assert_eq!(&observe(&shard_bufs), &expected, "sharded path, iteration {}", iter);

            for w in writes.iter().filter(|w| w.at == iter) {
                let _ = fast.set_host_limit(w.host, Watts(w.limit));
                let _ = slow.set_host_limit(w.host, Watts(w.limit));
                let _ = sharded.set_host_limit(w.host, Watts(w.limit));
                let _ = reference.nodes[w.host].set_power_limit(Watts(w.limit));
                if let Some(ghz) = w.cap_ghz {
                    let cap = Some(Hertz(ghz * 1e9));
                    let _ = fast.set_host_freq_cap(w.host, cap);
                    let _ = slow.set_host_freq_cap(w.host, cap);
                    let _ = sharded.set_host_freq_cap(w.host, cap);
                    let _ = reference.nodes[w.host].set_freq_cap(cap);
                }
            }
        }

        let expected_energy = reference.energies();
        let fast_energy: Vec<u64> = fast.host_energy().iter().map(|e| e.value().to_bits()).collect();
        let slow_energy: Vec<u64> = slow.host_energy().iter().map(|e| e.value().to_bits()).collect();
        let shard_energy: Vec<u64> = sharded.host_energy().iter().map(|e| e.value().to_bits()).collect();
        prop_assert_eq!(&fast_energy, &expected_energy);
        prop_assert_eq!(&slow_energy, &expected_energy);
        prop_assert_eq!(&shard_energy, &expected_energy);
    }
}

/// The platform iteration loop transcribed onto a [`ClassedBank`]: the same
/// fault delivery, jitter draws, elapsed fold, pre-step limit observation,
/// batched stepping and stale-telemetry fallback, but against the
/// heterogeneous container instead of the homogeneous [`NodeBank`]
/// (`pmstack_simhw::NodeBank`) the platform embeds.
struct ClassedDriver {
    load: KernelLoad,
    bank: ClassedBank,
    plan: FaultPlan,
    sigma: f64,
    rng: ChaCha8Rng,
    iteration: u64,
    last_power: Vec<Watts>,
    last_lead: Vec<Hertz>,
}

impl ClassedDriver {
    fn new(config: KernelConfig, eps: &[f64], plan: FaultPlan, sigma: f64, seed: u64) -> Self {
        let spec = quartz_spec();
        let load = KernelLoad::new(config, &spec);
        let classes = vec![NodeClass::pkg_only("quartz", spec)];
        let membership = vec![ClassId(0); eps.len()];
        let bank = ClassedBank::new(classes, &membership, eps).unwrap();
        let n = eps.len();
        Self {
            load,
            bank,
            plan,
            sigma,
            rng: ChaCha8Rng::seed_from_u64(seed),
            iteration: 0,
            last_power: vec![Watts::ZERO; n],
            last_lead: vec![Hertz(0.0); n],
        }
    }

    fn draw_jitter(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let u: f64 = self.rng.gen::<f64>() + self.rng.gen::<f64>() - 1.0;
        (1.0 + u * self.sigma * 1.7).max(0.5)
    }

    fn run_iteration(&mut self) -> Observed {
        let events: Vec<FaultEvent> = self
            .plan
            .events()
            .iter()
            .filter(|e| e.at_iteration == self.iteration)
            .copied()
            .collect();
        for ev in events {
            if ev.host < self.bank.len() {
                self.bank.inject(ev.host, ev.kind);
            }
        }
        self.iteration += 1;

        let n = self.bank.len();
        let mut ops: Vec<Option<OperatingPoint>> = Vec::with_capacity(n);
        let mut compute = Vec::with_capacity(n);
        for host in 0..n {
            if !self.bank.is_alive(host) {
                ops.push(None);
                compute.push(Seconds::ZERO);
                continue;
            }
            let op = self.bank.operating_point(host, &self.load);
            let jitter = self.draw_jitter();
            compute.push(Seconds(self.load.iteration_time(&op).value() * jitter));
            ops.push(Some(op));
        }
        let elapsed = compute.iter().copied().fold(Seconds::ZERO, Seconds::max);
        let limits: Vec<Watts> = (0..n).map(|h| self.bank.enforced_limit(h)).collect();

        let mut steps = vec![HostStep::Skipped; n];
        self.bank.step_all_partial(elapsed, &ops, &mut steps, false);

        let mut power = Vec::with_capacity(n);
        let mut lead = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        let mut fresh = Vec::with_capacity(n);
        for host in 0..n {
            match (&ops[host], steps[host]) {
                (None, _) => {
                    power.push(Watts::ZERO);
                    lead.push(Hertz(0.0));
                    alive.push(false);
                    fresh.push(false);
                }
                (Some(op), HostStep::Fresh) => {
                    self.last_power[host] = op.power;
                    self.last_lead[host] = op.lead;
                    power.push(op.power);
                    lead.push(op.lead);
                    alive.push(true);
                    fresh.push(true);
                }
                (Some(_), HostStep::Stale) => {
                    power.push(self.last_power[host]);
                    lead.push(self.last_lead[host]);
                    alive.push(true);
                    fresh.push(false);
                }
                (Some(_), HostStep::Skipped) => unreachable!("live host was not stepped"),
            }
        }
        Observed {
            elapsed: elapsed.value().to_bits(),
            compute: compute.iter().map(|t| t.value().to_bits()).collect(),
            power: power.iter().map(|p| p.value().to_bits()).collect(),
            lead: lead.iter().map(|f| f.value().to_bits()).collect(),
            limit: limits.iter().map(|l| l.value().to_bits()).collect(),
            alive,
            fresh,
        }
    }

    fn energies(&self) -> Vec<u64> {
        (0..self.bank.len())
            .map(|h| self.bank.energy(h).value().to_bits())
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A one-class, PKG-only heterogeneous fleet run through the platform's
    /// iteration loop is bit-identical to the seed's per-node loop for every
    /// observable of every iteration — the degenerate-heterogeneity contract
    /// at the runtime layer, mirroring the bank-level lockstep suite in
    /// `crates/simhw/tests/shards.rs`.
    #[test]
    fn one_class_fleet_matches_seed_semantics(
        config in arb_config(),
        eps in prop::collection::vec(0.92f64..1.08, 1..5),
        sigma in prop_oneof![Just(0.0), 0.002f64..0.02],
        seed in 0u64..u64::MAX,
        faults in prop::collection::vec((0u64..40, 0usize..5, arb_kind()), 0..4),
        writes in prop::collection::vec(
            (
                0u64..40,
                0usize..5,
                120.0f64..260.0,
                prop_oneof![Just(None), (1.2f64..2.6).prop_map(Some)],
            ),
            0..4,
        ),
    ) {
        let n = eps.len();
        let plan = FaultPlan::scripted(
            faults
                .iter()
                .map(|&(at_iteration, host, kind)| FaultEvent {
                    at_iteration,
                    host: host % n,
                    kind,
                })
                .collect(),
        );
        let writes: Vec<ControlWrite> = writes
            .iter()
            .map(|&(at, host, limit, cap_ghz)| ControlWrite {
                at,
                host: host % n,
                limit,
                cap_ghz,
            })
            .collect();

        let mut reference = Reference::new(config, &eps, plan.clone(), sigma, seed);
        let mut classed = ClassedDriver::new(config, &eps, plan, sigma, seed);

        for iter in 0..40u64 {
            let expected = reference.run_iteration();
            let got = classed.run_iteration();
            prop_assert_eq!(&got, &expected, "classed one-class path, iteration {}", iter);

            for w in writes.iter().filter(|w| w.at == iter) {
                let _ = classed.bank.set_power_limit(w.host, Watts(w.limit));
                let _ = reference.nodes[w.host].set_power_limit(Watts(w.limit));
                if let Some(ghz) = w.cap_ghz {
                    let cap = Some(Hertz(ghz * 1e9));
                    let _ = classed.bank.set_freq_cap(w.host, cap);
                    let _ = reference.nodes[w.host].set_freq_cap(cap);
                }
            }
        }
        prop_assert_eq!(classed.energies(), reference.energies());
    }
}

/// Deterministic long run: the fast-forward replay must actually engage and
/// stay bit-identical to the seed loop through capture, replay, a mid-run
/// control write (which disarms it), and re-capture.
#[test]
fn fast_forward_replay_is_bit_identical_over_long_run() {
    let config = KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
    let eps = [0.97, 1.0, 1.04];
    let mut reference = Reference::new(config, &eps, FaultPlan::none(), 0.0, 7);
    let mut p = build_platform(config, &eps, FaultPlan::none(), 0.0, 7, true);
    let mut bufs = IterationBuffers::new();

    // Cap hard enough that the enforcement filter has real work to do.
    for h in 0..eps.len() {
        p.set_host_limit(h, Watts(180.0)).unwrap();
        reference.nodes[h].set_power_limit(Watts(180.0)).unwrap();
    }

    let mut engaged = false;
    for iter in 0..400 {
        if iter == 250 {
            assert!(
                p.steady_state_active(),
                "fast-forward should be armed once the filters settle"
            );
            engaged = true;
            p.set_host_limit(1, Watts(200.0)).unwrap();
            reference.nodes[1].set_power_limit(Watts(200.0)).unwrap();
            assert!(
                !p.steady_state_active(),
                "control writes must disarm replay"
            );
        }
        p.run_iteration_into(&mut bufs);
        let expected = reference.run_iteration();
        assert_eq!(observe(&bufs), expected, "iteration {iter}");
    }
    assert!(engaged);
    assert!(
        p.steady_state_active(),
        "replay should re-arm after the new limit settles"
    );
    let energies: Vec<u64> = p
        .host_energy()
        .iter()
        .map(|e| e.value().to_bits())
        .collect();
    assert_eq!(energies, reference.energies());
}

/// Single-host disturbances on segment-edge hosts of a sharded platform:
/// the run stays bit-identical to the seed loop throughout, and steady-state
/// replay re-arms after each localized invalidation (proving a one-host
/// write does not wedge the other segments out of their caches).
#[test]
fn sharded_single_host_writes_stay_bit_identical_and_rearm() {
    let config = KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
    // 13 hosts at 3 per segment: 5 segments, ragged final segment of one.
    let eps: Vec<f64> = (0..13).map(|i| 0.94 + 0.01 * (i % 9) as f64).collect();
    let mut reference = Reference::new(config, &eps, FaultPlan::none(), 0.0, 23);
    let mut p =
        build_platform(config, &eps, FaultPlan::none(), 0.0, 23, true).with_segment_hosts(3);
    assert_eq!(p.num_segments(), 5);
    let mut bufs = IterationBuffers::new();

    for h in 0..eps.len() {
        p.set_host_limit(h, Watts(180.0)).unwrap();
        reference.nodes[h].set_power_limit(Watts(180.0)).unwrap();
    }

    let mut rearms = 0;
    for iter in 0..700 {
        match iter {
            // Last host of segment 0, first host of segment 1, the lone
            // host of the ragged final segment, and a mid-segment fault.
            200 => {
                assert!(p.steady_state_active(), "replay should be armed by 200");
                p.set_host_limit(2, Watts(200.0)).unwrap();
                reference.nodes[2].set_power_limit(Watts(200.0)).unwrap();
            }
            320 => {
                p.set_host_limit(3, Watts(170.0)).unwrap();
                reference.nodes[3].set_power_limit(Watts(170.0)).unwrap();
            }
            440 => {
                p.set_host_limit(12, Watts(195.0)).unwrap();
                reference.nodes[12].set_power_limit(Watts(195.0)).unwrap();
            }
            560 => {
                p.inject_fault(7, FaultKind::TelemetryDropout { iterations: 3 });
                reference.nodes[7].inject(FaultKind::TelemetryDropout { iterations: 3 });
            }
            _ => {}
        }
        if matches!(iter, 200 | 320 | 440 | 560) {
            assert!(!p.steady_state_active(), "disturbance must disarm replay");
        }
        if matches!(iter, 319 | 439 | 559 | 699) {
            assert!(
                p.steady_state_active(),
                "replay should re-arm after the localized disturbance settles (iter {iter})"
            );
            rearms += 1;
        }
        p.run_iteration_into(&mut bufs);
        let expected = reference.run_iteration();
        assert_eq!(observe(&bufs), expected, "iteration {iter}");
    }
    assert_eq!(rearms, 4);
    let energies: Vec<u64> = p
        .host_energy()
        .iter()
        .map(|e| e.value().to_bits())
        .collect();
    assert_eq!(energies, reference.energies());
}

/// The bank's operating-point resolve (used by the platform) agrees with the
/// node's own resolve under frequency caps.
#[test]
fn platform_operating_point_matches_node_resolve() {
    let config = KernelConfig::balanced_ymm(8.0);
    let eps = [1.0, 1.03];
    let mut p = build_platform(config, &eps, FaultPlan::none(), 0.0, 0, true);
    let model = PowerModel::new(quartz_spec()).unwrap();
    let load = KernelLoad::new(config, model.spec());
    let mut nodes: Vec<Node> = eps
        .iter()
        .enumerate()
        .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
        .collect();
    p.set_host_freq_cap(0, Some(Hertz(1.9e9))).unwrap();
    nodes[0].set_freq_cap(Some(Hertz(1.9e9))).unwrap();
    for (h, node) in nodes.iter().enumerate() {
        let got = p.host_operating_point(h).unwrap();
        let want = node.operating_point(&model, &load);
        assert_eq!(got.lead.value().to_bits(), want.lead.value().to_bits());
        assert_eq!(got.trail.value().to_bits(), want.trail.value().to_bits());
        assert_eq!(got.power.value().to_bits(), want.power.value().to_bits());
    }
    let _ = Joules::ZERO; // keep the unit import honest if fields change
}
