//! Integration tests of multi-phase application support (§VIII future
//! work): the balancer must re-converge to each phase's needed power.

use pmstack_kernel::{
    Imbalance, KernelConfig, KernelLoad, PhasedWorkload, VectorWidth, WaitingFraction,
};
use pmstack_runtime::{Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};

fn platform(eps: &[f64]) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes = eps
        .iter()
        .enumerate()
        .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
        .collect();
    // Initial config is immediately replaced by the first phase.
    JobPlatform::new(model, nodes, KernelConfig::balanced_ymm(1.0))
}

fn slack_phase() -> KernelConfig {
    KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX)
}

fn hungry_phase() -> KernelConfig {
    KernelConfig::balanced_ymm(16.0)
}

#[test]
fn balancer_reconverges_across_phase_boundary() {
    let workload = PhasedWorkload::new([(slack_phase(), 120), (hungry_phase(), 120)]);
    let budget = Watts(2.0 * 240.0);
    let mut controller = Controller::new(platform(&[1.0, 1.0]), PowerBalancerAgent::new(budget));
    let report = controller.run_phased(&workload);
    assert_eq!(report.iterations, 240);

    // After the hungry phase the balancer must have restored the limits:
    // the hungry phase needs ~224 W/node while the slack phase needed ~184.
    let model = PowerModel::new(quartz_spec()).unwrap();
    let hungry_needed = KernelLoad::new(hungry_phase(), &quartz_spec())
        .needed_power(&model, 1.0)
        .value();
    let final_targets = controller.agent().targets();
    for t in final_targets {
        assert!(
            (t.value() - hungry_needed).abs() < 18.0,
            "final target {t} should track the hungry phase's needed {hungry_needed:.1} W"
        );
    }
}

#[test]
fn phased_energy_beats_unmanaged_run() {
    let workload = PhasedWorkload::new([(slack_phase(), 100), (hungry_phase(), 100)]);
    let budget = Watts(2.0 * 240.0);
    let managed = Controller::new(platform(&[1.0, 1.0]), PowerBalancerAgent::new(budget))
        .run_phased(&workload);
    let unmanaged = Controller::new(platform(&[1.0, 1.0]), MonitorAgent).run_phased(&workload);
    // The slack phase's harvested power is pure energy savings; time must
    // not regress materially.
    assert!(
        managed.energy < unmanaged.energy * 0.99,
        "managed {} vs unmanaged {}",
        managed.energy,
        unmanaged.energy
    );
    assert!(managed.elapsed.value() < unmanaged.elapsed.value() * 1.03);
}

#[test]
fn phased_report_accounts_both_phases() {
    let workload = PhasedWorkload::new([
        (KernelConfig::balanced_ymm(0.0), 10), // zero-FLOP streaming phase
        (hungry_phase(), 10),
    ]);
    let report = Controller::new(platform(&[1.0]), MonitorAgent).run_phased(&workload);
    assert_eq!(report.iteration_times.len(), 20);
    // FLOPs come only from the second phase.
    let model = PowerModel::new(quartz_spec()).unwrap();
    let _ = &model;
    let expected = pmstack_kernel::PerfModel::new(hungry_phase(), &quartz_spec())
        .node_flops_per_iteration()
        * 10.0;
    assert!((report.flops - expected).abs() / expected < 1e-9);
    // Elapsed equals the sum of the iteration series.
    let sum: f64 = report.iteration_times.iter().map(|t| t.value()).sum();
    assert!((sum - report.elapsed.value()).abs() < 1e-9);
}

#[test]
fn single_phase_run_matches_plain_run() {
    let config = hungry_phase();
    let workload = PhasedWorkload::single(config, 25);
    let phased = Controller::new(platform(&[1.0, 1.03]), MonitorAgent).run_phased(&workload);
    let mut plain_platform = platform(&[1.0, 1.03]);
    plain_platform.set_config(config);
    let plain = Controller::new(plain_platform, MonitorAgent).run(25);
    assert!((phased.elapsed.value() - plain.elapsed.value()).abs() < 1e-9);
    assert!((phased.energy.value() - plain.energy.value()).abs() < 1e-6);
}
