//! Property-based tests of the runtime agents.

use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_runtime::{Agent, Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        0.25f64..32.0,
        prop_oneof![
            Just(WaitingFraction::P0),
            Just(WaitingFraction::P25),
            Just(WaitingFraction::P50),
            Just(WaitingFraction::P75)
        ],
        prop_oneof![
            Just(Imbalance::Balanced),
            Just(Imbalance::TwoX),
            Just(Imbalance::ThreeX)
        ],
    )
        .prop_map(|(i, w, k)| {
            let k = if w == WaitingFraction::P0 {
                Imbalance::Balanced
            } else {
                k
            };
            KernelConfig::new(i, VectorWidth::Ymm, w, k)
        })
}

fn platform(config: KernelConfig, eps: &[f64]) -> JobPlatform {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes = eps
        .iter()
        .enumerate()
        .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
        .collect();
    JobPlatform::new(model, nodes, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The balancer's targets never exceed its budget nor leave the node's
    /// settable range, for any workload, efficiency mix, and budget.
    #[test]
    fn balancer_conserves_budget(
        config in arb_config(),
        eps in prop::collection::vec(0.9f64..1.1, 2..5),
        per_host in 140.0f64..240.0,
    ) {
        let budget = Watts(per_host * eps.len() as f64);
        let mut p = platform(config, &eps);
        let mut agent = PowerBalancerAgent::new(budget);
        agent.init(&mut p);
        for _ in 0..60 {
            let out = p.run_iteration();
            agent.adjust(&mut p, &out);
            let total: Watts = agent.targets().iter().copied().sum();
            prop_assert!(total <= budget + Watts(1e-6));
            for t in agent.targets() {
                prop_assert!(t >= Watts(136.0) - Watts(1e-6) && t <= Watts(240.0) + Watts(1e-6));
            }
        }
    }

    /// Monitor runs are side-effect free: the same platform state yields
    /// identical iteration outcomes every time (determinism without jitter).
    #[test]
    fn monitor_runs_are_deterministic(config in arb_config()) {
        let run = || {
            let mut c = Controller::new(platform(config, &[1.0, 1.05]), MonitorAgent);
            let r = c.run(10);
            (r.elapsed, r.energy)
        };
        prop_assert_eq!(run(), run());
    }

    /// Under the balancer, a job's energy never exceeds the same job under
    /// no management at the same elapsed-time tolerance — harvesting slack
    /// can only reduce energy.
    #[test]
    fn balancer_never_wastes_energy(
        config in arb_config(),
        per_host in 180.0f64..240.0,
    ) {
        let eps = [1.0, 1.02];
        let budget = Watts(per_host * eps.len() as f64);
        let mon = Controller::new(platform(config, &eps), MonitorAgent).run(80);
        let bal = Controller::new(platform(config, &eps), PowerBalancerAgent::new(budget))
            .run(80);
        prop_assert!(
            bal.energy <= mon.energy * 1.01,
            "balancer energy {} vs monitor {}",
            bal.energy,
            mon.energy
        );
    }
}
