//! Strongly-typed physical quantities.
//!
//! The stack moves watts, joules, seconds, and hertz between many layers
//! (policies, agents, registers, models). Newtypes keep those from being
//! silently confused while staying `Copy` and arithmetic-friendly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw value in base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Elementwise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True if the value is finite and non-negative.
            #[inline]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{:.3} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

impl Watts {
    /// Construct from kilowatts.
    #[inline]
    pub fn from_kw(kw: f64) -> Self {
        Self(kw * 1e3)
    }

    /// Value in kilowatts.
    #[inline]
    pub fn kw(self) -> f64 {
        self.0 / 1e3
    }
}

impl Hertz {
    /// Construct from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }
}

impl Joules {
    /// Construct from kilojoules.
    #[inline]
    pub fn from_kj(kj: f64) -> Self {
        Self(kj * 1e3)
    }

    /// Value in kilojoules.
    #[inline]
    pub fn kj(self) -> f64 {
        self.0 / 1e3
    }
}

impl Seconds {
    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self(ms / 1e3)
    }

    /// Value in milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power integrated over time yields energy.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy over time yields average power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Energy over power yields time.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let p = Watts(120.0);
        let t = Seconds(2.0);
        let e = p * t;
        assert_eq!(e, Joules(240.0));
        assert_eq!(e / t, p);
        assert_eq!(e / p, t);
    }

    #[test]
    fn conversions() {
        assert_eq!(Watts::from_kw(1.35).value(), 1350.0);
        assert!((Hertz::from_ghz(2.1).ghz() - 2.1).abs() < 1e-12);
        assert!((Seconds::from_ms(500.0).value() - 0.5).abs() < 1e-12);
        assert!((Joules::from_kj(3.0).kj() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let r: f64 = Watts(60.0) / Watts(120.0);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn clamp_and_minmax() {
        let w = Watts(300.0).clamp(Watts(68.0), Watts(120.0));
        assert_eq!(w, Watts(120.0));
        assert_eq!(Watts(10.0).max(Watts(20.0)), Watts(20.0));
        assert_eq!(Watts(10.0).min(Watts(20.0)), Watts(10.0));
    }

    #[test]
    fn sum_over_iter() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.5)].iter().sum();
        assert!((total.value() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(Watts(5.0).is_valid());
        assert!(!Watts(-1.0).is_valid());
        assert!(!Watts(f64::NAN).is_valid());
        assert!(!Watts(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_formats_unit() {
        assert_eq!(format!("{:.1}", Watts(120.0)), "120.0 W");
        assert_eq!(format!("{:.0}", Seconds(3.0)), "3 s");
    }
}
