//! Heterogeneous node classes and the classed fleet bank.
//!
//! The paper's evaluation assumes a homogeneous Xeon fleet; ROADMAP item 4
//! calls that out as the limitation to lift. A [`NodeClass`] bundles
//! everything the stack needs to treat a *kind* of node as a first-class
//! citizen: the machine description (power curve, frequency ladder, TDP),
//! the class's idle floor, and an optional PP0/DRAM sub-plane split
//! ([`DomainConfig`]).
//!
//! [`ClassedBank`] extends the columnar [`NodeBank`] to a mixed fleet by
//! composition rather than by widening the columns: it holds **one bank per
//! class**, so every class keeps its own contiguous column segments (the
//! sharded replay/fast-forward machinery works per class, unchanged), and a
//! global host index maps onto `(class, local)` slots. A 1-class classed
//! bank therefore delegates every step to exactly the code path a
//! homogeneous [`NodeBank`] runs — the lockstep differential suite in
//! `tests/shards.rs` proves the two bit-identical.
//!
//! Sub-plane energy for a classed fleet is metered in per-host columns here
//! (node-level, summed over sockets) rather than through the per-package
//! [`crate::rapl::RaplPackage`] sub-domain state, which the columnar hot
//! path deliberately leaves cold; limit programming still routes through
//! the backing node's MSR devices so allowlist and stuck-fault semantics
//! hold.

use crate::bank::{HostStep, NodeBank, StepReport};
use crate::error::{Result, SimHwError};
use crate::faults::{FaultKind, NodeHealth};
use crate::node::{Node, NodeId};
use crate::power::{LoadModel, MachineSpec, OperatingPoint, PowerModel};
use crate::rapl::{DomainConfig, RaplDomain};
use crate::units::{Hertz, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Identifier of a node class within a fleet description.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub usize);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Everything the stack needs to know about one kind of node.
#[derive(Debug, Clone)]
pub struct NodeClass {
    /// Short stable name (wire formats, metrics labels, CLI).
    pub name: String,
    /// The machine description: power curve, frequency ladder, TDP.
    pub spec: MachineSpec,
    /// Node-level idle floor — the draw below which capping is pointless.
    pub idle_floor: Watts,
    /// Optional PP0/DRAM sub-plane split; `None` keeps the class PKG-only
    /// with exact pre-domain semantics.
    pub domains: Option<DomainConfig>,
}

impl NodeClass {
    /// A PKG-only class wrapping a machine spec, with the idle floor at the
    /// spec's minimum RAPL limit.
    pub fn pkg_only(name: &str, spec: MachineSpec) -> Self {
        let idle_floor = spec.min_rapl_per_node();
        Self {
            name: name.to_string(),
            spec,
            idle_floor,
            domains: None,
        }
    }

    /// Validate the class description.
    pub fn validate(&self) -> Result<()> {
        self.spec.validate()?;
        if !self.idle_floor.is_valid() || self.idle_floor.value() < 0.0 {
            return Err(SimHwError::InvalidParameter(format!(
                "class {}: idle floor must be finite and non-negative",
                self.name
            )));
        }
        if self.idle_floor > self.spec.tdp_per_node() {
            return Err(SimHwError::InvalidParameter(format!(
                "class {}: idle floor {} exceeds TDP {}",
                self.name,
                self.idle_floor,
                self.spec.tdp_per_node()
            )));
        }
        Ok(())
    }
}

/// The three standard classes of the heterogeneous evaluation fleet:
/// quartz (the paper's Broadwell nodes), a Skylake-SP "performance" class,
/// and the single-socket stout "efficiency" class — each with a PP0/DRAM
/// split in line with its part.
pub fn standard_classes() -> Vec<NodeClass> {
    vec![
        NodeClass {
            name: "quartz".to_string(),
            spec: crate::quartz::quartz_spec(),
            idle_floor: Watts(72.0),
            domains: Some(DomainConfig {
                pp0_fraction: 0.72,
                dram_power: Watts(14.0),
            }),
        },
        NodeClass {
            name: "skylake".to_string(),
            spec: crate::machines::skylake_sp_spec(),
            idle_floor: Watts(90.0),
            domains: Some(DomainConfig {
                pp0_fraction: 0.70,
                dram_power: Watts(20.0),
            }),
        },
        NodeClass {
            name: "stout".to_string(),
            spec: crate::machines::stout_spec(),
            idle_floor: Watts(30.0),
            domains: Some(DomainConfig {
                pp0_fraction: 0.78,
                dram_power: Watts(9.0),
            }),
        },
    ]
}

/// One power model per class, index-aligned with the class list.
#[derive(Debug, Clone)]
pub struct ClassModels {
    models: Vec<PowerModel>,
}

impl ClassModels {
    /// Build a model per class (validating each class on the way).
    pub fn new(classes: &[NodeClass]) -> Result<Self> {
        let models = classes
            .iter()
            .map(|c| {
                c.validate()?;
                PowerModel::new(c.spec.clone())
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { models })
    }

    /// The model of one class.
    pub fn model(&self, c: ClassId) -> &PowerModel {
        &self.models[c.0]
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Columnar storage for a *mixed* fleet: one [`NodeBank`] per class, a
/// global host index mapped onto `(class, local)` slots, and per-host
/// sub-plane meter columns for classes with PP0/DRAM domains.
#[derive(Debug, Clone)]
pub struct ClassedBank {
    classes: Vec<NodeClass>,
    models: ClassModels,
    banks: Vec<NodeBank>,
    /// Global host → `(class index, local index within the class bank)`.
    assign: Vec<(usize, usize)>,
    /// Class → global host ids, in local order.
    globals: Vec<Vec<usize>>,
    /// Per-host node-level PP0 exact energy (zero for PKG-only classes).
    pp0_energy: Vec<Joules>,
    /// Per-host node-level DRAM exact energy (zero for PKG-only classes).
    dram_energy: Vec<Joules>,
}

impl ClassedBank {
    /// Build a classed bank: host `h` belongs to `membership[h]` and gets
    /// efficiency factor `eps[h]`. Hosts of one class occupy contiguous
    /// local slots in their class's bank, in global order.
    pub fn new(classes: Vec<NodeClass>, membership: &[ClassId], eps: &[f64]) -> Result<Self> {
        if classes.is_empty() {
            return Err(SimHwError::InvalidParameter(
                "a classed bank needs at least one class".into(),
            ));
        }
        if membership.len() != eps.len() {
            return Err(SimHwError::InvalidParameter(format!(
                "membership ({}) and eps ({}) lengths differ",
                membership.len(),
                eps.len()
            )));
        }
        let models = ClassModels::new(&classes)?;
        let mut per_class: Vec<Vec<Node>> = vec![Vec::new(); classes.len()];
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); classes.len()];
        let mut assign = Vec::with_capacity(membership.len());
        for (h, (&cid, &e)) in membership.iter().zip(eps).enumerate() {
            let c = cid.0;
            if c >= classes.len() {
                return Err(SimHwError::InvalidParameter(format!(
                    "host {h} assigned to unknown class {c}"
                )));
            }
            let node = Node::with_class(NodeId(h), cid, &classes[c], models.model(cid), e)?;
            assign.push((c, per_class[c].len()));
            per_class[c].push(node);
            globals[c].push(h);
        }
        let banks = per_class.into_iter().map(NodeBank::from_nodes).collect();
        let n = membership.len();
        Ok(Self {
            classes,
            models,
            banks,
            assign,
            globals,
            pp0_energy: vec![Joules::ZERO; n],
            dram_energy: vec![Joules::ZERO; n],
        })
    }

    /// Number of hosts across all classes.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True when the fleet holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The class a host belongs to.
    pub fn class_of(&self, h: usize) -> ClassId {
        ClassId(self.assign[h].0)
    }

    /// One class description.
    pub fn class(&self, c: ClassId) -> &NodeClass {
        &self.classes[c.0]
    }

    /// The per-class power models.
    pub fn models(&self) -> &ClassModels {
        &self.models
    }

    /// Global host ids of one class, in local (bank) order.
    pub fn hosts_of(&self, c: ClassId) -> &[usize] {
        &self.globals[c.0]
    }

    /// The class's underlying bank (read paths; control must go through
    /// the classed bank so the mapping stays authoritative).
    pub fn bank(&self, c: ClassId) -> &NodeBank {
        &self.banks[c.0]
    }

    fn slot(&self, h: usize) -> (usize, usize) {
        self.assign[h]
    }

    /// The host's efficiency factor ε.
    pub fn eps(&self, h: usize) -> f64 {
        let (c, l) = self.slot(h);
        self.banks[c].eps(l)
    }

    /// The host's observed health.
    pub fn health(&self, h: usize) -> NodeHealth {
        let (c, l) = self.slot(h);
        self.banks[c].health(l)
    }

    /// True unless the host is fail-stop dead.
    pub fn is_alive(&self, h: usize) -> bool {
        let (c, l) = self.slot(h);
        self.banks[c].is_alive(l)
    }

    /// The most recent lead frequency the host resolved.
    pub fn last_freq(&self, h: usize) -> Hertz {
        let (c, l) = self.slot(h);
        self.banks[c].last_freq(l)
    }

    /// The host's programmed node-level PKG limit.
    pub fn power_limit(&self, h: usize) -> Watts {
        let (c, l) = self.slot(h);
        self.banks[c].power_limit(l)
    }

    /// The PKG limit the host's enforcement loops currently hold.
    pub fn enforced_limit(&self, h: usize) -> Watts {
        let (c, l) = self.slot(h);
        self.banks[c].enforced_limit(l)
    }

    /// Cumulative exact host PKG energy.
    pub fn energy(&self, h: usize) -> Joules {
        let (c, l) = self.slot(h);
        self.banks[c].energy(l)
    }

    /// The operating point the host settles on right now, resolved against
    /// its own class's power model.
    pub fn operating_point<L: LoadModel + ?Sized>(&self, h: usize, load: &L) -> OperatingPoint {
        let (c, l) = self.slot(h);
        self.banks[c].operating_point(l, self.models.model(ClassId(c)), load)
    }

    /// Program a node-level PKG power limit.
    pub fn set_power_limit(&mut self, h: usize, limit: Watts) -> Result<()> {
        let (c, l) = self.slot(h);
        self.banks[c].set_power_limit(l, limit)
    }

    /// Program or release a frequency cap.
    pub fn set_freq_cap(&mut self, h: usize, cap: Option<Hertz>) -> Result<()> {
        let (c, l) = self.slot(h);
        self.banks[c].set_freq_cap(l, cap)
    }

    /// Apply an injected fault.
    pub fn inject(&mut self, h: usize, kind: FaultKind) {
        let (c, l) = self.slot(h);
        self.banks[c].inject(l, kind);
    }

    /// Mark the host suspect.
    pub fn mark_suspect(&mut self, h: usize) {
        let (c, l) = self.slot(h);
        self.banks[c].mark_suspect(l);
    }

    /// Clear a suspect marking (dead hosts stay dead).
    pub fn mark_healthy(&mut self, h: usize) {
        let (c, l) = self.slot(h);
        self.banks[c].mark_healthy(l);
    }

    /// Program a node-level sub-plane limit, routed through the backing
    /// node's MSR devices (allowlist, clamp, stuck-latch semantics all
    /// apply). Returns the watts actually programmed.
    pub fn set_domain_limit(&mut self, h: usize, d: RaplDomain, limit: Watts) -> Result<Watts> {
        let (c, l) = self.slot(h);
        self.banks[c].with_node(l, |n| n.set_domain_limit(d, limit))
    }

    /// Pin one sub-plane's limit on a host (stuck-RAPL confined to a single
    /// domain).
    pub fn inject_domain_stuck(&mut self, h: usize, d: RaplDomain, pinned: Watts) -> Result<()> {
        let (c, l) = self.slot(h);
        self.banks[c].with_node(l, |n| n.inject_domain_stuck(d, pinned))
    }

    /// Cumulative node-level energy of one domain. PKG reads the bank's
    /// columns; PP0/DRAM read the classed meter columns (an error for a
    /// PKG-only class, mirroring the per-package contract).
    pub fn domain_energy(&self, h: usize, d: RaplDomain) -> Result<Joules> {
        match d {
            RaplDomain::Pkg => Ok(self.energy(h)),
            RaplDomain::Pp0 | RaplDomain::Dram => {
                let (c, _) = self.slot(h);
                if self.classes[c].domains.is_none() {
                    return Err(SimHwError::InvalidParameter(format!(
                        "domain {} not enabled on class {}",
                        d, self.classes[c].name
                    )));
                }
                Ok(match d {
                    RaplDomain::Pp0 => self.pp0_energy[h],
                    _ => self.dram_energy[h],
                })
            }
        }
    }

    /// Advance every host with an operating point by `dt` (global host
    /// indexing: `ops[h]`/`results[h]`). Each class's bank steps its own
    /// contiguous columns, so settled segments of one class replay/skip
    /// independently of churn in another. Returns `true` when every
    /// stepped enforcement filter was already at its bitwise fixed point.
    pub fn step_all(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
    ) -> bool {
        self.step_classes(dt, ops, results, parallel, false)
            .all_settled
    }

    /// Like [`ClassedBank::step_all`] but with per-segment replay enabled,
    /// merging the per-class [`StepReport`]s.
    pub fn step_all_partial(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
    ) -> StepReport {
        self.step_classes(dt, ops, results, parallel, true)
    }

    fn step_classes(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
        partial: bool,
    ) -> StepReport {
        let n = self.assign.len();
        assert_eq!(ops.len(), n, "one operating point slot per host");
        assert_eq!(results.len(), n, "one result slot per host");
        let mut report = StepReport {
            all_settled: true,
            segments_replayed: 0,
            segments_stepped: 0,
        };
        for (c, bank) in self.banks.iter_mut().enumerate() {
            if bank.is_empty() {
                continue;
            }
            let globals = &self.globals[c];
            let local_ops: Vec<Option<OperatingPoint>> = globals.iter().map(|&g| ops[g]).collect();
            let mut local_results = vec![HostStep::Skipped; globals.len()];
            let r = if partial {
                bank.step_all_partial(dt, &local_ops, &mut local_results, parallel)
            } else {
                let settled = bank.step_all(dt, &local_ops, &mut local_results, parallel);
                StepReport {
                    all_settled: settled,
                    segments_replayed: 0,
                    segments_stepped: bank.num_segments(),
                }
            };
            report.all_settled &= r.all_settled;
            report.segments_replayed += r.segments_replayed;
            report.segments_stepped += r.segments_stepped;
            for (&g, &res) in globals.iter().zip(&local_results) {
                results[g] = res;
            }
            // Advance the sub-plane meters from the same per-host powers
            // the bank just accumulated: PP0 draws its fraction of node
            // power, DRAM draws its per-package power while the node is
            // live — node-level, matching the per-package arithmetic
            // summed over sockets.
            if let Some(cfg) = self.classes[c].domains {
                let sockets = bank.sockets() as f64;
                for &g in globals {
                    let Some(op) = ops[g] else { continue };
                    crate::rapl::DOMAIN_ADVANCED.inc();
                    self.pp0_energy[g] += op.power * cfg.pp0_fraction * dt;
                    if op.power.value() > 0.0 {
                        self.dram_energy[g] += cfg.dram_power * sockets * dt;
                    }
                }
            }
        }
        report
    }

    /// Fast-forward energy accumulation per class, delegating to each
    /// bank's [`NodeBank::replay_energy`] with the class's slice of
    /// `deltas` (per-package energy per host, global indexing), and
    /// advancing the sub-plane meters by the same number of iterations'
    /// worth of node-level draw (`node_powers[h] * dt` split by the class
    /// split).
    pub fn replay_energy(&mut self, deltas: &[Joules], node_powers: &[Watts], dt: Seconds) {
        debug_assert_eq!(deltas.len(), self.assign.len());
        debug_assert_eq!(node_powers.len(), self.assign.len());
        for (c, bank) in self.banks.iter_mut().enumerate() {
            if bank.is_empty() {
                continue;
            }
            let globals = &self.globals[c];
            let local: Vec<Joules> = globals.iter().map(|&g| deltas[g]).collect();
            bank.replay_energy(&local);
            if let Some(cfg) = self.classes[c].domains {
                let sockets = bank.sockets() as f64;
                for &g in globals {
                    if !bank.is_alive(self.assign[g].1) {
                        continue;
                    }
                    let p = node_powers[g];
                    self.pp0_energy[g] += p * cfg.pp0_fraction * dt;
                    if p.value() > 0.0 {
                        self.dram_energy[g] += cfg.dram_power * sockets * dt;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::CoreClass;

    struct FlatLoad {
        kappa: f64,
    }

    impl LoadModel for FlatLoad {
        fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
            model.node_power(
                eps,
                &[CoreClass {
                    count: model.spec().cores_used_per_node,
                    kappa: self.kappa,
                    freq: lead,
                }],
            )
        }
    }

    fn mixed_fleet() -> ClassedBank {
        let classes = standard_classes();
        // Interleave classes so local/global mapping is non-trivial.
        let membership: Vec<ClassId> = (0..9).map(|h| ClassId(h % 3)).collect();
        let eps: Vec<f64> = (0..9).map(|h| 0.95 + 0.01 * h as f64).collect();
        ClassedBank::new(classes, &membership, &eps).unwrap()
    }

    #[test]
    fn standard_classes_validate() {
        for c in standard_classes() {
            c.validate().unwrap();
        }
    }

    #[test]
    fn mixed_fleet_maps_hosts_to_class_banks() {
        let bank = mixed_fleet();
        assert_eq!(bank.len(), 9);
        assert_eq!(bank.num_classes(), 3);
        for h in 0..9 {
            assert_eq!(bank.class_of(h), ClassId(h % 3));
        }
        for c in 0..3 {
            assert_eq!(bank.hosts_of(ClassId(c)), &[c, c + 3, c + 6]);
            assert_eq!(bank.bank(ClassId(c)).len(), 3);
        }
        // Per-class TDPs differ: the classes really are different parts.
        assert_ne!(
            bank.class(ClassId(0)).spec.tdp_per_node(),
            bank.class(ClassId(2)).spec.tdp_per_node()
        );
    }

    #[test]
    fn stepping_accumulates_domain_meters() {
        let mut bank = mixed_fleet();
        let load = FlatLoad { kappa: 2.5 };
        let n = bank.len();
        let mut results = vec![HostStep::Skipped; n];
        for _ in 0..10 {
            let ops: Vec<_> = (0..n)
                .map(|h| Some(bank.operating_point(h, &load)))
                .collect();
            bank.step_all(Seconds(0.2), &ops, &mut results, false);
        }
        for h in 0..n {
            let pkg = bank.domain_energy(h, RaplDomain::Pkg).unwrap();
            let pp0 = bank.domain_energy(h, RaplDomain::Pp0).unwrap();
            let dram = bank.domain_energy(h, RaplDomain::Dram).unwrap();
            assert!(pkg > Joules::ZERO);
            assert!(pp0 > Joules::ZERO && pp0 < pkg, "PP0 below PKG on host {h}");
            assert!(dram > Joules::ZERO);
            let frac = bank.class(bank.class_of(h)).domains.unwrap().pp0_fraction;
            assert!(
                (pp0.value() / pkg.value() - frac).abs() < 1e-9,
                "PP0 meter tracks the class split on host {h}"
            );
        }
    }

    #[test]
    fn domain_limits_route_through_the_backing_node() {
        let mut bank = mixed_fleet();
        let programmed = bank
            .set_domain_limit(0, RaplDomain::Pp0, Watts(100.0))
            .unwrap();
        assert!(programmed > Watts(0.0));
        // A stuck PP0 plane silently latches while DRAM stays live (host 2
        // is stout: single socket, PP0 range ≈ [40.6, 81.9] W, so 60 W pins
        // exactly).
        bank.inject_domain_stuck(2, RaplDomain::Pp0, Watts(60.0))
            .unwrap();
        let latched = bank
            .set_domain_limit(2, RaplDomain::Pp0, Watts(80.0))
            .unwrap();
        assert_eq!(latched, Watts(60.0));
        let dram = bank
            .set_domain_limit(2, RaplDomain::Dram, Watts(12.0))
            .unwrap();
        assert!((dram.value() - 12.0).abs() < 0.3);
    }

    #[test]
    fn dead_hosts_stop_metering() {
        let mut bank = mixed_fleet();
        let load = FlatLoad { kappa: 2.5 };
        let n = bank.len();
        let mut results = vec![HostStep::Skipped; n];
        bank.inject(4, FaultKind::NodeDeath);
        assert!(!bank.is_alive(4));
        let ops: Vec<_> = (0..n)
            .map(|h| bank.is_alive(h).then(|| bank.operating_point(h, &load)))
            .collect();
        bank.step_all(Seconds(0.2), &ops, &mut results, false);
        assert_eq!(results[4], HostStep::Skipped);
        assert_eq!(
            bank.domain_energy(4, RaplDomain::Pp0).unwrap(),
            Joules::ZERO
        );
        assert!(bank.domain_energy(3, RaplDomain::Pp0).unwrap() > Joules::ZERO);
    }

    #[test]
    fn pkg_only_class_rejects_domain_reads() {
        let classes = vec![NodeClass::pkg_only("plain", crate::quartz::quartz_spec())];
        let membership = vec![ClassId(0); 2];
        let bank = ClassedBank::new(classes, &membership, &[1.0, 1.0]).unwrap();
        assert!(bank.domain_energy(0, RaplDomain::Pkg).is_ok());
        assert!(bank.domain_energy(0, RaplDomain::Pp0).is_err());
        assert!(bank.domain_energy(0, RaplDomain::Dram).is_err());
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let classes = standard_classes();
        assert!(ClassedBank::new(vec![], &[], &[]).is_err());
        assert!(ClassedBank::new(classes.clone(), &[ClassId(7)], &[1.0]).is_err());
        assert!(ClassedBank::new(classes, &[ClassId(0)], &[]).is_err());
    }
}
