//! Simulated model-specific registers with an `msr-safe` style allowlist.
//!
//! The paper's testbed exposes power knobs through the msr-safe Linux kernel
//! module, which mediates userspace MSR access with per-register read/write
//! masks. This module reproduces that contract: every access is checked
//! against an allowlist, and writes may only touch writable bits.

use crate::error::{Result, SimHwError};
use std::collections::HashMap;

/// Intel MSR addresses used by the stack (subset relevant to RAPL/p-states).
pub mod address {
    /// `MSR_RAPL_POWER_UNIT`: units for power/energy/time fields.
    pub const RAPL_POWER_UNIT: u32 = 0x606;
    /// `MSR_PKG_POWER_LIMIT`: package power limit control (PL1/PL2).
    pub const PKG_POWER_LIMIT: u32 = 0x610;
    /// `MSR_PKG_ENERGY_STATUS`: 32-bit package energy counter.
    pub const PKG_ENERGY_STATUS: u32 = 0x611;
    /// `MSR_PKG_POWER_INFO`: TDP and min/max settable power.
    pub const PKG_POWER_INFO: u32 = 0x614;
    /// `MSR_PP0_POWER_LIMIT`: power-plane-0 (cores) limit control.
    pub const PP0_POWER_LIMIT: u32 = 0x638;
    /// `MSR_PP0_ENERGY_STATUS`: 32-bit core-plane energy counter.
    pub const PP0_ENERGY_STATUS: u32 = 0x639;
    /// `MSR_DRAM_POWER_LIMIT`: DRAM-domain limit control.
    pub const DRAM_POWER_LIMIT: u32 = 0x618;
    /// `MSR_DRAM_ENERGY_STATUS`: 32-bit DRAM-domain energy counter.
    pub const DRAM_ENERGY_STATUS: u32 = 0x619;
    /// `IA32_PERF_STATUS`: current p-state readback.
    pub const PERF_STATUS: u32 = 0x198;
    /// `IA32_PERF_CTL`: requested p-state.
    pub const PERF_CTL: u32 = 0x199;
}

/// One allowlist entry: which bits may be read and which may be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsrPermission {
    /// Bits readable through the device.
    pub read_mask: u64,
    /// Bits writable through the device.
    pub write_mask: u64,
}

impl MsrPermission {
    /// Fully readable, not writable.
    pub const READ_ONLY: Self = Self {
        read_mask: u64::MAX,
        write_mask: 0,
    };

    /// Fully readable and writable.
    pub const READ_WRITE: Self = Self {
        read_mask: u64::MAX,
        write_mask: u64::MAX,
    };
}

/// A simulated per-package MSR device.
///
/// Registers hold raw `u64` values; semantics (encodings, counters) live in
/// [`crate::rapl`].
#[derive(Debug, Clone)]
pub struct MsrDevice {
    registers: HashMap<u32, u64>,
    allowlist: HashMap<u32, MsrPermission>,
}

impl MsrDevice {
    /// An empty device with no allowlisted registers.
    pub fn new() -> Self {
        Self {
            registers: HashMap::new(),
            allowlist: HashMap::new(),
        }
    }

    /// A device with the default RAPL/p-state allowlist used on the
    /// paper's testbed.
    pub fn with_default_allowlist() -> Self {
        let mut dev = Self::new();
        dev.allow(address::RAPL_POWER_UNIT, MsrPermission::READ_ONLY);
        dev.allow(
            address::PKG_POWER_LIMIT,
            MsrPermission {
                read_mask: u64::MAX,
                // PL1+PL2 fields, enable/clamp bits and time windows are
                // writable; the lock bit (63) is not.
                write_mask: 0x00FF_FFFF_00FF_FFFF,
            },
        );
        dev.allow(address::PKG_ENERGY_STATUS, MsrPermission::READ_ONLY);
        dev.allow(address::PKG_POWER_INFO, MsrPermission::READ_ONLY);
        // Sub-domain planes carry a single 24-bit limit field each (limit,
        // enable, clamp, window); the lock bit (31) is not writable.
        dev.allow(
            address::PP0_POWER_LIMIT,
            MsrPermission {
                read_mask: u64::MAX,
                write_mask: 0x00FF_FFFF,
            },
        );
        dev.allow(address::PP0_ENERGY_STATUS, MsrPermission::READ_ONLY);
        dev.allow(
            address::DRAM_POWER_LIMIT,
            MsrPermission {
                read_mask: u64::MAX,
                write_mask: 0x00FF_FFFF,
            },
        );
        dev.allow(address::DRAM_ENERGY_STATUS, MsrPermission::READ_ONLY);
        dev.allow(address::PERF_STATUS, MsrPermission::READ_ONLY);
        dev.allow(address::PERF_CTL, MsrPermission::READ_WRITE);
        dev
    }

    /// Add (or replace) an allowlist entry.
    pub fn allow(&mut self, addr: u32, perm: MsrPermission) {
        self.allowlist.insert(addr, perm);
    }

    /// Read an MSR through the allowlist. Unknown or unreadable registers
    /// fault, as with msr-safe.
    pub fn read(&self, addr: u32) -> Result<u64> {
        let perm = self.allowlist.get(&addr).ok_or(SimHwError::MsrNotAllowed {
            address: addr,
            write: false,
        })?;
        let raw = self.registers.get(&addr).copied().unwrap_or(0);
        Ok(raw & perm.read_mask)
    }

    /// Write an MSR through the allowlist, enforcing the write mask.
    ///
    /// A write is rejected outright if it would *change* read-only bits;
    /// writing the current value of a read-only bit is permitted (this is
    /// how real tooling writes back read-modify-write patterns).
    pub fn write(&mut self, addr: u32, value: u64) -> Result<()> {
        let perm = self.allowlist.get(&addr).ok_or(SimHwError::MsrNotAllowed {
            address: addr,
            write: true,
        })?;
        if perm.write_mask == 0 {
            return Err(SimHwError::MsrNotAllowed {
                address: addr,
                write: true,
            });
        }
        let current = self.registers.get(&addr).copied().unwrap_or(0);
        let changed = current ^ value;
        let offending = changed & !perm.write_mask;
        if offending != 0 {
            return Err(SimHwError::MsrReadOnlyBits {
                address: addr,
                offending,
            });
        }
        self.registers.insert(addr, value);
        Ok(())
    }

    /// Backdoor write used by the *hardware model itself* (e.g. energy
    /// counter updates). Not subject to the allowlist, like silicon updating
    /// its own registers.
    pub(crate) fn hw_store(&mut self, addr: u32, value: u64) {
        self.registers.insert(addr, value);
    }

    /// Backdoor read for the hardware model.
    pub(crate) fn hw_load(&self, addr: u32) -> u64 {
        self.registers.get(&addr).copied().unwrap_or(0)
    }
}

impl Default for MsrDevice {
    fn default() -> Self {
        Self::with_default_allowlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_register_faults() {
        let dev = MsrDevice::with_default_allowlist();
        let err = dev.read(0xDEAD).unwrap_err();
        assert!(matches!(
            err,
            SimHwError::MsrNotAllowed {
                address: 0xDEAD,
                write: false
            }
        ));
    }

    #[test]
    fn read_only_register_rejects_writes() {
        let mut dev = MsrDevice::with_default_allowlist();
        let err = dev.write(address::PKG_ENERGY_STATUS, 1).unwrap_err();
        assert!(matches!(err, SimHwError::MsrNotAllowed { write: true, .. }));
    }

    #[test]
    fn lock_bit_is_not_writable() {
        let mut dev = MsrDevice::with_default_allowlist();
        // Setting the lock bit (63) must be rejected.
        let err = dev.write(address::PKG_POWER_LIMIT, 1 << 63).unwrap_err();
        assert!(matches!(err, SimHwError::MsrReadOnlyBits { .. }));
        // Writing only PL fields is fine.
        dev.write(address::PKG_POWER_LIMIT, 0x0001_83D0).unwrap();
        assert_eq!(dev.read(address::PKG_POWER_LIMIT).unwrap(), 0x0001_83D0);
    }

    #[test]
    fn rewriting_existing_read_only_bits_is_tolerated() {
        let mut dev = MsrDevice::with_default_allowlist();
        dev.hw_store(address::PKG_POWER_LIMIT, 1 << 63);
        // Read-modify-write that preserves the lock bit must succeed.
        let v = dev.hw_load(address::PKG_POWER_LIMIT) | 0x50;
        dev.write(address::PKG_POWER_LIMIT, v).unwrap();
        assert_eq!(
            dev.read(address::PKG_POWER_LIMIT).unwrap(),
            (1 << 63) | 0x50
        );
    }

    #[test]
    fn hw_backdoor_bypasses_allowlist() {
        let mut dev = MsrDevice::with_default_allowlist();
        dev.hw_store(address::PKG_ENERGY_STATUS, 42);
        assert_eq!(dev.read(address::PKG_ENERGY_STATUS).unwrap(), 42);
    }

    #[test]
    fn unallowlisted_device_is_fully_opaque() {
        let dev = MsrDevice::new();
        assert!(dev.read(address::RAPL_POWER_UNIT).is_err());
    }
}
