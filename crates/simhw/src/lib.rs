//! # pmstack-simhw — simulated HPC hardware substrate
//!
//! This crate stands in for the hardware layer the paper's evaluation ran on:
//! Intel Xeon E5-2695 v4 ("Broadwell") nodes of the LLNL Quartz cluster, with
//! power capping exposed through RAPL MSRs via the `msr-safe` kernel module.
//!
//! It provides:
//!
//! * [`units`] — strongly-typed physical quantities (watts, joules, hertz, …).
//! * [`msr`] — a simulated model-specific-register device with an
//!   `msr-safe`-style allowlist.
//! * [`rapl`] — RAPL package-domain semantics on top of the MSR device:
//!   unit registers, power-limit encoding, energy-status counter with
//!   32-bit wraparound, and a running-average limit-enforcement filter.
//! * [`pstate`] — the discrete frequency ladder (p-states) of the part.
//! * [`power`] — the socket/node power model `P(f, activity)` used
//!   throughout the stack.
//! * [`variation`] — seeded manufacturing-variation sampling that reproduces
//!   the tri-modal achieved-frequency distribution of Fig. 6.
//! * [`node`] / [`cluster`] — node and cluster state containers, including
//!   the frequency solver that emulates the package control unit (PCU)
//!   picking the highest p-state that fits the active power limit.
//! * [`quartz`] — the Table I machine description as compile-time constants.
//!
//! Nothing in this crate knows about workloads; workload-dependent activity
//! enters through the [`power::LoadModel`] trait implemented by
//! `pmstack-kernel`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod classes;
pub mod clock;
pub mod cluster;
pub mod error;
pub mod faults;
pub mod machines;
pub mod msr;
pub mod node;
pub mod power;
pub mod pstate;
pub mod quartz;
pub mod rapl;
pub mod units;
pub mod variation;

pub use bank::{HostStep, NodeBank, StepReport, DEFAULT_SEGMENT_HOSTS};
pub use classes::{standard_classes, ClassId, ClassModels, ClassedBank, NodeClass};
pub use clock::SimClock;
pub use cluster::{Cluster, ClusterBuilder};
pub use error::SimHwError;
pub use faults::{FaultEvent, FaultKind, FaultPlan, NodeHealth};
pub use node::{Node, NodeId, NodePowerSample};
pub use power::{CoreClass, LoadModel, MachineSpec, OperatingPoint, PowerModel};
pub use pstate::PStateLadder;
pub use quartz::quartz_spec;
pub use rapl::{DomainConfig, RaplDomain};
pub use units::{Hertz, Joules, Seconds, Watts};
pub use variation::{VariationModel, VariationProfile};
