//! Alternative machine descriptions.
//!
//! §V-A1: "Although these experiments are executed on a single Intel
//! architecture, they can be ported to other architectures (Intel and
//! non-Intel) by leveraging GEOPM's portable plugin infrastructure." The
//! stack here is machine-generic in the same way: every layer consumes a
//! [`MachineSpec`](crate::power::MachineSpec), so porting is a matter of
//! describing the part. This module provides a second, Skylake-SP-class
//! description used by the portability tests — wider vectors, more cores,
//! higher TDP, different variation envelope.

use crate::power::MachineSpec;
use crate::units::{Hertz, Watts};

/// A Skylake-SP-class dual-socket node (Xeon Gold 6148-like): 40 cores,
/// 150 W sockets, higher bandwidth, lower base clock.
pub fn skylake_sp_spec() -> MachineSpec {
    MachineSpec {
        name: "Intel Xeon Gold 6148 (Skylake-SP node)".to_string(),
        sockets_per_node: 2,
        cores_per_socket: 20,
        cores_used_per_node: 38,
        f_min: Hertz::from_ghz(1.0),
        f_base: Hertz::from_ghz(2.4),
        f_turbo: Hertz::from_ghz(2.8),
        f_step: Hertz(100e6),
        tdp_per_socket: Watts(150.0),
        min_rapl_per_socket: Watts(75.0),
        alpha: 2.4,
        uncore_per_socket: Watts(20.0),
        leak_per_core: Watts(1.0),
        dram_bw_bytes_per_s: 200e9,
        poll_freq_floor: Hertz::from_ghz(2.5),
    }
}

/// A dense single-socket throughput node (Xeon D-2183IT-like): 16 cores,
/// 105 W, low clocks — the "efficiency" class of a mixed fleet.
pub fn stout_spec() -> MachineSpec {
    MachineSpec {
        name: "Intel Xeon D-2183IT (Stout node)".to_string(),
        sockets_per_node: 1,
        cores_per_socket: 16,
        cores_used_per_node: 15,
        f_min: Hertz::from_ghz(1.0),
        f_base: Hertz::from_ghz(2.0),
        f_turbo: Hertz::from_ghz(2.4),
        f_step: Hertz(100e6),
        tdp_per_socket: Watts(105.0),
        min_rapl_per_socket: Watts(52.0),
        alpha: 2.2,
        uncore_per_socket: Watts(12.0),
        leak_per_core: Watts(0.8),
        dram_bw_bytes_per_s: 90e9,
        poll_freq_floor: Hertz::from_ghz(2.2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stout_spec_is_valid() {
        stout_spec().validate().unwrap();
        let s = stout_spec();
        assert_eq!(s.tdp_per_node(), Watts(105.0));
        assert_eq!(s.min_rapl_per_node(), Watts(52.0));
        assert!(s.pstates().len() > 10);
    }

    #[test]
    fn skylake_spec_is_valid() {
        skylake_sp_spec().validate().unwrap();
        let s = skylake_sp_spec();
        assert_eq!(s.tdp_per_node(), Watts(300.0));
        assert_eq!(s.min_rapl_per_node(), Watts(150.0));
        assert!(s.pstates().len() > 10);
    }

    #[test]
    fn specs_are_actually_different_parts() {
        let quartz = crate::quartz::quartz_spec();
        let skl = skylake_sp_spec();
        assert_ne!(quartz.tdp_per_socket, skl.tdp_per_socket);
        assert_ne!(quartz.cores_per_socket, skl.cores_per_socket);
        assert_ne!(quartz.f_base, skl.f_base);
    }
}
