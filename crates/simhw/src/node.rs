//! A compute node: two RAPL packages, a variation factor, and the PCU
//! frequency-resolution logic.

use crate::classes::{ClassId, NodeClass};
use crate::error::{Result, SimHwError};
use crate::faults::{FaultKind, NodeHealth};
use crate::power::{LoadModel, PowerModel};
use crate::rapl::{PowerLimit, RaplDomain, RaplPackage};
use crate::units::{Hertz, Joules, Seconds, Watts};
use pmstack_obs::{EventKind, StaticCounter};
use serde::{Deserialize, Serialize};

/// Observability: limit writes where the applied per-socket value differed
/// from the request (range clamp or stuck-RAPL latch).
static RAPL_CLAMPED: StaticCounter = StaticCounter::new("simhw.rapl.clamped");
/// Observability: faults fired against nodes (any kind).
static FAULTS_INJECTED: StaticCounter = StaticCounter::new("simhw.faults.injected");

/// Identifier of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{:04}", self.0)
    }
}

/// An instantaneous sample of a node's power state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePowerSample {
    /// Instantaneous node power draw.
    pub power: Watts,
    /// Cumulative node energy since construction.
    pub energy: Joules,
    /// Current lead (critical-core) frequency.
    pub freq: Hertz,
}

/// One simulated node.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    eps: f64,
    packages: Vec<RaplPackage>,
    last_freq: Hertz,
    /// Software frequency cap programmed through `IA32_PERF_CTL`
    /// (`None` = uncapped). The DVFS control path of EAR-style tools.
    freq_cap: Option<Hertz>,
    /// Observed health; faults move this away from `Healthy`.
    health: NodeHealth,
    /// When set, RAPL limit writes silently latch this node-level value
    /// instead of the requested one (stuck-limit erratum).
    stuck_limit: Option<Watts>,
    /// Remaining telemetry-read attempts that fail while the node keeps
    /// executing underneath.
    telemetry_down_for: u32,
    /// One-shot msr-safe denial consumed by the next MSR access.
    msr_glitch: bool,
    /// The node class this node was built from (`ClassId(0)` for the
    /// classic homogeneous constructor).
    class_id: ClassId,
}

impl Node {
    /// Construct a node with efficiency factor `eps` from a machine spec.
    pub fn new(id: NodeId, model: &PowerModel, eps: f64) -> Result<Self> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(SimHwError::InvalidParameter(format!(
                "node efficiency factor must be positive, got {eps}"
            )));
        }
        let spec = model.spec();
        let packages = (0..spec.sockets_per_node)
            .map(|_| {
                RaplPackage::new(
                    spec.tdp_per_socket,
                    spec.min_rapl_per_socket,
                    // RAPL allows programming somewhat above TDP; we cap the
                    // settable range at TDP since the policies never exceed it.
                    spec.tdp_per_socket,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            id,
            eps,
            packages,
            last_freq: spec.f_turbo,
            freq_cap: None,
            health: NodeHealth::Healthy,
            stuck_limit: None,
            telemetry_down_for: 0,
            msr_glitch: false,
            class_id: ClassId(0),
        })
    }

    /// Construct a node of a specific [`NodeClass`]: the classic
    /// construction against the class's machine spec, plus PP0/DRAM
    /// sub-domains on every package when the class declares a domain split.
    /// `model` must be the power model built from `class.spec`.
    pub fn with_class(
        id: NodeId,
        class_id: ClassId,
        class: &NodeClass,
        model: &PowerModel,
        eps: f64,
    ) -> Result<Self> {
        debug_assert_eq!(
            model.spec().name,
            class.spec.name,
            "model must be built from the class's spec"
        );
        let mut node = Self::new(id, model, eps)?;
        node.class_id = class_id;
        if let Some(cfg) = class.domains {
            for pkg in &mut node.packages {
                pkg.enable_domains(cfg)?;
            }
        }
        Ok(node)
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The class this node belongs to.
    pub fn class_id(&self) -> ClassId {
        self.class_id
    }

    /// Whether the node's packages carry PP0/DRAM sub-domains.
    pub fn has_domains(&self) -> bool {
        self.packages.iter().any(|p| p.has_domains())
    }

    /// Program a node-level sub-plane limit by splitting it evenly across
    /// sockets; each package clamps into its plane range (and a stuck plane
    /// silently latches). Returns the node-level watts actually programmed.
    /// Shares the package path's fault surface: dead nodes fail, a pending
    /// transient MSR fault is consumed as a one-shot denial.
    pub fn set_domain_limit(&mut self, d: RaplDomain, node_limit: Watts) -> Result<Watts> {
        if self.health == NodeHealth::Dead {
            return Err(SimHwError::NodeFailed(self.id.0));
        }
        if std::mem::take(&mut self.msr_glitch) {
            return Err(SimHwError::MsrNotAllowed {
                address: crate::msr::address::PP0_POWER_LIMIT,
                write: true,
            });
        }
        let per_socket = node_limit / self.packages.len() as f64;
        let mut programmed = Watts::ZERO;
        for pkg in &mut self.packages {
            programmed += pkg.set_domain_limit(d, per_socket)?;
        }
        Ok(programmed)
    }

    /// Cumulative node-level energy of one domain (sum over sockets).
    pub fn domain_energy(&self, d: RaplDomain) -> Result<Joules> {
        let mut total = Joules::ZERO;
        for pkg in &self.packages {
            total += pkg.domain_energy(d)?;
        }
        Ok(total)
    }

    /// Node-level enforced limit of one domain (sum over sockets).
    pub fn domain_enforced(&self, d: RaplDomain) -> Result<Watts> {
        let mut total = Watts::ZERO;
        for pkg in &self.packages {
            total += pkg.domain_enforced(d)?;
        }
        Ok(total)
    }

    /// Pin one sub-plane's limit on every socket (stuck-RAPL confined to a
    /// single domain; sibling planes stay live).
    pub fn inject_domain_stuck(&mut self, d: RaplDomain, node_pinned: Watts) -> Result<()> {
        let per_socket = node_pinned / self.packages.len() as f64;
        for pkg in &mut self.packages {
            pkg.inject_domain_stuck(d, per_socket)?;
        }
        Ok(())
    }

    /// The node's efficiency factor ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The RAPL packages (one per socket).
    pub fn packages(&self) -> &[RaplPackage] {
        &self.packages
    }

    /// Mutable package access for the columnar bank's hot-state flush.
    pub(crate) fn packages_mut(&mut self) -> &mut [RaplPackage] {
        &mut self.packages
    }

    /// Hot node-level flags mirrored by the columnar bank:
    /// `(last_freq, telemetry_down_for, msr_glitch)`.
    pub(crate) fn hot_flags(&self) -> (Hertz, u32, bool) {
        (self.last_freq, self.telemetry_down_for, self.msr_glitch)
    }

    /// Restore the hot node-level flags from the columnar bank.
    pub(crate) fn set_hot_flags(
        &mut self,
        last_freq: Hertz,
        telemetry_down_for: u32,
        glitch: bool,
    ) {
        self.last_freq = last_freq;
        self.telemetry_down_for = telemetry_down_for;
        self.msr_glitch = glitch;
    }

    /// Program a node-level power limit by splitting it evenly across
    /// sockets, clamped into each package's settable range. This is what the
    /// job runtime's platform layer does on the real system.
    ///
    /// Fault behaviour: a dead node returns [`SimHwError::NodeFailed`]; a
    /// pending transient MSR fault is consumed and surfaces as a one-shot
    /// `msr-safe` denial; a stuck-RAPL node *silently* latches the pinned
    /// value instead of the requested one and reports success — exactly the
    /// failure that makes read-back verification necessary.
    pub fn set_power_limit(&mut self, node_limit: Watts) -> Result<()> {
        if self.health == NodeHealth::Dead {
            return Err(SimHwError::NodeFailed(self.id.0));
        }
        if std::mem::take(&mut self.msr_glitch) {
            return Err(SimHwError::MsrNotAllowed {
                address: crate::msr::address::PKG_POWER_LIMIT,
                write: true,
            });
        }
        let requested = node_limit;
        let node_limit = self.stuck_limit.unwrap_or(node_limit);
        let raw = node_limit / self.packages.len() as f64;
        let per_socket = raw.clamp(self.packages[0].min_limit(), self.packages[0].max_limit());
        if pmstack_obs::enabled() && (self.stuck_limit.is_some() || per_socket != raw) {
            RAPL_CLAMPED.inc();
            pmstack_obs::event(
                f64::NAN,
                EventKind::RaplClamp {
                    node: self.id.0 as u64,
                    requested_w: requested.0,
                    applied_w: (per_socket * self.packages.len() as f64).0,
                },
            );
        }
        for pkg in &mut self.packages {
            pkg.set_limit(PowerLimit {
                limit: per_socket,
                enabled: true,
                clamp: true,
                time_window: Seconds(1.0),
            })?;
        }
        Ok(())
    }

    /// The programmed node-level limit (sum over sockets).
    pub fn power_limit(&self) -> Watts {
        self.packages.iter().map(|p| p.limit().limit).sum()
    }

    /// The limit the enforcement loops currently hold (sum over sockets);
    /// settles toward the programmed limit as the node advances.
    pub fn enforced_limit(&self) -> Watts {
        self.packages.iter().map(|p| p.enforced_limit()).sum()
    }

    /// Cumulative node energy (exact, simulation-side).
    pub fn energy(&self) -> Joules {
        self.packages.iter().map(|p| p.exact_energy()).sum()
    }

    /// The most recent lead frequency resolved by [`Self::resolve_frequency`].
    pub fn current_freq(&self) -> Hertz {
        self.last_freq
    }

    /// Program a frequency cap through `IA32_PERF_CTL` (the DVFS path used
    /// by frequency-scaling tools like EAR, §VII-B). The ratio field is the
    /// frequency in 100 MHz units. Pass `None` to release the cap.
    pub fn set_freq_cap(&mut self, cap: Option<Hertz>) -> Result<()> {
        if self.health == NodeHealth::Dead {
            return Err(SimHwError::NodeFailed(self.id.0));
        }
        self.freq_cap = cap;
        let raw = match cap {
            Some(f) => {
                if !f.is_valid() || f.value() <= 0.0 {
                    return Err(SimHwError::InvalidParameter(format!(
                        "frequency cap must be positive, got {f}"
                    )));
                }
                ((f.value() / 100e6).round() as u64 & 0xFF) << 8
            }
            None => 0,
        };
        for pkg in &mut self.packages {
            pkg.msrs_mut().write(crate::msr::address::PERF_CTL, raw)?;
        }
        Ok(())
    }

    /// The currently programmed frequency cap, if any.
    pub fn freq_cap(&self) -> Option<Hertz> {
        self.freq_cap
    }

    /// Apply the software frequency cap on top of a PCU-resolved operating
    /// point: DVFS clamps the whole node, so both lead and trail drop to
    /// the cap if they exceed it, and power is re-derived at the clamped
    /// lead through the workload's uniform-throttle path.
    fn clamp_to_freq_cap(
        &self,
        model: &PowerModel,
        load: &dyn LoadModel,
        op: crate::power::OperatingPoint,
    ) -> crate::power::OperatingPoint {
        match self.freq_cap {
            Some(cap_f) if op.lead > cap_f => crate::power::OperatingPoint {
                lead: cap_f,
                trail: op.trail.min(cap_f),
                power: load.node_power_at(model, self.eps, cap_f),
            },
            _ => op,
        }
    }

    /// The operating point this node settles on right now: the workload's
    /// PCU resolution under the node's *enforced* RAPL limit, clamped by
    /// any software frequency cap.
    pub fn operating_point(
        &self,
        model: &PowerModel,
        load: &dyn LoadModel,
    ) -> crate::power::OperatingPoint {
        self.clamp_to_freq_cap(
            model,
            load,
            load.operating_point(model, self.eps, self.enforced_limit()),
        )
    }

    /// Emulate the PCU: resolve the workload's operating point under `cap`
    /// and return the lead frequency. Delegates to
    /// [`LoadModel::operating_point`], which models the PCU demoting
    /// spin-polling cores before the critical path.
    pub fn resolve_frequency(
        &mut self,
        model: &PowerModel,
        load: &dyn LoadModel,
        cap: Watts,
    ) -> Hertz {
        let op = self.clamp_to_freq_cap(model, load, load.operating_point(model, self.eps, cap));
        self.last_freq = op.lead;
        op.lead
    }

    /// Advance hardware state by `dt`: resolve the operating point against
    /// the currently *enforced* limit, accumulate energy at the resulting
    /// power, settle enforcement filters. Returns the sample for this step.
    pub fn step(
        &mut self,
        model: &PowerModel,
        load: &dyn LoadModel,
        dt: Seconds,
    ) -> NodePowerSample {
        if self.health == NodeHealth::Dead {
            // A dead node draws nothing and holds its final energy counter.
            return NodePowerSample {
                power: Watts(0.0),
                energy: self.energy(),
                freq: Hertz(0.0),
            };
        }
        let cap = self.enforced_limit();
        let op = self.clamp_to_freq_cap(model, load, load.operating_point(model, self.eps, cap));
        self.last_freq = op.lead;
        let per_socket = op.power / self.packages.len() as f64;
        for pkg in &mut self.packages {
            pkg.advance(dt, per_socket);
        }
        NodePowerSample {
            power: op.power,
            energy: self.energy(),
            freq: op.lead,
        }
    }

    /// Advance hardware state by `dt` like [`Self::step`], but surface the
    /// node's fault state through the telemetry path:
    ///
    /// * dead node — [`SimHwError::NodeFailed`], nothing advances;
    /// * telemetry blackout or transient MSR fault — the hardware *does*
    ///   advance (the job keeps running and drawing power) but the read
    ///   fails with [`SimHwError::TelemetryUnavailable`].
    ///
    /// Controllers that only ever call the infallible [`Self::step`] see
    /// through blackouts — this entry point is what an out-of-band
    /// monitoring agent actually experiences.
    pub fn try_step(
        &mut self,
        model: &PowerModel,
        load: &dyn LoadModel,
        dt: Seconds,
    ) -> Result<NodePowerSample> {
        if self.health == NodeHealth::Dead {
            return Err(SimHwError::NodeFailed(self.id.0));
        }
        let sample = self.step(model, load, dt);
        if self.telemetry_down_for > 0 {
            self.telemetry_down_for -= 1;
            return Err(SimHwError::TelemetryUnavailable { node: self.id.0 });
        }
        if std::mem::take(&mut self.msr_glitch) {
            return Err(SimHwError::TelemetryUnavailable { node: self.id.0 });
        }
        Ok(sample)
    }

    /// Apply an injected fault to this node.
    pub fn inject(&mut self, kind: FaultKind) {
        FAULTS_INJECTED.inc();
        pmstack_obs::event(
            f64::NAN,
            EventKind::FaultInjected {
                host: self.id.0 as u64,
                fault: kind.name(),
            },
        );
        match kind {
            FaultKind::NodeDeath => self.health = NodeHealth::Dead,
            FaultKind::StuckRapl { pinned_w } => {
                self.stuck_limit = Some(Watts(pinned_w));
                // Latch the wrong value immediately; ignore MSR-layer
                // errors — the erratum bypasses the safe path.
                let _ = self.set_power_limit(Watts(pinned_w));
            }
            FaultKind::TelemetryDropout { iterations } => {
                self.telemetry_down_for = self.telemetry_down_for.saturating_add(iterations);
            }
            FaultKind::TransientMsrFault => self.msr_glitch = true,
        }
    }

    /// The node's observed health.
    pub fn health(&self) -> NodeHealth {
        self.health
    }

    /// True when the node is fail-stop dead.
    pub fn is_dead(&self) -> bool {
        self.health == NodeHealth::Dead
    }

    /// Mark the node suspect (telemetry gaps, transient faults) without
    /// killing it. Dead nodes stay dead.
    pub fn mark_suspect(&mut self) {
        if self.health == NodeHealth::Healthy {
            self.health = NodeHealth::Suspect;
        }
    }

    /// Clear a suspect marking after the node has behaved for a while.
    /// Dead nodes stay dead.
    pub fn mark_healthy(&mut self) {
        if self.health == NodeHealth::Suspect {
            self.health = NodeHealth::Healthy;
        }
    }

    /// The pinned limit if the node's RAPL interface is stuck.
    pub fn stuck_limit(&self) -> Option<Watts> {
        self.stuck_limit
    }

    /// True while the telemetry path is blacked out.
    pub fn telemetry_down(&self) -> bool {
        self.telemetry_down_for > 0
    }

    /// Steady-state power under `cap` (no filter dynamics): the power drawn
    /// at the operating point the PCU would settle on. Used by the fast
    /// analytic evaluation path.
    pub fn steady_power(&mut self, model: &PowerModel, load: &dyn LoadModel, cap: Watts) -> Watts {
        let op = self.clamp_to_freq_cap(model, load, load.operating_point(model, self.eps, cap));
        self.last_freq = op.lead;
        op.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::CoreClass;
    use crate::quartz::quartz_spec;

    /// A trivially simple load for node-level tests: all used cores busy at
    /// a fixed activity, lead frequency applied to every core.
    struct FlatLoad {
        kappa: f64,
    }

    impl LoadModel for FlatLoad {
        fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
            model.node_power(
                eps,
                &[CoreClass {
                    count: model.spec().cores_used_per_node,
                    kappa: self.kappa,
                    freq: lead,
                }],
            )
        }
    }

    fn setup() -> (PowerModel, Node) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let node = Node::new(NodeId(0), &model, 1.0).unwrap();
        (model, node)
    }

    #[test]
    fn uncapped_node_runs_at_turbo() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.5 };
        let f = node.resolve_frequency(&model, &load, Watts(240.0));
        assert_eq!(f, model.spec().f_turbo);
    }

    #[test]
    fn tight_cap_throttles() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.9 };
        let f_tight = node.resolve_frequency(&model, &load, Watts(140.0));
        assert!(f_tight < model.spec().f_turbo);
        assert!(f_tight >= model.spec().f_min);
        // Modeled power at the resolved state fits the cap.
        assert!(load.node_power_at(&model, 1.0, f_tight) <= Watts(140.0 + 1e-6));
    }

    #[test]
    fn inefficient_node_is_slower_under_same_cap() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let mut eff = Node::new(NodeId(1), &model, 0.94).unwrap();
        let mut ineff = Node::new(NodeId(2), &model, 1.07).unwrap();
        let load = FlatLoad { kappa: 2.9 };
        let f_eff = eff.resolve_frequency(&model, &load, Watts(140.0));
        let f_ineff = ineff.resolve_frequency(&model, &load, Watts(140.0));
        assert!(f_eff > f_ineff, "{f_eff:?} should beat {f_ineff:?}");
    }

    #[test]
    fn cap_below_floor_resolves_to_min_pstate() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.9 };
        let f = node.resolve_frequency(&model, &load, Watts(5.0));
        assert_eq!(f, model.spec().f_min);
    }

    #[test]
    fn stepping_accumulates_energy() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.5 };
        node.set_power_limit(Watts(240.0)).unwrap();
        let mut last = Joules::ZERO;
        for _ in 0..10 {
            let s = node.step(&model, &load, Seconds(0.1));
            assert!(s.energy >= last);
            last = s.energy;
        }
        // Energy ≈ power × 1 s.
        let p = load.node_power_at(&model, 1.0, node.current_freq());
        assert!((last.value() - p.value()).abs() / p.value() < 0.05);
    }

    #[test]
    fn limit_change_takes_effect_gradually() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.9 };
        node.set_power_limit(Watts(240.0)).unwrap();
        for _ in 0..30 {
            node.step(&model, &load, Seconds(0.1));
        }
        let f_before = node.current_freq();
        node.set_power_limit(Watts(150.0)).unwrap();
        // One step later the enforced limit has barely moved.
        node.step(&model, &load, Seconds(0.05));
        assert!(node.enforced_limit().value() > 200.0);
        // After many windows it has settled and the node throttled.
        for _ in 0..100 {
            node.step(&model, &load, Seconds(0.2));
        }
        assert!(node.enforced_limit().value() < 155.0);
        assert!(node.current_freq() < f_before);
    }

    #[test]
    fn freq_cap_clamps_the_operating_point() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.5 };
        node.set_freq_cap(Some(Hertz::from_ghz(1.8))).unwrap();
        let f = node.resolve_frequency(&model, &load, Watts(240.0));
        assert_eq!(f, Hertz::from_ghz(1.8));
        // The cap is visible through PERF_CTL's ratio field.
        let raw = node.packages()[0]
            .msrs()
            .read(crate::msr::address::PERF_CTL)
            .unwrap();
        assert_eq!((raw >> 8) & 0xFF, 18);
        // Releasing the cap restores turbo.
        node.set_freq_cap(None).unwrap();
        let f = node.resolve_frequency(&model, &load, Watts(240.0));
        assert_eq!(f, model.spec().f_turbo);
    }

    #[test]
    fn freq_cap_and_power_cap_compose() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.9 };
        // Power cap alone resolves ~1.8-1.9 GHz at 140 W; a looser freq cap
        // leaves the power cap binding…
        let f_power = node.resolve_frequency(&model, &load, Watts(140.0));
        node.set_freq_cap(Some(Hertz::from_ghz(2.4))).unwrap();
        assert_eq!(node.resolve_frequency(&model, &load, Watts(140.0)), f_power);
        // …while a tighter freq cap takes over.
        node.set_freq_cap(Some(Hertz::from_ghz(1.3))).unwrap();
        let f = node.resolve_frequency(&model, &load, Watts(140.0));
        assert_eq!(f, Hertz::from_ghz(1.3));
        // DVFS-clamped power is below the RAPL cap.
        assert!(load.node_power_at(&model, 1.0, f) < Watts(140.0));
    }

    #[test]
    fn invalid_freq_cap_rejected() {
        let (model, mut node) = setup();
        let _ = model;
        assert!(node.set_freq_cap(Some(Hertz(-1.0))).is_err());
        assert!(node.set_freq_cap(Some(Hertz(f64::NAN))).is_err());
    }

    #[test]
    fn invalid_eps_rejected() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        assert!(Node::new(NodeId(0), &model, 0.0).is_err());
        assert!(Node::new(NodeId(0), &model, f64::NAN).is_err());
    }

    #[test]
    fn dead_node_rejects_control_and_draws_nothing() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.5 };
        node.set_power_limit(Watts(200.0)).unwrap();
        let e_before = node.energy();
        node.inject(crate::faults::FaultKind::NodeDeath);
        assert!(node.is_dead());
        assert!(matches!(
            node.set_power_limit(Watts(180.0)),
            Err(SimHwError::NodeFailed(0))
        ));
        assert!(matches!(
            node.try_step(&model, &load, Seconds(0.1)),
            Err(SimHwError::NodeFailed(0))
        ));
        let s = node.step(&model, &load, Seconds(0.1));
        assert_eq!(s.power, Watts(0.0));
        assert_eq!(s.energy, e_before);
    }

    #[test]
    fn stuck_rapl_silently_pins_the_limit() {
        let (model, mut node) = setup();
        let _ = model;
        node.inject(crate::faults::FaultKind::StuckRapl { pinned_w: 140.0 });
        // The write "succeeds" but the programmed value is the pinned one.
        node.set_power_limit(Watts(240.0)).unwrap();
        assert_eq!(node.power_limit(), Watts(140.0));
        assert_eq!(node.stuck_limit(), Some(Watts(140.0)));
        assert!(!node.is_dead());
    }

    #[test]
    fn telemetry_dropout_fails_reads_while_hardware_advances() {
        let (model, mut node) = setup();
        let load = FlatLoad { kappa: 2.5 };
        node.set_power_limit(Watts(240.0)).unwrap();
        node.inject(crate::faults::FaultKind::TelemetryDropout { iterations: 2 });
        assert!(node.telemetry_down());
        let e0 = node.energy();
        for _ in 0..2 {
            assert!(matches!(
                node.try_step(&model, &load, Seconds(0.1)),
                Err(SimHwError::TelemetryUnavailable { node: 0 })
            ));
        }
        // Energy kept accumulating underneath the blackout…
        assert!(node.energy() > e0);
        // …and the third read succeeds.
        assert!(node.try_step(&model, &load, Seconds(0.1)).is_ok());
        assert!(!node.telemetry_down());
    }

    #[test]
    fn transient_msr_fault_denies_exactly_one_write() {
        let (model, mut node) = setup();
        let _ = model;
        node.inject(crate::faults::FaultKind::TransientMsrFault);
        assert!(matches!(
            node.set_power_limit(Watts(200.0)),
            Err(SimHwError::MsrNotAllowed { write: true, .. })
        ));
        node.set_power_limit(Watts(200.0)).unwrap();
    }

    #[test]
    fn suspect_marking_never_resurrects_the_dead() {
        let (_, mut node) = setup();
        node.mark_suspect();
        assert_eq!(node.health(), crate::faults::NodeHealth::Suspect);
        node.mark_healthy();
        assert_eq!(node.health(), crate::faults::NodeHealth::Healthy);
        node.inject(crate::faults::FaultKind::NodeDeath);
        node.mark_suspect();
        node.mark_healthy();
        assert!(node.is_dead());
    }
}
