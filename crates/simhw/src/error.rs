//! Error types for the hardware substrate.

use std::fmt;

/// Errors produced by the simulated hardware layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SimHwError {
    /// An MSR access targeted an address that is not in the device's
    /// allowlist (the `msr-safe` behaviour: unknown registers fault).
    MsrNotAllowed {
        /// The MSR address that was rejected.
        address: u32,
        /// Whether the rejected access was a write.
        write: bool,
    },
    /// A write touched bits outside the register's writable mask.
    MsrReadOnlyBits {
        /// The MSR address.
        address: u32,
        /// The offending bits (set bits were not writable).
        offending: u64,
    },
    /// A requested power limit is outside the part's settable range.
    PowerLimitOutOfRange {
        /// The requested limit in watts.
        requested_w: f64,
        /// Minimum settable limit in watts.
        min_w: f64,
        /// Maximum settable limit in watts.
        max_w: f64,
    },
    /// A node id did not exist in the cluster.
    UnknownNode(usize),
    /// The frequency solver could not bracket a solution.
    SolverFailure(String),
    /// A model parameter was invalid (negative, NaN, empty…).
    InvalidParameter(String),
    /// The node is fail-stop dead; no MSR traffic will ever succeed again.
    NodeFailed(usize),
    /// Telemetry (power/energy/frequency readings) is currently unavailable
    /// for the node; execution continues underneath and the read may
    /// succeed on a later attempt.
    TelemetryUnavailable {
        /// The node whose telemetry path is down.
        node: usize,
    },
}

impl fmt::Display for SimHwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MsrNotAllowed { address, write } => write!(
                f,
                "msr-safe denied {} of MSR {address:#x}",
                if *write { "write" } else { "read" }
            ),
            Self::MsrReadOnlyBits { address, offending } => write!(
                f,
                "write to MSR {address:#x} touches read-only bits {offending:#x}"
            ),
            Self::PowerLimitOutOfRange {
                requested_w,
                min_w,
                max_w,
            } => write!(
                f,
                "power limit {requested_w:.1} W outside settable range [{min_w:.1}, {max_w:.1}] W"
            ),
            Self::UnknownNode(id) => write!(f, "unknown node id {id}"),
            Self::SolverFailure(msg) => write!(f, "frequency solver failure: {msg}"),
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::NodeFailed(id) => write!(f, "node {id} is fail-stop dead"),
            Self::TelemetryUnavailable { node } => {
                write!(f, "telemetry unavailable for node {node}")
            }
        }
    }
}

impl std::error::Error for SimHwError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimHwError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimHwError::MsrNotAllowed {
            address: 0x610,
            write: true,
        };
        assert!(e.to_string().contains("0x610"));
        assert!(e.to_string().contains("write"));

        let e = SimHwError::PowerLimitOutOfRange {
            requested_w: 300.0,
            min_w: 68.0,
            max_w: 120.0,
        };
        assert!(e.to_string().contains("300.0"));
        assert!(e.to_string().contains("68.0"));
    }

    #[test]
    fn fault_variant_displays_name_the_node() {
        let e = SimHwError::NodeFailed(17);
        assert!(e.to_string().contains("node 17"));
        assert!(e.to_string().contains("fail-stop"));

        let e = SimHwError::TelemetryUnavailable { node: 4 };
        assert!(e.to_string().contains("telemetry"));
        assert!(e.to_string().contains("node 4"));
    }
}
