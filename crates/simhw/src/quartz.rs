//! The LLNL Quartz machine description (paper Table I) and derived
//! system-level constants.

use crate::power::MachineSpec;
use crate::units::{Hertz, Watts};

/// Cores per node (dual 18-core sockets).
pub const CORES_PER_NODE: usize = 36;
/// Cores per node used for application ranks (two reserved for system
/// services, §V-A1).
pub const CORES_USED_PER_NODE: usize = 34;
/// TDP per CPU socket (Table I).
pub const TDP_PER_SOCKET_W: f64 = 120.0;
/// Minimum settable RAPL limit per socket (Table I).
pub const MIN_RAPL_PER_SOCKET_W: f64 = 68.0;
/// Base frequency (Table I).
pub const BASE_FREQ_GHZ: f64 = 2.1;
/// All-core turbo ceiling for the E5-2695 v4 part.
pub const TURBO_FREQ_GHZ: f64 = 2.6;
/// Minimum p-state.
pub const MIN_FREQ_GHZ: f64 = 1.2;
/// Nodes per job in the paper's multi-job mixes.
pub const NODES_PER_JOB: usize = 100;
/// Jobs per workload mix (§V-B).
pub const JOBS_PER_MIX: usize = 9;
/// Total nodes in a mix experiment.
pub const NODES_PER_MIX: usize = NODES_PER_JOB * JOBS_PER_MIX;
/// Number of nodes screened for hardware variation (Fig. 6).
pub const VARIATION_SCREEN_NODES: usize = 2000;
/// Per-socket cap used for the variation screen (Fig. 6).
pub const VARIATION_SCREEN_CAP_W: f64 = 70.0;
/// Peak power rating of the full Quartz system (Fig. 1 dashed line).
pub const SYSTEM_RATED_POWER_MW: f64 = 1.35;
/// Typical average system draw observed over the year of Fig. 1.
pub const SYSTEM_TYPICAL_POWER_MW: f64 = 0.83;

/// The Quartz node description used throughout the reproduction.
///
/// Physical constants come from Table I; the power-model coefficients
/// (α, uncore, leakage, poll floor) are calibrated so that the uncapped and
/// balancer-characterized power of the synthetic kernel reproduce the
/// Fig. 4 / Fig. 5 heat maps (see DESIGN.md §4).
pub fn quartz_spec() -> MachineSpec {
    MachineSpec {
        name: "Intel Xeon E5-2695 v4 (Quartz node)".to_string(),
        sockets_per_node: 2,
        cores_per_socket: 18,
        cores_used_per_node: CORES_USED_PER_NODE,
        f_min: Hertz::from_ghz(MIN_FREQ_GHZ),
        f_base: Hertz::from_ghz(BASE_FREQ_GHZ),
        f_turbo: Hertz::from_ghz(TURBO_FREQ_GHZ),
        f_step: Hertz(100e6),
        tdp_per_socket: Watts(TDP_PER_SOCKET_W),
        min_rapl_per_socket: Watts(MIN_RAPL_PER_SOCKET_W),
        alpha: 2.4,
        uncore_per_socket: Watts(16.0),
        leak_per_core: Watts(0.9),
        dram_bw_bytes_per_s: 150e9,
        poll_freq_floor: Hertz::from_ghz(2.4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        quartz_spec().validate().unwrap();
    }

    #[test]
    fn table_1_constants() {
        let s = quartz_spec();
        assert_eq!(s.sockets_per_node * s.cores_per_socket, CORES_PER_NODE);
        assert_eq!(s.tdp_per_node(), Watts(240.0));
        assert_eq!(s.min_rapl_per_node(), Watts(136.0));
        assert!((s.f_base.ghz() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn mix_scale_matches_paper() {
        // Table III footnote: TDP of all CPUs in a mix is 216 kW.
        let total_tdp_kw = NODES_PER_MIX as f64 * quartz_spec().tdp_per_node().value() / 1e3;
        assert!((total_tdp_kw - 216.0).abs() < 1e-9);
    }
}
