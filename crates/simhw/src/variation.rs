//! Manufacturing variation across nodes.
//!
//! Under a tight power cap, process variation turns identical SKUs into
//! different-speed machines (paper §V-A2, citing Marathe et al.). The
//! paper's Fig. 6 shows the achieved frequencies of 2000 Quartz nodes under
//! a 70 W/socket limit clustering into three k-means groups
//! (n = 522 / 918 / 560). We model a node's variation as a multiplicative
//! power-efficiency factor ε (power drawn at a fixed frequency relative to
//! the nominal part) sampled from a seeded tri-modal Gaussian mixture:
//! a *less* efficient node (higher ε) achieves a *lower* frequency under the
//! same cap.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One mode of the mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationMode {
    /// Relative weight (need not be normalized).
    pub weight: f64,
    /// Mean efficiency factor ε of the mode.
    pub mean: f64,
    /// Standard deviation of the mode.
    pub sigma: f64,
}

/// A mixture-of-Gaussians variation profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationProfile {
    /// Mixture modes.
    pub modes: Vec<VariationMode>,
    /// Hard clamp applied to samples, guarding against unphysical tails.
    pub clamp: (f64, f64),
}

impl VariationProfile {
    /// The tri-modal Quartz profile calibrated against Fig. 6: mode weights
    /// follow the paper's cluster sizes (522 / 918 / 560 of 2000), with the
    /// *low-frequency* cluster being the *high-ε* (inefficient) parts.
    pub fn quartz() -> Self {
        Self {
            modes: vec![
                VariationMode {
                    weight: 522.0,
                    mean: 1.065,
                    sigma: 0.013,
                },
                VariationMode {
                    weight: 918.0,
                    mean: 1.0,
                    sigma: 0.013,
                },
                VariationMode {
                    weight: 560.0,
                    mean: 0.938,
                    sigma: 0.013,
                },
            ],
            clamp: (0.85, 1.18),
        }
    }

    /// A degenerate profile with no variation (every node nominal). Used by
    /// ablations and by tests that need determinism across nodes.
    pub fn uniform() -> Self {
        Self {
            modes: vec![VariationMode {
                weight: 1.0,
                mean: 1.0,
                sigma: 0.0,
            }],
            clamp: (1.0, 1.0),
        }
    }

    /// A unimodal profile with the same overall spread as the Quartz
    /// profile, used by the tri-modal-vs-unimodal ablation.
    pub fn unimodal(sigma: f64) -> Self {
        Self {
            modes: vec![VariationMode {
                weight: 1.0,
                mean: 1.0,
                sigma,
            }],
            clamp: (0.85, 1.18),
        }
    }

    /// Total mixture weight.
    fn total_weight(&self) -> f64 {
        self.modes.iter().map(|m| m.weight).sum()
    }
}

/// Seeded sampler over a [`VariationProfile`].
#[derive(Debug, Clone)]
pub struct VariationModel {
    profile: VariationProfile,
    rng: ChaCha8Rng,
}

impl VariationModel {
    /// A sampler with a fixed seed; equal seeds yield equal node
    /// populations, which is what makes experiments reproducible.
    pub fn new(profile: VariationProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The profile being sampled.
    pub fn profile(&self) -> &VariationProfile {
        &self.profile
    }

    /// Draw one node's efficiency factor ε.
    pub fn sample(&mut self) -> f64 {
        let total = self.profile.total_weight();
        let mut pick = self.rng.gen::<f64>() * total;
        let mode = self
            .profile
            .modes
            .iter()
            .find(|m| {
                pick -= m.weight;
                pick <= 0.0
            })
            .or(self.profile.modes.last())
            .expect("profile has at least one mode");
        let z = standard_normal(&mut self.rng);
        let eps = mode.mean + z * mode.sigma;
        eps.clamp(self.profile.clamp.0, self.profile.clamp.1)
    }

    /// Draw `n` node efficiency factors.
    pub fn sample_n(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Box–Muller standard normal draw.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = VariationModel::new(VariationProfile::quartz(), 7).sample_n(100);
        let b = VariationModel::new(VariationProfile::quartz(), 7).sample_n(100);
        let c = VariationModel::new(VariationProfile::quartz(), 8).sample_n(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_respect_clamp() {
        let samples = VariationModel::new(VariationProfile::quartz(), 1).sample_n(5000);
        let p = VariationProfile::quartz();
        assert!(samples.iter().all(|&e| e >= p.clamp.0 && e <= p.clamp.1));
    }

    #[test]
    fn mixture_weights_shape_population() {
        // Counting samples near each mode should roughly reproduce the
        // 522:918:560 weighting of the Quartz profile.
        let samples = VariationModel::new(VariationProfile::quartz(), 42).sample_n(2000);
        let near = |c: f64| samples.iter().filter(|&&e| (e - c).abs() < 0.031).count();
        let hi = near(1.065);
        let mid = near(1.0);
        let lo = near(0.938);
        assert!(
            (450..600).contains(&hi),
            "high-ε cluster size {hi} outside expectation"
        );
        assert!((800..1040).contains(&mid), "mid cluster size {mid}");
        assert!((480..650).contains(&lo), "low cluster size {lo}");
    }

    #[test]
    fn uniform_profile_is_exactly_nominal() {
        let samples = VariationModel::new(VariationProfile::uniform(), 3).sample_n(50);
        assert!(samples.iter().all(|&e| (e - 1.0).abs() < 1e-12));
    }

    #[test]
    fn mean_is_near_one() {
        let samples = VariationModel::new(VariationProfile::quartz(), 99).sample_n(4000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "population mean {mean}");
    }
}
