//! The socket/node power model and the machine description.
//!
//! Node power is modeled as
//!
//! ```text
//! P_node(f…) = n_sockets · P_uncore
//!            + ε · [ n_cores_used · P_leak  +  Σ_core  κ_core · φ(f_core) ]
//! φ(f) = (f / f_base)^α
//! ```
//!
//! where `κ_core` is a dimensionless *activity coefficient* supplied by the
//! workload layer (FMA-heavy code has high κ, memory-stalled code lower κ,
//! a spin-polling core its own κ), and `ε` is the node's manufacturing
//! variation factor. The exponent α ≈ 2.4 folds the voltage/frequency curve
//! into a single power law, a standard compact model for DVFS studies.
//!
//! Workload specifics never enter this crate: the [`LoadModel`] trait lets a
//! workload report total node power at a given *lead frequency* (the
//! frequency of the cores on the critical path); how the other core classes
//! (slack cores, polling cores) trail the lead frequency is the workload
//! model's business.

use crate::error::{Result, SimHwError};
use crate::pstate::PStateLadder;
use crate::units::{Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Static description of one machine model (Table I plus model parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable part name.
    pub name: String,
    /// CPU sockets per node.
    pub sockets_per_node: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Cores per node actually running application ranks (the paper uses 34
    /// of 36, leaving two for system services).
    pub cores_used_per_node: usize,
    /// Minimum p-state.
    pub f_min: Hertz,
    /// Base (guaranteed) frequency.
    pub f_base: Hertz,
    /// All-core turbo ceiling.
    pub f_turbo: Hertz,
    /// P-state granularity.
    pub f_step: Hertz,
    /// Thermal design power per socket.
    pub tdp_per_socket: Watts,
    /// Minimum settable RAPL limit per socket.
    pub min_rapl_per_socket: Watts,
    /// Frequency/voltage power-law exponent α.
    pub alpha: f64,
    /// Uncore power per socket (fabric, LLC, memory controller idle).
    pub uncore_per_socket: Watts,
    /// Leakage power per active core.
    pub leak_per_core: Watts,
    /// Node-level DRAM bandwidth in bytes/second.
    pub dram_bw_bytes_per_s: f64,
    /// Effective frequency floor the PCU holds for spin-polling cores when
    /// power is not scarce. Spin loops retire at high IPC and look busy to
    /// the PCU, so they are only trailed modestly below the compute cores;
    /// calibrated so balancer-characterized "needed power" reproduces the
    /// Fig. 5 bands.
    pub poll_freq_floor: Hertz,
}

impl MachineSpec {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        let check = |cond: bool, msg: &str| -> Result<()> {
            if cond {
                Ok(())
            } else {
                Err(SimHwError::InvalidParameter(msg.to_string()))
            }
        };
        check(self.sockets_per_node > 0, "sockets_per_node must be > 0")?;
        check(self.cores_per_socket > 0, "cores_per_socket must be > 0")?;
        check(
            self.cores_used_per_node <= self.sockets_per_node * self.cores_per_socket,
            "cores_used_per_node exceeds physical cores",
        )?;
        check(
            self.f_min <= self.f_base && self.f_base <= self.f_turbo,
            "frequency ordering must be f_min <= f_base <= f_turbo",
        )?;
        check(
            self.min_rapl_per_socket <= self.tdp_per_socket,
            "min RAPL limit must not exceed TDP",
        )?;
        check(self.alpha > 1.0, "alpha must exceed 1")?;
        check(
            self.dram_bw_bytes_per_s > 0.0,
            "dram bandwidth must be positive",
        )?;
        Ok(())
    }

    /// TDP for a whole node.
    pub fn tdp_per_node(&self) -> Watts {
        self.tdp_per_socket * self.sockets_per_node as f64
    }

    /// Minimum settable RAPL limit for a whole node.
    pub fn min_rapl_per_node(&self) -> Watts {
        self.min_rapl_per_socket * self.sockets_per_node as f64
    }

    /// The p-state ladder of this part.
    pub fn pstates(&self) -> PStateLadder {
        PStateLadder::new(self.f_min, self.f_turbo, self.f_step)
            .expect("validated spec produces a valid ladder")
    }
}

/// The node power model. Thin by design: all workload knowledge arrives as
/// activity coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    spec: MachineSpec,
}

/// One class of cores: `count` cores running with activity `kappa` at
/// frequency `freq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreClass {
    /// Number of cores in this class.
    pub count: usize,
    /// Dimensionless activity coefficient κ.
    pub kappa: f64,
    /// Operating frequency of this class.
    pub freq: Hertz,
}

impl PowerModel {
    /// Build a model over a validated spec.
    pub fn new(spec: MachineSpec) -> Result<Self> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The frequency power-law factor `φ(f) = (f / f_base)^α`.
    #[inline]
    pub fn phi(&self, f: Hertz) -> f64 {
        (f.value() / self.spec.f_base.value()).powf(self.spec.alpha)
    }

    /// Static node power: uncore plus leakage for the used cores, with the
    /// leakage part subject to the node's variation factor `eps`.
    pub fn static_power(&self, eps: f64) -> Watts {
        self.spec.uncore_per_socket * self.spec.sockets_per_node as f64
            + self.spec.leak_per_core * self.spec.cores_used_per_node as f64 * eps
    }

    /// Total node power for a set of core classes on a node with variation
    /// factor `eps`.
    pub fn node_power(&self, eps: f64, classes: &[CoreClass]) -> Watts {
        debug_assert!(
            classes.iter().map(|c| c.count).sum::<usize>() <= self.spec.cores_used_per_node,
            "core classes exceed usable cores"
        );
        let dynamic: f64 = classes
            .iter()
            .map(|c| c.count as f64 * c.kappa * self.phi(c.freq))
            .sum();
        self.static_power(eps) + Watts(dynamic * eps)
    }

    /// Invert [`Self::node_power`] for a single homogeneous class: the
    /// frequency at which `count` cores of activity `kappa` draw exactly
    /// `budget`. Returns `None` if even the minimum p-state exceeds the
    /// budget or the budget exceeds the power at the turbo ceiling
    /// (callers clamp to the ladder in both cases).
    pub fn freq_for_power(
        &self,
        eps: f64,
        count: usize,
        kappa: f64,
        budget: Watts,
    ) -> Option<Hertz> {
        let dyn_budget = (budget - self.static_power(eps)).value() / eps;
        if dyn_budget <= 0.0 || count == 0 || kappa <= 0.0 {
            return None;
        }
        let phi = dyn_budget / (count as f64 * kappa);
        let f = self.spec.f_base.value() * phi.powf(1.0 / self.spec.alpha);
        if f < self.spec.f_min.value() || f > self.spec.f_turbo.value() {
            return None;
        }
        Some(Hertz(f))
    }
}

/// The operating point the package control unit settles on under a cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Frequency of the critical-path cores.
    pub lead: Hertz,
    /// Frequency of the trailing (slack / spin-polling) cores.
    pub trail: Hertz,
    /// Modeled node power at this point.
    pub power: Watts,
}

/// A workload's view of node power as a function of the *lead* (critical
/// path) core frequency. Implemented by `pmstack-kernel`.
pub trait LoadModel {
    /// Total node power when the critical-path cores run at `lead_freq`.
    /// The implementation decides how trailing core classes (slack cores,
    /// polling cores) follow the lead frequency.
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead_freq: Hertz) -> Watts;

    /// The operating point the PCU resolves for a node-level power `cap`.
    ///
    /// The default walks the p-state ladder from the top and picks the
    /// highest lead frequency whose power fits the cap (falling back to the
    /// minimum p-state when nothing fits — hardware cannot stop the clock).
    /// Workloads with distinguishable core classes override this to model
    /// the PCU demoting low-utilization (spin-polling) cores *before*
    /// touching the critical path, which is the hardware behaviour the
    /// GEOPM power balancer exploits.
    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        let ladder = model.spec().pstates();
        let lead =
            ladder.highest_fitting(|s| self.node_power_at(model, eps, s) <= cap + Watts(1e-9));
        OperatingPoint {
            lead,
            trail: lead,
            power: self.node_power_at(model, eps, lead),
        }
    }
}

impl<T: LoadModel + ?Sized> LoadModel for &T {
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead_freq: Hertz) -> Watts {
        (**self).node_power_at(model, eps, lead_freq)
    }

    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        (**self).operating_point(model, eps, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quartz::quartz_spec;

    fn model() -> PowerModel {
        PowerModel::new(quartz_spec()).unwrap()
    }

    #[test]
    fn phi_is_one_at_base() {
        let m = model();
        assert!((m.phi(m.spec().f_base) - 1.0).abs() < 1e-12);
        assert!(m.phi(m.spec().f_turbo) > 1.0);
        assert!(m.phi(m.spec().f_min) < 1.0);
    }

    #[test]
    fn power_monotonic_in_frequency() {
        let m = model();
        let at = |f: f64| {
            m.node_power(
                1.0,
                &[CoreClass {
                    count: 34,
                    kappa: 2.5,
                    freq: Hertz::from_ghz(f),
                }],
            )
        };
        assert!(at(1.2) < at(1.8));
        assert!(at(1.8) < at(2.6));
    }

    #[test]
    fn variation_scales_dynamic_and_leakage() {
        let m = model();
        let classes = [CoreClass {
            count: 34,
            kappa: 2.5,
            freq: Hertz::from_ghz(2.1),
        }];
        let p_eff = m.node_power(0.94, &classes);
        let p_ineff = m.node_power(1.07, &classes);
        assert!(p_ineff > p_eff);
        // Uncore is unaffected by variation: difference is strictly less
        // than the full ratio.
        let ratio = p_ineff.value() / p_eff.value();
        assert!(ratio < 1.07 / 0.94);
    }

    #[test]
    fn freq_for_power_inverts_node_power() {
        let m = model();
        let kappa = 2.7;
        let f = Hertz::from_ghz(1.9);
        let p = m.node_power(
            1.0,
            &[CoreClass {
                count: 34,
                kappa,
                freq: f,
            }],
        );
        let back = m.freq_for_power(1.0, 34, kappa, p).unwrap();
        assert!((back.ghz() - 1.9).abs() < 1e-9);
    }

    #[test]
    fn freq_for_power_out_of_range_is_none() {
        let m = model();
        assert!(m.freq_for_power(1.0, 34, 2.5, Watts(10.0)).is_none());
        assert!(m.freq_for_power(1.0, 34, 2.5, Watts(10_000.0)).is_none());
        assert!(m.freq_for_power(1.0, 0, 2.5, Watts(200.0)).is_none());
    }

    #[test]
    fn uncapped_power_is_near_tdp_for_hot_workload() {
        // The calibration target: a hot (κ≈3) workload at the turbo ceiling
        // should draw close to, but within, the 240 W node TDP.
        let m = model();
        let p = m.node_power(
            1.0,
            &[CoreClass {
                count: 34,
                kappa: 2.98,
                freq: m.spec().f_turbo,
            }],
        );
        assert!(
            p.value() > 215.0 && p.value() < 240.0,
            "expected ~232 W, got {p}"
        );
    }

    #[test]
    fn spec_validation_catches_errors() {
        let mut bad = quartz_spec();
        bad.cores_used_per_node = 100;
        assert!(bad.validate().is_err());
        let mut bad = quartz_spec();
        bad.f_min = Hertz::from_ghz(3.0);
        assert!(bad.validate().is_err());
        let mut bad = quartz_spec();
        bad.alpha = 0.5;
        assert!(bad.validate().is_err());
    }
}
