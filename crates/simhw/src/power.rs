//! The socket/node power model and the machine description.
//!
//! Node power is modeled as
//!
//! ```text
//! P_node(f…) = n_sockets · P_uncore
//!            + ε · [ n_cores_used · P_leak  +  Σ_core  κ_core · φ(f_core) ]
//! φ(f) = (f / f_base)^α
//! ```
//!
//! where `κ_core` is a dimensionless *activity coefficient* supplied by the
//! workload layer (FMA-heavy code has high κ, memory-stalled code lower κ,
//! a spin-polling core its own κ), and `ε` is the node's manufacturing
//! variation factor. The exponent α ≈ 2.4 folds the voltage/frequency curve
//! into a single power law, a standard compact model for DVFS studies.
//!
//! Workload specifics never enter this crate: the [`LoadModel`] trait lets a
//! workload report total node power at a given *lead frequency* (the
//! frequency of the cores on the critical path); how the other core classes
//! (slack cores, polling cores) trail the lead frequency is the workload
//! model's business.

use crate::error::{Result, SimHwError};
use crate::pstate::PStateLadder;
use crate::units::{Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Static description of one machine model (Table I plus model parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable part name.
    pub name: String,
    /// CPU sockets per node.
    pub sockets_per_node: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Cores per node actually running application ranks (the paper uses 34
    /// of 36, leaving two for system services).
    pub cores_used_per_node: usize,
    /// Minimum p-state.
    pub f_min: Hertz,
    /// Base (guaranteed) frequency.
    pub f_base: Hertz,
    /// All-core turbo ceiling.
    pub f_turbo: Hertz,
    /// P-state granularity.
    pub f_step: Hertz,
    /// Thermal design power per socket.
    pub tdp_per_socket: Watts,
    /// Minimum settable RAPL limit per socket.
    pub min_rapl_per_socket: Watts,
    /// Frequency/voltage power-law exponent α.
    pub alpha: f64,
    /// Uncore power per socket (fabric, LLC, memory controller idle).
    pub uncore_per_socket: Watts,
    /// Leakage power per active core.
    pub leak_per_core: Watts,
    /// Node-level DRAM bandwidth in bytes/second.
    pub dram_bw_bytes_per_s: f64,
    /// Effective frequency floor the PCU holds for spin-polling cores when
    /// power is not scarce. Spin loops retire at high IPC and look busy to
    /// the PCU, so they are only trailed modestly below the compute cores;
    /// calibrated so balancer-characterized "needed power" reproduces the
    /// Fig. 5 bands.
    pub poll_freq_floor: Hertz,
}

impl MachineSpec {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        let check = |cond: bool, msg: &str| -> Result<()> {
            if cond {
                Ok(())
            } else {
                Err(SimHwError::InvalidParameter(msg.to_string()))
            }
        };
        check(self.sockets_per_node > 0, "sockets_per_node must be > 0")?;
        check(self.cores_per_socket > 0, "cores_per_socket must be > 0")?;
        check(
            self.cores_used_per_node <= self.sockets_per_node * self.cores_per_socket,
            "cores_used_per_node exceeds physical cores",
        )?;
        check(
            self.f_min <= self.f_base && self.f_base <= self.f_turbo,
            "frequency ordering must be f_min <= f_base <= f_turbo",
        )?;
        check(
            self.min_rapl_per_socket <= self.tdp_per_socket,
            "min RAPL limit must not exceed TDP",
        )?;
        check(self.alpha > 1.0, "alpha must exceed 1")?;
        check(
            self.dram_bw_bytes_per_s > 0.0,
            "dram bandwidth must be positive",
        )?;
        Ok(())
    }

    /// TDP for a whole node.
    pub fn tdp_per_node(&self) -> Watts {
        self.tdp_per_socket * self.sockets_per_node as f64
    }

    /// Minimum settable RAPL limit for a whole node.
    pub fn min_rapl_per_node(&self) -> Watts {
        self.min_rapl_per_socket * self.sockets_per_node as f64
    }

    /// The p-state ladder of this part.
    pub fn pstates(&self) -> PStateLadder {
        PStateLadder::new(self.f_min, self.f_turbo, self.f_step)
            .expect("validated spec produces a valid ladder")
    }
}

/// A monotone frequency ↔ power-law lookup table: `φ(f) = (f/f_base)^α`
/// tabulated over the p-state range (ladder steps are exact knots, each
/// 100 MHz interval subdivided), with linear interpolation between knots.
///
/// This removes `powf` from per-host per-iteration hot loops: forward
/// lookups serve [`PowerModel::phi_fast`] and the kernel's operating-point
/// tables; the inverse serves [`PowerModel::cap_to_freq`]. Interpolation
/// error is bounded by the knot spacing (tested: < 0.1 W of node power
/// across the ladder, see `lut_power_error_is_below_a_tenth_watt`).
#[derive(Debug, Clone)]
pub struct PhiTable {
    /// Knot frequencies in Hz, ascending; ladder steps appear exactly.
    freqs: Vec<f64>,
    /// `φ` at each knot, computed once with `powf` (ascending, since α > 1).
    phis: Vec<f64>,
}

/// Sub-steps per 100 MHz p-state interval in the φ table. With α ≈ 2.4 the
/// curvature error of linear interpolation over `f_step / 8` is below
/// 10 mW of node power — two orders under the 0.1 W accuracy budget.
const PHI_REFINE: usize = 8;

impl PhiTable {
    /// Tabulate `spec`'s power law over `[min(f_min, poll_floor), f_turbo]`.
    fn build(spec: &MachineSpec) -> Self {
        let mut anchors: Vec<f64> = Vec::new();
        // Extend below the ladder when the spin floor sits under f_min, so
        // trailing-core frequencies stay inside the table.
        let lo = spec.f_min.value().min(spec.poll_freq_floor.value());
        let mut f = lo;
        while f < spec.f_min.value() - 1e-3 {
            anchors.push(f);
            f += spec.f_step.value();
        }
        anchors.extend(
            spec.pstates()
                .steps()
                .iter()
                .map(|h| h.value())
                .filter(|&s| s > lo - 1e-3),
        );
        let mut freqs = Vec::with_capacity(anchors.len() * PHI_REFINE);
        for pair in anchors.windows(2) {
            for j in 0..PHI_REFINE {
                freqs.push(pair[0] + (pair[1] - pair[0]) * j as f64 / PHI_REFINE as f64);
            }
        }
        freqs.push(*anchors.last().expect("spec has at least one p-state"));
        let phis = freqs
            .iter()
            .map(|&f| (f / spec.f_base.value()).powf(spec.alpha))
            .collect();
        Self { freqs, phis }
    }

    /// The knot frequencies in Hz, ascending — exposed so per-workload
    /// tables (the kernel's operating-point curves) can align their knots
    /// with the φ table's and inherit its exact-at-ladder-step property.
    pub fn knots(&self) -> &[f64] {
        &self.freqs
    }

    /// Lowest tabulated frequency.
    pub fn min_freq(&self) -> Hertz {
        Hertz(self.freqs[0])
    }

    /// Highest tabulated frequency.
    pub fn max_freq(&self) -> Hertz {
        Hertz(*self.freqs.last().expect("table is non-empty"))
    }

    /// Interpolated `φ(f)`; `None` outside the tabulated range (callers
    /// fall back to the closed form).
    pub fn phi_at(&self, f: Hertz) -> Option<f64> {
        let x = f.value();
        if !(self.freqs[0]..=*self.freqs.last().unwrap()).contains(&x) {
            return None;
        }
        let hi = self.freqs.partition_point(|&k| k <= x);
        if hi == self.freqs.len() {
            return Some(*self.phis.last().unwrap());
        }
        // freqs[hi-1] <= x < freqs[hi]; exact-knot queries interpolate with
        // t = 0 and return the knot's powf value bit-for-bit.
        let (f0, f1) = (self.freqs[hi - 1], self.freqs[hi]);
        let (p0, p1) = (self.phis[hi - 1], self.phis[hi]);
        let t = (x - f0) / (f1 - f0);
        Some(p0 + t * (p1 - p0))
    }

    /// Inverse lookup: the frequency at which `φ` reaches `phi`, by binary
    /// search over the monotone knots plus linear interpolation. Clamps to
    /// the table ends (`None` only for non-finite input).
    pub fn freq_for_phi(&self, phi: f64) -> Option<Hertz> {
        if !phi.is_finite() {
            return None;
        }
        if phi <= self.phis[0] {
            return Some(Hertz(self.freqs[0]));
        }
        if phi >= *self.phis.last().unwrap() {
            return Some(self.max_freq());
        }
        let hi = self.phis.partition_point(|&p| p <= phi);
        let (p0, p1) = (self.phis[hi - 1], self.phis[hi]);
        let (f0, f1) = (self.freqs[hi - 1], self.freqs[hi]);
        let t = (phi - p0) / (p1 - p0);
        Some(Hertz(f0 + t * (f1 - f0)))
    }
}

/// The node power model. Thin by design: all workload knowledge arrives as
/// activity coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    spec: MachineSpec,
    /// Lazily-built φ lookup table (hot paths only; the closed form stays
    /// authoritative for calibration-grade queries).
    lut: std::sync::OnceLock<PhiTable>,
}

impl PartialEq for PowerModel {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
    }
}

/// One class of cores: `count` cores running with activity `kappa` at
/// frequency `freq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreClass {
    /// Number of cores in this class.
    pub count: usize,
    /// Dimensionless activity coefficient κ.
    pub kappa: f64,
    /// Operating frequency of this class.
    pub freq: Hertz,
}

impl PowerModel {
    /// Build a model over a validated spec.
    pub fn new(spec: MachineSpec) -> Result<Self> {
        spec.validate()?;
        Ok(Self {
            spec,
            lut: std::sync::OnceLock::new(),
        })
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The frequency power-law factor `φ(f) = (f / f_base)^α`, closed form.
    #[inline]
    pub fn phi(&self, f: Hertz) -> f64 {
        (f.value() / self.spec.f_base.value()).powf(self.spec.alpha)
    }

    /// The φ lookup table, built on first use.
    pub fn lut(&self) -> &PhiTable {
        self.lut.get_or_init(|| PhiTable::build(&self.spec))
    }

    /// Table-interpolated `φ(f)`: bit-identical to [`Self::phi`] at p-state
    /// ladder knots, within the 0.1 W node-power accuracy budget between
    /// them, and falling back to the closed form outside the table.
    #[inline]
    pub fn phi_fast(&self, f: Hertz) -> f64 {
        self.lut().phi_at(f).unwrap_or_else(|| self.phi(f))
    }

    /// The workload-dependent dynamic-power coefficient `Σ count·κ·φ(f)`
    /// of a set of core classes, in Watts at ε = 1. Factored out so callers
    /// (the kernel's operating-point tables) can precompute it per ladder
    /// step and reproduce [`Self::node_power`] bit-for-bit as
    /// `static_power(ε) + Watts(coefficient · ε)`.
    pub fn dynamic_coefficient(&self, classes: &[CoreClass]) -> f64 {
        classes
            .iter()
            .map(|c| c.count as f64 * c.kappa * self.phi(c.freq))
            .sum()
    }

    /// Static node power: uncore plus leakage for the used cores, with the
    /// leakage part subject to the node's variation factor `eps`.
    pub fn static_power(&self, eps: f64) -> Watts {
        self.spec.uncore_per_socket * self.spec.sockets_per_node as f64
            + self.spec.leak_per_core * self.spec.cores_used_per_node as f64 * eps
    }

    /// Total node power for a set of core classes on a node with variation
    /// factor `eps`.
    pub fn node_power(&self, eps: f64, classes: &[CoreClass]) -> Watts {
        debug_assert!(
            classes.iter().map(|c| c.count).sum::<usize>() <= self.spec.cores_used_per_node,
            "core classes exceed usable cores"
        );
        let dynamic = self.dynamic_coefficient(classes);
        self.static_power(eps) + Watts(dynamic * eps)
    }

    /// Invert [`Self::node_power`] for a single homogeneous class: the
    /// frequency at which `count` cores of activity `kappa` draw exactly
    /// `budget`. Returns `None` if even the minimum p-state exceeds the
    /// budget or the budget exceeds the power at the turbo ceiling
    /// (callers clamp to the ladder in both cases).
    pub fn freq_for_power(
        &self,
        eps: f64,
        count: usize,
        kappa: f64,
        budget: Watts,
    ) -> Option<Hertz> {
        let dyn_budget = (budget - self.static_power(eps)).value() / eps;
        if dyn_budget <= 0.0 || count == 0 || kappa <= 0.0 {
            return None;
        }
        let phi = dyn_budget / (count as f64 * kappa);
        let f = self.spec.f_base.value() * phi.powf(1.0 / self.spec.alpha);
        if f < self.spec.f_min.value() || f > self.spec.f_turbo.value() {
            return None;
        }
        Some(Hertz(f))
    }

    /// Table-driven analogue of [`Self::freq_for_power`]: the frequency at
    /// which `count` cores of activity `kappa` draw exactly `budget`, found
    /// by inverse lookup in the φ table instead of `powf(1/α)`. Same `None`
    /// contract (budget below the minimum p-state's draw or above the turbo
    /// ceiling's); the answer differs from the closed form only by the
    /// interpolation error, which is under the ladder's 100 MHz quantum.
    pub fn cap_to_freq(&self, eps: f64, count: usize, kappa: f64, budget: Watts) -> Option<Hertz> {
        let dyn_budget = (budget - self.static_power(eps)).value() / eps;
        if dyn_budget <= 0.0 || count == 0 || kappa <= 0.0 {
            return None;
        }
        let phi = dyn_budget / (count as f64 * kappa);
        let lut = self.lut();
        // Mirror freq_for_power's range contract on the *ladder* range, not
        // the (possibly wider) table range.
        let phi_min = lut.phi_at(self.spec.f_min)?;
        let phi_max = lut.phi_at(self.spec.f_turbo)?;
        if phi < phi_min || phi > phi_max {
            return None;
        }
        lut.freq_for_phi(phi)
    }
}

/// The operating point the package control unit settles on under a cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Frequency of the critical-path cores.
    pub lead: Hertz,
    /// Frequency of the trailing (slack / spin-polling) cores.
    pub trail: Hertz,
    /// Modeled node power at this point.
    pub power: Watts,
}

/// A workload's view of node power as a function of the *lead* (critical
/// path) core frequency. Implemented by `pmstack-kernel`.
pub trait LoadModel {
    /// Total node power when the critical-path cores run at `lead_freq`.
    /// The implementation decides how trailing core classes (slack cores,
    /// polling cores) follow the lead frequency.
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead_freq: Hertz) -> Watts;

    /// The operating point the PCU resolves for a node-level power `cap`.
    ///
    /// The default walks the p-state ladder from the top and picks the
    /// highest lead frequency whose power fits the cap (falling back to the
    /// minimum p-state when nothing fits — hardware cannot stop the clock).
    /// Workloads with distinguishable core classes override this to model
    /// the PCU demoting low-utilization (spin-polling) cores *before*
    /// touching the critical path, which is the hardware behaviour the
    /// GEOPM power balancer exploits.
    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        let ladder = model.spec().pstates();
        let lead =
            ladder.highest_fitting(|s| self.node_power_at(model, eps, s) <= cap + Watts(1e-9));
        OperatingPoint {
            lead,
            trail: lead,
            power: self.node_power_at(model, eps, lead),
        }
    }
}

impl<T: LoadModel + ?Sized> LoadModel for &T {
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead_freq: Hertz) -> Watts {
        (**self).node_power_at(model, eps, lead_freq)
    }

    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        (**self).operating_point(model, eps, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quartz::quartz_spec;

    fn model() -> PowerModel {
        PowerModel::new(quartz_spec()).unwrap()
    }

    #[test]
    fn phi_is_one_at_base() {
        let m = model();
        assert!((m.phi(m.spec().f_base) - 1.0).abs() < 1e-12);
        assert!(m.phi(m.spec().f_turbo) > 1.0);
        assert!(m.phi(m.spec().f_min) < 1.0);
    }

    #[test]
    fn power_monotonic_in_frequency() {
        let m = model();
        let at = |f: f64| {
            m.node_power(
                1.0,
                &[CoreClass {
                    count: 34,
                    kappa: 2.5,
                    freq: Hertz::from_ghz(f),
                }],
            )
        };
        assert!(at(1.2) < at(1.8));
        assert!(at(1.8) < at(2.6));
    }

    #[test]
    fn variation_scales_dynamic_and_leakage() {
        let m = model();
        let classes = [CoreClass {
            count: 34,
            kappa: 2.5,
            freq: Hertz::from_ghz(2.1),
        }];
        let p_eff = m.node_power(0.94, &classes);
        let p_ineff = m.node_power(1.07, &classes);
        assert!(p_ineff > p_eff);
        // Uncore is unaffected by variation: difference is strictly less
        // than the full ratio.
        let ratio = p_ineff.value() / p_eff.value();
        assert!(ratio < 1.07 / 0.94);
    }

    #[test]
    fn freq_for_power_inverts_node_power() {
        let m = model();
        let kappa = 2.7;
        let f = Hertz::from_ghz(1.9);
        let p = m.node_power(
            1.0,
            &[CoreClass {
                count: 34,
                kappa,
                freq: f,
            }],
        );
        let back = m.freq_for_power(1.0, 34, kappa, p).unwrap();
        assert!((back.ghz() - 1.9).abs() < 1e-9);
    }

    #[test]
    fn freq_for_power_out_of_range_is_none() {
        let m = model();
        assert!(m.freq_for_power(1.0, 34, 2.5, Watts(10.0)).is_none());
        assert!(m.freq_for_power(1.0, 34, 2.5, Watts(10_000.0)).is_none());
        assert!(m.freq_for_power(1.0, 0, 2.5, Watts(200.0)).is_none());
    }

    #[test]
    fn uncapped_power_is_near_tdp_for_hot_workload() {
        // The calibration target: a hot (κ≈3) workload at the turbo ceiling
        // should draw close to, but within, the 240 W node TDP.
        let m = model();
        let p = m.node_power(
            1.0,
            &[CoreClass {
                count: 34,
                kappa: 2.98,
                freq: m.spec().f_turbo,
            }],
        );
        assert!(
            p.value() > 215.0 && p.value() < 240.0,
            "expected ~232 W, got {p}"
        );
    }

    #[test]
    fn lut_is_exact_at_ladder_knots() {
        let m = model();
        for &step in m.spec().pstates().steps() {
            assert_eq!(
                m.phi_fast(step).to_bits(),
                m.phi(step).to_bits(),
                "phi_fast must be bit-identical to phi at ladder step {step}"
            );
        }
        // The spin-poll floor is also an anchor when it sits off-ladder.
        let floor = m.spec().poll_freq_floor;
        assert!((m.phi_fast(floor) - m.phi(floor)).abs() < 1e-12);
    }

    #[test]
    fn lut_power_error_is_below_a_tenth_watt() {
        // Sweep the whole tabulated range at 1 MHz resolution and translate
        // the φ interpolation error into node power for the hottest
        // plausible workload (34 cores, κ = 3, ε = 1.07): the worst case
        // for absolute error. The budget is 0.1 W per node.
        let m = model();
        let (lo, hi) = (m.lut().min_freq().value(), m.lut().max_freq().value());
        let per_phi = 34.0 * 3.0 * 1.07; // dP/dφ in Watts
        let mut worst = 0.0f64;
        let mut f = lo;
        while f <= hi {
            let err = (m.phi_fast(Hertz(f)) - m.phi(Hertz(f))).abs() * per_phi;
            worst = worst.max(err);
            f += 1e6;
        }
        assert!(
            worst < 0.1,
            "worst LUT node-power error {worst} W exceeds 0.1 W"
        );
    }

    #[test]
    fn lut_inverse_roundtrips_within_interpolation_error() {
        let m = model();
        let lut = m.lut();
        let mut f = lut.min_freq().value();
        while f <= lut.max_freq().value() {
            let phi = m.phi_fast(Hertz(f));
            let back = lut.freq_for_phi(phi).unwrap().value();
            assert!(
                (back - f).abs() < 1e6,
                "inverse lookup at {f} Hz came back {back} Hz"
            );
            f += 7.3e6;
        }
    }

    #[test]
    fn cap_to_freq_matches_closed_form_inversion() {
        let m = model();
        for cap_w in [150.0, 170.0, 190.0, 210.0, 230.0] {
            let closed = m.freq_for_power(1.0, 34, 2.7, Watts(cap_w));
            let lut = m.cap_to_freq(1.0, 34, 2.7, Watts(cap_w));
            match (closed, lut) {
                (Some(a), Some(b)) => assert!(
                    (a.value() - b.value()).abs() < 5e6,
                    "cap {cap_w} W: closed form {a} vs LUT {b}"
                ),
                // Both out of ladder range is consistent too.
                (None, None) => {}
                (a, b) => panic!("cap {cap_w} W: closed form {a:?} vs LUT {b:?}"),
            }
        }
        // Out-of-range contract matches freq_for_power.
        assert!(m.cap_to_freq(1.0, 34, 2.5, Watts(10.0)).is_none());
        assert!(m.cap_to_freq(1.0, 34, 2.5, Watts(10_000.0)).is_none());
        assert!(m.cap_to_freq(1.0, 0, 2.5, Watts(200.0)).is_none());
    }

    #[test]
    fn spec_validation_catches_errors() {
        let mut bad = quartz_spec();
        bad.cores_used_per_node = 100;
        assert!(bad.validate().is_err());
        let mut bad = quartz_spec();
        bad.f_min = Hertz::from_ghz(3.0);
        assert!(bad.validate().is_err());
        let mut bad = quartz_spec();
        bad.alpha = 0.5;
        assert!(bad.validate().is_err());
    }
}
