//! Deterministic fault injection for the simulated hardware substrate.
//!
//! Real clusters lose nodes, RAPL writes occasionally latch wrong values,
//! and out-of-band telemetry paths drop samples. This module models those
//! failure modes as a *fault plan*: a seedable, reproducible schedule of
//! [`FaultEvent`]s fired at chosen bulk-synchronous iterations. The plan is
//! pure data — the runtime layer applies each event to the affected
//! [`crate::node::Node`] at the iteration boundary, so two runs with the
//! same plan (and seeds) observe byte-identical failure sequences.
//!
//! The taxonomy (paper §VII-style failure handling, applied to the unified
//! stack):
//!
//! * **Fail-stop node death** — the node powers off mid-run; every later
//!   MSR access returns [`crate::SimHwError::NodeFailed`].
//! * **Stuck RAPL limit** — limit writes appear to succeed but silently pin
//!   the package to a wrong value (a latched PL1 erratum).
//! * **Telemetry dropout** — power/energy reads fail for a window of
//!   iterations while the node keeps executing; controllers must hold
//!   last-known state.
//! * **Transient MSR fault** — a single msr-safe access denial; retrying
//!   next iteration succeeds.

use crate::units::Watts;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Health of a node as observed by the layers above the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Operating normally.
    Healthy,
    /// Alive but misbehaving (telemetry gaps, transient MSR faults);
    /// controllers should distrust recent readings.
    Suspect,
    /// Fail-stop dead; the node is gone for the remainder of the run.
    Dead,
}

impl NodeHealth {
    /// True unless the node is [`NodeHealth::Dead`].
    pub fn is_alive(self) -> bool {
        self != NodeHealth::Dead
    }
}

impl std::fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Healthy => write!(f, "healthy"),
            Self::Suspect => write!(f, "suspect"),
            Self::Dead => write!(f, "dead"),
        }
    }
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail-stop death: the node stops executing and answering MSR traffic.
    NodeDeath,
    /// RAPL limit writes silently latch `pinned_w` watts instead of the
    /// requested value, from this point on.
    StuckRapl {
        /// The node-level limit the hardware actually enforces.
        pinned_w: f64,
    },
    /// Telemetry reads fail for the next `iterations` steps; execution and
    /// energy accounting continue underneath.
    TelemetryDropout {
        /// Number of consecutive steps whose reads fail.
        iterations: u32,
    },
    /// A single denied MSR access; the next attempt succeeds.
    TransientMsrFault,
}

impl FaultKind {
    /// Stable static name of the fault kind, used as the `fault` field of
    /// journal events (the [`std::fmt::Display`] form carries parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Self::NodeDeath => "node_death",
            Self::StuckRapl { .. } => "stuck_rapl",
            Self::TelemetryDropout { .. } => "telemetry_dropout",
            Self::TransientMsrFault => "transient_msr_fault",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeDeath => write!(f, "node-death"),
            Self::StuckRapl { pinned_w } => write!(f, "stuck-rapl({pinned_w:.1} W)"),
            Self::TelemetryDropout { iterations } => {
                write!(f, "telemetry-dropout({iterations} iters)")
            }
            Self::TransientMsrFault => write!(f, "transient-msr-fault"),
        }
    }
}

/// A scheduled fault: fire `kind` against host index `host` at the start of
/// bulk-synchronous iteration `at_iteration` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Iteration boundary at which the fault fires.
    pub at_iteration: u64,
    /// Index of the afflicted host within the executing job/platform.
    pub host: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, ordered by iteration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from an explicit event list (sorted by iteration, stably).
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_iteration);
        Self { events }
    }

    /// A seeded random plan: roughly `expected_faults` events spread over
    /// `iterations` iterations and `hosts` hosts, drawn from the full fault
    /// taxonomy. The same `(seed, hosts, iterations, expected_faults)`
    /// quadruple always yields the same plan.
    pub fn randomized(seed: u64, hosts: usize, iterations: u64, expected_faults: usize) -> Self {
        if hosts == 0 || iterations == 0 || expected_faults == 0 {
            return Self::none();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa17_01a4_u64);
        let mut events = Vec::with_capacity(expected_faults);
        for _ in 0..expected_faults {
            let at_iteration = rng.gen_range(0..iterations);
            let host = rng.gen_range(0..hosts);
            let kind = match rng.gen_range(0u32..4) {
                0 => FaultKind::NodeDeath,
                1 => FaultKind::StuckRapl {
                    pinned_w: rng.gen_range(80.0..200.0),
                },
                2 => FaultKind::TelemetryDropout {
                    iterations: rng.gen_range(1u32..6),
                },
                _ => FaultKind::TransientMsrFault,
            };
            events.push(FaultEvent {
                at_iteration,
                host,
                kind,
            });
        }
        Self::scripted(events)
    }

    /// A facility-timescale chaos plan for multi-day campaigns, where the
    /// "iteration" axis is simulated **minutes** rather than bulk-
    /// synchronous steps. [`FaultPlan::randomized`]'s dropouts (a handful
    /// of iterations) are invisible to minute-granularity lease timeouts,
    /// so this generator draws from a campaign-shaped mix instead: mostly
    /// fail-stop node deaths, plus telemetry blackouts of 20–180 minutes —
    /// long enough to expire a heartbeat lease and exercise the detector's
    /// false-positive path on nodes that never actually died.
    ///
    /// `level` scales intensity: 0 is a clean run (empty plan); each step
    /// up multiplies the expected event count. The same
    /// `(seed, hosts, minutes, level)` quadruple always yields the same
    /// plan.
    pub fn chaos(seed: u64, hosts: usize, minutes: u64, level: u32) -> Self {
        if hosts == 0 || minutes == 0 || level == 0 {
            return Self::none();
        }
        // Calibrated so a 512-node, 4-day campaign at level 1 sees a few
        // dozen events — noticeable, not apocalyptic.
        let expected = ((hosts as u64 * minutes * level as u64) / 125_000).max(level as u64 * 4);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a0_5000_u64);
        let mut events = Vec::with_capacity(expected as usize);
        for _ in 0..expected {
            let at_iteration = rng.gen_range(0..minutes);
            let host = rng.gen_range(0..hosts);
            // 3:1 deaths to blackouts: deaths drive the requeue machinery,
            // blackouts the lease false positives.
            let kind = if rng.gen_range(0u32..4) < 3 {
                FaultKind::NodeDeath
            } else {
                FaultKind::TelemetryDropout {
                    iterations: rng.gen_range(20u32..=180),
                }
            };
            events.push(FaultEvent {
                at_iteration,
                host,
                kind,
            });
        }
        Self::scripted(events)
    }

    /// All scheduled events, ordered by iteration.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events firing at exactly `iteration`.
    pub fn events_at(&self, iteration: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.at_iteration == iteration)
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The last iteration at which anything fires, if any.
    pub fn last_iteration(&self) -> Option<u64> {
        self.events.iter().map(|e| e.at_iteration).max()
    }

    /// Restrict the plan to hosts below `hosts` (used when a plan written
    /// for a mix is sliced per job).
    pub fn restricted_to(&self, hosts: usize) -> Self {
        Self {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.host < hosts)
                .collect(),
        }
    }
}

/// Convenience constructor: kill `host` at `at_iteration`.
pub fn kill(host: usize, at_iteration: u64) -> FaultEvent {
    FaultEvent {
        at_iteration,
        host,
        kind: FaultKind::NodeDeath,
    }
}

/// Convenience constructor: pin `host`'s RAPL limit to `pinned` from
/// `at_iteration` on.
pub fn stuck_rapl(host: usize, at_iteration: u64, pinned: Watts) -> FaultEvent {
    FaultEvent {
        at_iteration,
        host,
        kind: FaultKind::StuckRapl {
            pinned_w: pinned.value(),
        },
    }
}

/// Convenience constructor: black out `host`'s telemetry for `iterations`
/// steps starting at `at_iteration`.
pub fn telemetry_dropout(host: usize, at_iteration: u64, iterations: u32) -> FaultEvent {
    FaultEvent {
        at_iteration,
        host,
        kind: FaultKind::TelemetryDropout { iterations },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plans_sort_by_iteration() {
        let plan = FaultPlan::scripted(vec![kill(1, 9), kill(0, 2), kill(2, 5)]);
        let iters: Vec<u64> = plan.events().iter().map(|e| e.at_iteration).collect();
        assert_eq!(iters, vec![2, 5, 9]);
    }

    #[test]
    fn events_at_filters_exact_iteration() {
        let plan = FaultPlan::scripted(vec![kill(0, 3), kill(1, 3), kill(2, 4)]);
        assert_eq!(plan.events_at(3).count(), 2);
        assert_eq!(plan.events_at(4).count(), 1);
        assert_eq!(plan.events_at(5).count(), 0);
    }

    #[test]
    fn randomized_plans_are_deterministic() {
        let a = FaultPlan::randomized(7, 16, 40, 6);
        let b = FaultPlan::randomized(7, 16, 40, 6);
        let c = FaultPlan::randomized(8, 16, 40, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 6);
        assert!(a
            .events()
            .iter()
            .all(|e| e.host < 16 && e.at_iteration < 40));
    }

    #[test]
    fn chaos_plans_scale_with_level_and_stay_deterministic() {
        let clean = FaultPlan::chaos(3, 512, 4 * 1440, 0);
        assert!(clean.is_empty(), "level 0 is a clean run");
        let a = FaultPlan::chaos(3, 512, 4 * 1440, 1);
        let b = FaultPlan::chaos(3, 512, 4 * 1440, 1);
        assert_eq!(a, b);
        let heavy = FaultPlan::chaos(3, 512, 4 * 1440, 3);
        assert!(heavy.len() > a.len(), "higher level injects more");
        // Only campaign-relevant kinds, with lease-visible dropout lengths.
        for e in heavy.events() {
            match e.kind {
                FaultKind::NodeDeath => {}
                FaultKind::TelemetryDropout { iterations } => {
                    assert!((20..=180).contains(&iterations))
                }
                other => panic!("unexpected chaos fault {other:?}"),
            }
        }
        // Tiny fleets still see at least a few events per level.
        assert!(FaultPlan::chaos(3, 8, 60, 2).len() >= 8);
    }

    #[test]
    fn restriction_drops_out_of_range_hosts() {
        let plan = FaultPlan::scripted(vec![kill(0, 1), kill(5, 2), kill(9, 3)]);
        let small = plan.restricted_to(6);
        assert_eq!(small.len(), 2);
        assert!(small.events().iter().all(|e| e.host < 6));
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(FaultKind::NodeDeath.to_string(), "node-death");
        assert!(FaultKind::StuckRapl { pinned_w: 120.0 }
            .to_string()
            .contains("120.0"));
        assert!(FaultKind::TelemetryDropout { iterations: 3 }
            .to_string()
            .contains("3 iters"));
        assert_eq!(NodeHealth::Suspect.to_string(), "suspect");
        assert!(NodeHealth::Healthy.is_alive());
        assert!(NodeHealth::Suspect.is_alive());
        assert!(!NodeHealth::Dead.is_alive());
    }

    #[test]
    fn empty_plans_report_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().last_iteration(), None);
        assert_eq!(
            FaultPlan::scripted(vec![kill(0, 7)]).last_iteration(),
            Some(7)
        );
        assert!(FaultPlan::randomized(1, 0, 10, 5).is_empty());
    }
}
