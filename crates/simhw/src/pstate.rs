//! The part's discrete frequency ladder (p-states).
//!
//! Broadwell-EP exposes operating points in 100 MHz increments from the
//! minimum p-state up to the all-core turbo ceiling. Power capping works by
//! the package control unit (PCU) walking this ladder; the solver in
//! [`crate::node`] mirrors that.

use crate::error::{Result, SimHwError};
use crate::units::Hertz;

/// A discrete ladder of operating frequencies, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateLadder {
    steps: Vec<Hertz>,
}

impl PStateLadder {
    /// Build a ladder from `min` to `max` inclusive with the given step.
    /// The top step is always exactly `max` even if the step does not divide
    /// the range evenly.
    pub fn new(min: Hertz, max: Hertz, step: Hertz) -> Result<Self> {
        if !(min.is_valid() && max.is_valid() && step.is_valid()) || step.value() <= 0.0 {
            return Err(SimHwError::InvalidParameter(
                "p-state ladder bounds/step must be positive and finite".into(),
            ));
        }
        if min > max {
            return Err(SimHwError::InvalidParameter(format!(
                "p-state min {min} exceeds max {max}"
            )));
        }
        let mut steps = Vec::new();
        let mut f = min.value();
        while f < max.value() - 1e-3 {
            steps.push(Hertz(f));
            f += step.value();
        }
        steps.push(max);
        Ok(Self { steps })
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the ladder has no operating points (cannot happen through
    /// [`Self::new`], but callers treat the type generically).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Lowest operating point.
    pub fn min(&self) -> Hertz {
        self.steps[0]
    }

    /// Highest operating point.
    pub fn max(&self) -> Hertz {
        *self.steps.last().expect("ladder is non-empty")
    }

    /// All operating points, ascending.
    pub fn steps(&self) -> &[Hertz] {
        &self.steps
    }

    /// The highest operating point that does not exceed `f`; `None` when `f`
    /// is below the bottom of the ladder.
    pub fn floor(&self, f: Hertz) -> Option<Hertz> {
        self.steps
            .iter()
            .rev()
            .find(|&&s| s.value() <= f.value() + 1e-3)
            .copied()
    }

    /// The highest operating point `s` for which `fits(s)` holds, scanning
    /// from the top of the ladder down — exactly how the PCU resolves a
    /// power limit to a frequency. Returns the bottom state when nothing
    /// fits (hardware can not go below its minimum p-state).
    pub fn highest_fitting(&self, mut fits: impl FnMut(Hertz) -> bool) -> Hertz {
        for &s in self.steps.iter().rev() {
            if fits(s) {
                return s;
            }
        }
        self.min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> PStateLadder {
        PStateLadder::new(Hertz::from_ghz(1.2), Hertz::from_ghz(2.6), Hertz(100e6)).unwrap()
    }

    #[test]
    fn ladder_covers_range_inclusive() {
        let l = ladder();
        assert_eq!(l.len(), 15);
        assert_eq!(l.min(), Hertz::from_ghz(1.2));
        assert_eq!(l.max(), Hertz::from_ghz(2.6));
    }

    #[test]
    fn uneven_step_still_tops_out_at_max() {
        let l =
            PStateLadder::new(Hertz::from_ghz(1.0), Hertz::from_ghz(1.25), Hertz(100e6)).unwrap();
        assert_eq!(l.max(), Hertz::from_ghz(1.25));
        assert_eq!(l.len(), 4); // 1.0, 1.1, 1.2, 1.25
    }

    #[test]
    fn floor_snaps_down() {
        let l = ladder();
        assert_eq!(l.floor(Hertz::from_ghz(2.15)), Some(Hertz::from_ghz(2.1)));
        assert_eq!(l.floor(Hertz::from_ghz(1.2)), Some(Hertz::from_ghz(1.2)));
        assert_eq!(l.floor(Hertz::from_ghz(0.9)), None);
        // Values above the ceiling snap to the ceiling.
        assert_eq!(l.floor(Hertz::from_ghz(5.0)), Some(Hertz::from_ghz(2.6)));
    }

    #[test]
    fn highest_fitting_scans_from_top() {
        let l = ladder();
        let f = l.highest_fitting(|s| s.ghz() <= 1.85);
        assert_eq!(f, Hertz::from_ghz(1.8));
        // Nothing fits → bottom state.
        let f = l.highest_fitting(|_| false);
        assert_eq!(f, l.min());
        // Everything fits → top state.
        let f = l.highest_fitting(|_| true);
        assert_eq!(f, l.max());
    }

    #[test]
    fn invalid_ladders_rejected() {
        assert!(
            PStateLadder::new(Hertz::from_ghz(2.6), Hertz::from_ghz(1.2), Hertz(100e6)).is_err()
        );
        assert!(PStateLadder::new(Hertz::from_ghz(1.2), Hertz::from_ghz(2.6), Hertz(0.0)).is_err());
    }
}
