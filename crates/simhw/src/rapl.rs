//! RAPL (Running Average Power Limit) package-domain semantics.
//!
//! Implements the pieces of Intel's RAPL interface that the power-management
//! stack depends on, layered over the [`crate::msr`] device:
//!
//! * the `MSR_RAPL_POWER_UNIT` register and its fixed-point unit fields,
//! * `MSR_PKG_POWER_LIMIT` PL1 encode/decode with enable and clamp bits,
//! * `MSR_PKG_ENERGY_STATUS`, a 32-bit counter in energy units that wraps,
//! * `MSR_PKG_POWER_INFO` describing TDP and the settable range,
//! * a first-order *running average* enforcement filter: when software moves
//!   the limit, the effectively enforced cap settles toward the target with
//!   the PL1 time-window constant, which is what makes rapid cap changes
//!   behave gently on real parts.

use crate::error::{Result, SimHwError};
use crate::msr::{address, MsrDevice};
use crate::units::{Joules, Seconds, Watts};
use pmstack_obs::StaticCounter;

/// Observability: sub-domain energy/enforcement updates (one per advance of
/// a package with sub-domains enabled; the classed bank's meter columns
/// count through the same counter).
pub(crate) static DOMAIN_ADVANCED: StaticCounter = StaticCounter::new("simhw.domain.advanced");
/// Observability: sub-domain limit programmings.
static DOMAIN_LIMIT_WRITES: StaticCounter = StaticCounter::new("simhw.domain.limit_writes");
/// Observability: sub-domain limit requests clamped into the settable range.
static DOMAIN_CLAMPED: StaticCounter = StaticCounter::new("simhw.domain.clamped");
/// Observability: sub-domain limit writes silently latched by a stuck-RAPL
/// fault in that domain.
static DOMAIN_STUCK_LATCHED: StaticCounter = StaticCounter::new("simhw.domain.stuck_latched");

/// Default `MSR_RAPL_POWER_UNIT` value on the Broadwell-EP parts of the
/// testbed: power unit = 2^-3 W (0.125 W), energy unit = 2^-14 J (61 µJ),
/// time unit = 2^-10 s (976 µs).
pub const DEFAULT_UNIT_REGISTER: u64 = 0x000A_0E03;

/// Decoded fixed-point units from `MSR_RAPL_POWER_UNIT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaplUnits {
    /// Watts per power-field LSB.
    pub power_w: f64,
    /// Joules per energy-counter LSB.
    pub energy_j: f64,
    /// Seconds per time-field LSB.
    pub time_s: f64,
}

impl RaplUnits {
    /// Decode the unit register.
    pub fn decode(raw: u64) -> Self {
        let pw = (raw & 0xF) as u32;
        let en = ((raw >> 8) & 0x1F) as u32;
        let tm = ((raw >> 16) & 0xF) as u32;
        Self {
            power_w: 1.0 / f64::from(1u32 << pw),
            energy_j: 1.0 / (1u64 << en) as f64,
            time_s: 1.0 / f64::from(1u32 << tm),
        }
    }
}

/// Decoded PL1 fields of `MSR_PKG_POWER_LIMIT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLimit {
    /// The PL1 limit.
    pub limit: Watts,
    /// Whether the limit is enabled.
    pub enabled: bool,
    /// Whether clamping (running below requested p-states) is allowed.
    pub clamp: bool,
    /// The PL1 averaging time window.
    pub time_window: Seconds,
}

/// Encode the PL1 fields into the raw register layout
/// (bits 14:0 limit, 15 enable, 16 clamp, 23:17 time window as `(1+F/4)·2^E`).
pub fn encode_power_limit(pl: &PowerLimit, units: &RaplUnits) -> u64 {
    let raw_limit = ((pl.limit.value() / units.power_w).round() as u64) & 0x7FFF;
    let mut raw = raw_limit;
    if pl.enabled {
        raw |= 1 << 15;
    }
    if pl.clamp {
        raw |= 1 << 16;
    }
    let (e, f) = encode_time_window(pl.time_window.value() / units.time_s);
    raw |= (u64::from(e) & 0x1F) << 17;
    raw |= (u64::from(f) & 0x3) << 22;
    raw
}

/// Decode PL1 fields from the raw register layout.
pub fn decode_power_limit(raw: u64, units: &RaplUnits) -> PowerLimit {
    let limit = Watts((raw & 0x7FFF) as f64 * units.power_w);
    let enabled = raw & (1 << 15) != 0;
    let clamp = raw & (1 << 16) != 0;
    let e = ((raw >> 17) & 0x1F) as u32;
    let f = ((raw >> 22) & 0x3) as u32;
    let window_units = (1.0 + f64::from(f) / 4.0) * (1u64 << e) as f64;
    PowerLimit {
        limit,
        enabled,
        clamp,
        time_window: Seconds(window_units * units.time_s),
    }
}

/// Encode a time window (in time units) as `(E, F)` with value
/// `(1 + F/4) * 2^E`, picking the closest representable value.
fn encode_time_window(units: f64) -> (u32, u32) {
    let mut best = (0u32, 0u32);
    let mut best_err = f64::INFINITY;
    for e in 0..32u32 {
        for f in 0..4u32 {
            let v = (1.0 + f64::from(f) / 4.0) * (1u64 << e) as f64;
            let err = (v - units).abs();
            if err < best_err {
                best_err = err;
                best = (e, f);
            }
        }
    }
    best
}

/// The RAPL domains modeled by the simulator: the package plane and the
/// optional PP0 (core) and DRAM sub-planes, addressed scaphandre-style
/// through their own limit and energy-status MSRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// The whole package (`0x610`/`0x611`).
    Pkg,
    /// Power plane 0, the cores (`0x638`/`0x639`).
    Pp0,
    /// The DRAM plane (`0x618`/`0x619`).
    Dram,
}

impl RaplDomain {
    /// All three domains, package first.
    pub const ALL: [Self; 3] = [Self::Pkg, Self::Pp0, Self::Dram];

    /// Stable lowercase name (metrics labels, wire formats).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Pkg => "pkg",
            Self::Pp0 => "pp0",
            Self::Dram => "dram",
        }
    }

    /// Index into per-domain arrays (`Pkg` = 0).
    pub fn index(&self) -> usize {
        match self {
            Self::Pkg => 0,
            Self::Pp0 => 1,
            Self::Dram => 2,
        }
    }
}

impl std::fmt::Display for RaplDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static split describing how a package's draw maps onto its sub-planes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainConfig {
    /// Fraction of package power drawn by the core plane (PP0), in `(0, 1]`.
    pub pp0_fraction: f64,
    /// DRAM-plane power per package while the package draws any power.
    pub dram_power: Watts,
}

impl DomainConfig {
    fn validate(&self) -> Result<()> {
        if !(self.pp0_fraction > 0.0 && self.pp0_fraction <= 1.0) {
            return Err(SimHwError::InvalidParameter(format!(
                "pp0_fraction {} outside (0, 1]",
                self.pp0_fraction
            )));
        }
        if !self.dram_power.is_valid() || self.dram_power.value() <= 0.0 {
            return Err(SimHwError::InvalidParameter(
                "dram_power must be finite and positive".into(),
            ));
        }
        Ok(())
    }
}

/// State of one sub-plane (PP0 or DRAM): its own exact energy, enforcement
/// filter, settable range, and stuck-fault latch. Registers live in the
/// owning package's MSR device.
#[derive(Debug, Clone)]
struct SubDomain {
    energy_exact: Joules,
    enforced: Watts,
    min_limit: Watts,
    max_limit: Watts,
    /// A stuck-RAPL fault pinned this plane's limit; writes silently latch.
    stuck: Option<Watts>,
    limit_msr: u32,
    energy_msr: u32,
}

impl SubDomain {
    fn new(min_limit: Watts, max_limit: Watts, limit_msr: u32, energy_msr: u32) -> Self {
        Self {
            energy_exact: Joules::ZERO,
            enforced: max_limit,
            min_limit,
            max_limit,
            stuck: None,
            limit_msr,
            energy_msr,
        }
    }
}

/// One RAPL package domain (one CPU socket) with its MSR device, energy
/// accounting, and limit-enforcement filter.
#[derive(Debug, Clone)]
pub struct RaplPackage {
    msrs: MsrDevice,
    units: RaplUnits,
    /// Exact accumulated energy (the 32-bit counter is derived from this).
    energy_exact: Joules,
    /// The limit the enforcement loop is currently holding (settles toward
    /// the programmed PL1 with the time-window constant).
    enforced: Watts,
    /// Settable range, from `MSR_PKG_POWER_INFO`.
    min_limit: Watts,
    max_limit: Watts,
    tdp: Watts,
    /// Optional sub-plane split; `None` keeps the package PKG-only with the
    /// exact pre-domain semantics.
    domains: Option<DomainConfig>,
    pp0: Option<SubDomain>,
    dram: Option<SubDomain>,
}

impl RaplPackage {
    /// A package with the given TDP and settable limit range. The limit is
    /// initialized to TDP (the power-on default), enabled, with a 1 s PL1
    /// window.
    pub fn new(tdp: Watts, min_limit: Watts, max_limit: Watts) -> Result<Self> {
        if !(tdp.is_valid() && min_limit.is_valid() && max_limit.is_valid()) {
            return Err(SimHwError::InvalidParameter(
                "RAPL package powers must be finite and non-negative".into(),
            ));
        }
        if min_limit > max_limit {
            return Err(SimHwError::InvalidParameter(format!(
                "min limit {min_limit} exceeds max limit {max_limit}"
            )));
        }
        let mut msrs = MsrDevice::with_default_allowlist();
        msrs.hw_store(address::RAPL_POWER_UNIT, DEFAULT_UNIT_REGISTER);
        let units = RaplUnits::decode(DEFAULT_UNIT_REGISTER);

        // MSR_PKG_POWER_INFO: TDP bits 14:0, min 30:16, max 46:32.
        let tdp_u = (tdp.value() / units.power_w).round() as u64 & 0x7FFF;
        let min_u = (min_limit.value() / units.power_w).round() as u64 & 0x7FFF;
        let max_u = (max_limit.value() / units.power_w).round() as u64 & 0x7FFF;
        msrs.hw_store(
            address::PKG_POWER_INFO,
            tdp_u | (min_u << 16) | (max_u << 32),
        );

        let mut pkg = Self {
            msrs,
            units,
            energy_exact: Joules::ZERO,
            enforced: tdp,
            min_limit,
            max_limit,
            tdp,
            domains: None,
            pp0: None,
            dram: None,
        };
        pkg.set_limit(PowerLimit {
            limit: tdp,
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        })?;
        Ok(pkg)
    }

    /// The decoded RAPL units.
    pub fn units(&self) -> RaplUnits {
        self.units
    }

    /// The package TDP.
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    /// Minimum settable power limit.
    pub fn min_limit(&self) -> Watts {
        self.min_limit
    }

    /// Maximum settable power limit.
    pub fn max_limit(&self) -> Watts {
        self.max_limit
    }

    /// Program PL1. Limits outside the part's settable range are rejected,
    /// matching hardware which silently clamps — we make it an error so the
    /// software stack above must do its own clamping deliberately.
    pub fn set_limit(&mut self, pl: PowerLimit) -> Result<()> {
        if pl.limit < self.min_limit || pl.limit > self.max_limit {
            return Err(SimHwError::PowerLimitOutOfRange {
                requested_w: pl.limit.value(),
                min_w: self.min_limit.value(),
                max_w: self.max_limit.value(),
            });
        }
        let raw = encode_power_limit(&pl, &self.units);
        self.msrs.write(address::PKG_POWER_LIMIT, raw)
    }

    /// The currently programmed PL1 fields.
    pub fn limit(&self) -> PowerLimit {
        decode_power_limit(self.msrs.hw_load(address::PKG_POWER_LIMIT), &self.units)
    }

    /// The limit the enforcement loop currently holds. This settles toward
    /// the programmed PL1 with the PL1 time-window constant whenever
    /// [`Self::advance`] is called.
    pub fn enforced_limit(&self) -> Watts {
        if self.limit().enabled {
            self.enforced
        } else {
            self.max_limit
        }
    }

    /// Advance hardware state by `dt` while the package draws `power`:
    /// accumulates the energy counter (with 32-bit wraparound) and settles
    /// the enforcement filter toward the programmed limit.
    pub fn advance(&mut self, dt: Seconds, power: Watts) {
        debug_assert!(dt.is_valid() && power.is_valid());
        self.energy_exact += power * dt;
        let counts = (self.energy_exact.value() / self.units.energy_j) as u64;
        self.msrs
            .hw_store(address::PKG_ENERGY_STATUS, counts & 0xFFFF_FFFF);

        let (target, tau) = self.enforcement_params();
        let alpha = 1.0 - (-dt.value() / tau).exp();
        self.enforced += (target - self.enforced) * alpha;

        if self.domains.is_some() {
            self.advance_sub_domains(dt, power);
        }
    }

    /// Advance the PP0/DRAM planes alongside the package: independent energy
    /// counters (same 32-bit wrap semantics), independent enforcement
    /// filters. Runs only when sub-domains are enabled, so PKG-only packages
    /// execute exactly the pre-domain arithmetic.
    fn advance_sub_domains(&mut self, dt: Seconds, power: Watts) {
        let cfg = self.domains.expect("checked by caller");
        DOMAIN_ADVANCED.inc();
        let energy_j = self.units.energy_j;
        let pkg_target = {
            let (target, _) = self.enforcement_params();
            target
        };
        let units = self.units;

        if let Some(pp0) = self.pp0.as_mut() {
            let draw = power * cfg.pp0_fraction;
            pp0.energy_exact += draw * dt;
            let counts = (pp0.energy_exact.value() / energy_j) as u64;
            let msr = pp0.energy_msr;
            let pl = decode_power_limit(self.msrs.hw_load(pp0.limit_msr), &units);
            // Clamp ordering: the plane's own limit applies first, then the
            // package share caps it — equivalently the min of the two.
            let own = if pl.enabled { pl.limit } else { pp0.max_limit };
            let target = own.min(pkg_target * cfg.pp0_fraction);
            let tau = pl.time_window.value().max(1e-3);
            let alpha = 1.0 - (-dt.value() / tau).exp();
            pp0.enforced += (target - pp0.enforced) * alpha;
            self.msrs.hw_store(msr, counts & 0xFFFF_FFFF);
        }
        if let Some(dram) = self.dram.as_mut() {
            // The DRAM plane sits outside the package's power envelope: it
            // draws its configured power whenever the package is live.
            let draw = if power.value() > 0.0 {
                cfg.dram_power
            } else {
                Watts::ZERO
            };
            dram.energy_exact += draw * dt;
            let counts = (dram.energy_exact.value() / energy_j) as u64;
            let msr = dram.energy_msr;
            let pl = decode_power_limit(self.msrs.hw_load(dram.limit_msr), &units);
            let target = if pl.enabled { pl.limit } else { dram.max_limit };
            let tau = pl.time_window.value().max(1e-3);
            let alpha = 1.0 - (-dt.value() / tau).exp();
            dram.enforced += (target - dram.enforced) * alpha;
            self.msrs.hw_store(msr, counts & 0xFFFF_FFFF);
        }
    }

    /// Enable the PP0/DRAM sub-planes with the given split. The PP0 settable
    /// range is the package range scaled by the core-plane fraction; the
    /// DRAM range is `[0, 2·dram_power]`. Each plane's limit register is
    /// initialized to its maximum, enabled, with a 1 s window.
    pub fn enable_domains(&mut self, cfg: DomainConfig) -> Result<()> {
        cfg.validate()?;
        let pp0 = SubDomain::new(
            self.min_limit * cfg.pp0_fraction,
            self.max_limit * cfg.pp0_fraction,
            address::PP0_POWER_LIMIT,
            address::PP0_ENERGY_STATUS,
        );
        let dram = SubDomain::new(
            Watts::ZERO,
            cfg.dram_power * 2.0,
            address::DRAM_POWER_LIMIT,
            address::DRAM_ENERGY_STATUS,
        );
        for d in [&pp0, &dram] {
            let pl = PowerLimit {
                limit: d.max_limit,
                enabled: true,
                clamp: true,
                time_window: Seconds(1.0),
            };
            let raw = encode_power_limit(&pl, &self.units);
            self.msrs.write(d.limit_msr, raw)?;
        }
        self.domains = Some(cfg);
        self.pp0 = Some(pp0);
        self.dram = Some(dram);
        Ok(())
    }

    /// Whether PP0/DRAM sub-planes are enabled.
    pub fn has_domains(&self) -> bool {
        self.domains.is_some()
    }

    /// The sub-plane split, when enabled.
    pub fn domain_config(&self) -> Option<DomainConfig> {
        self.domains
    }

    fn sub_domain(&self, d: RaplDomain) -> Result<&SubDomain> {
        let sub = match d {
            RaplDomain::Pkg => None,
            RaplDomain::Pp0 => self.pp0.as_ref(),
            RaplDomain::Dram => self.dram.as_ref(),
        };
        sub.ok_or_else(|| {
            SimHwError::InvalidParameter(format!("domain {} not enabled on this package", d))
        })
    }

    /// Program a sub-plane limit. Unlike the package's [`Self::set_limit`],
    /// requests are *clamped* into the plane's settable range (hardware
    /// semantics for the secondary planes) — clamp to the range first, then
    /// a stuck-RAPL fault latch wins. Returns the watts actually programmed.
    /// `RaplDomain::Pkg` is rejected; the package plane keeps its explicit
    /// reject-out-of-range contract.
    pub fn set_domain_limit(&mut self, d: RaplDomain, limit: Watts) -> Result<Watts> {
        if d == RaplDomain::Pkg {
            return Err(SimHwError::InvalidParameter(
                "package limits go through set_limit".into(),
            ));
        }
        let sub = self.sub_domain(d)?;
        let (min, max, stuck, msr) = (sub.min_limit, sub.max_limit, sub.stuck, sub.limit_msr);
        let clamped = limit.clamp(min, max);
        if clamped != limit {
            DOMAIN_CLAMPED.inc();
        }
        let programmed = match stuck {
            Some(pinned) => {
                DOMAIN_STUCK_LATCHED.inc();
                pinned
            }
            None => clamped,
        };
        let pl = PowerLimit {
            limit: programmed,
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        };
        let raw = encode_power_limit(&pl, &self.units);
        self.msrs.write(msr, raw)?;
        DOMAIN_LIMIT_WRITES.inc();
        Ok(programmed)
    }

    /// Pin a sub-plane's limit to `pinned_w`: subsequent writes to that
    /// plane silently latch the pinned value while sibling planes (and the
    /// package plane) stay live.
    pub fn inject_domain_stuck(&mut self, d: RaplDomain, pinned_w: Watts) -> Result<()> {
        if d == RaplDomain::Pkg {
            return Err(SimHwError::InvalidParameter(
                "package-plane stuck faults are injected at the node level".into(),
            ));
        }
        let sub = self.sub_domain(d)?;
        let pinned = pinned_w.clamp(sub.min_limit, sub.max_limit);
        match d {
            RaplDomain::Pp0 => self.pp0.as_mut().expect("checked").stuck = Some(pinned),
            RaplDomain::Dram => self.dram.as_mut().expect("checked").stuck = Some(pinned),
            RaplDomain::Pkg => unreachable!(),
        }
        let pl = PowerLimit {
            limit: pinned,
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        };
        let raw = encode_power_limit(&pl, &self.units);
        let msr = self.sub_domain(d)?.limit_msr;
        self.msrs.write(msr, raw)?;
        Ok(())
    }

    /// Exact accumulated energy of one domain.
    pub fn domain_energy(&self, d: RaplDomain) -> Result<Joules> {
        match d {
            RaplDomain::Pkg => Ok(self.energy_exact),
            _ => Ok(self.sub_domain(d)?.energy_exact),
        }
    }

    /// A domain's currently-enforced limit.
    pub fn domain_enforced(&self, d: RaplDomain) -> Result<Watts> {
        match d {
            RaplDomain::Pkg => Ok(self.enforced_limit()),
            _ => Ok(self.sub_domain(d)?.enforced),
        }
    }

    /// A domain's decoded limit register.
    pub fn domain_limit(&self, d: RaplDomain) -> Result<PowerLimit> {
        match d {
            RaplDomain::Pkg => Ok(self.limit()),
            _ => {
                let msr = self.sub_domain(d)?.limit_msr;
                Ok(decode_power_limit(self.msrs.hw_load(msr), &self.units))
            }
        }
    }

    /// Read a domain's raw 32-bit energy counter through the allowlist.
    pub fn read_domain_energy_counter(&self, d: RaplDomain) -> Result<u32> {
        let msr = match d {
            RaplDomain::Pkg => address::PKG_ENERGY_STATUS,
            _ => self.sub_domain(d)?.energy_msr,
        };
        Ok(self.msrs.read(msr)? as u32)
    }

    /// The per-step enforcement inputs `(target, tau)` exactly as
    /// [`Self::advance`] decodes them from the PL1 register: the programmed
    /// limit when enabled (else the package max), and the floored time
    /// window. The columnar [`crate::bank::NodeBank`] caches these between
    /// limit writes instead of re-decoding the MSR every step.
    pub(crate) fn enforcement_params(&self) -> (Watts, f64) {
        let pl = self.limit();
        let target = if pl.enabled { pl.limit } else { self.max_limit };
        (target, pl.time_window.value().max(1e-3))
    }

    /// Whether PL1 is currently enabled (drives the disabled-limit fallback
    /// of [`Self::enforced_limit`]).
    pub(crate) fn limit_enabled(&self) -> bool {
        self.limit().enabled
    }

    /// Hot-state snapshot for the columnar bank: exact energy + the
    /// enforcement filter's held limit.
    pub(crate) fn hot_state(&self) -> (Joules, Watts) {
        (self.energy_exact, self.enforced)
    }

    /// Restore hot state from the columnar bank and bring the energy-status
    /// counter MSR up to date. Each per-step counter store overwrites the
    /// previous one, so storing once from the final exact energy is
    /// value-equivalent to the stores [`Self::advance`] would have made.
    pub(crate) fn set_hot_state(&mut self, energy: Joules, enforced: Watts) {
        self.energy_exact = energy;
        self.enforced = enforced;
        let counts = (self.energy_exact.value() / self.units.energy_j) as u64;
        self.msrs
            .hw_store(address::PKG_ENERGY_STATUS, counts & 0xFFFF_FFFF);
    }

    /// Read the raw 32-bit energy counter (what a tool like GEOPM samples).
    pub fn read_energy_counter(&self) -> Result<u32> {
        Ok(self.msrs.read(address::PKG_ENERGY_STATUS)? as u32)
    }

    /// Exact accumulated energy (simulation-side ground truth, used by
    /// tests to validate counter-based sampling).
    pub fn exact_energy(&self) -> Joules {
        self.energy_exact
    }

    /// Access the underlying MSR device (for tooling that goes through the
    /// register interface directly).
    pub fn msrs(&self) -> &MsrDevice {
        &self.msrs
    }

    /// Mutable access to the underlying MSR device.
    pub fn msrs_mut(&mut self) -> &mut MsrDevice {
        &mut self.msrs
    }
}

/// Computes energy deltas from successive 32-bit counter reads, handling
/// wraparound — the standard idiom for RAPL sampling loops.
#[derive(Debug, Clone, Copy)]
pub struct EnergyCounterReader {
    last: Option<u32>,
    energy_per_count: Joules,
}

impl EnergyCounterReader {
    /// A reader using the given units.
    pub fn new(units: &RaplUnits) -> Self {
        Self {
            last: None,
            energy_per_count: Joules(units.energy_j),
        }
    }

    /// Feed a new counter sample; returns the energy consumed since the
    /// previous sample (zero for the first).
    pub fn sample(&mut self, counter: u32) -> Joules {
        let delta = match self.last {
            None => 0u32,
            Some(prev) => counter.wrapping_sub(prev),
        };
        self.last = Some(counter);
        self.energy_per_count * f64::from(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkg() -> RaplPackage {
        RaplPackage::new(Watts(120.0), Watts(68.0), Watts(135.0)).unwrap()
    }

    #[test]
    fn units_decode_matches_broadwell() {
        let u = RaplUnits::decode(DEFAULT_UNIT_REGISTER);
        assert!((u.power_w - 0.125).abs() < 1e-12);
        assert!((u.energy_j - 1.0 / 16384.0).abs() < 1e-12);
        assert!((u.time_s - 1.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn power_limit_roundtrip() {
        let u = RaplUnits::decode(DEFAULT_UNIT_REGISTER);
        let pl = PowerLimit {
            limit: Watts(91.5),
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        };
        let decoded = decode_power_limit(encode_power_limit(&pl, &u), &u);
        assert!((decoded.limit.value() - 91.5).abs() < u.power_w);
        assert!(decoded.enabled);
        assert!(decoded.clamp);
        // Window is quantized to (1+F/4)*2^E time units.
        assert!((decoded.time_window.value() - 1.0).abs() < 0.1);
    }

    #[test]
    fn limits_outside_range_are_rejected() {
        let mut p = pkg();
        let err = p
            .set_limit(PowerLimit {
                limit: Watts(20.0),
                enabled: true,
                clamp: true,
                time_window: Seconds(1.0),
            })
            .unwrap_err();
        assert!(matches!(err, SimHwError::PowerLimitOutOfRange { .. }));
    }

    #[test]
    fn energy_counter_accumulates_and_wraps() {
        let mut p = pkg();
        let u = p.units();
        // Drive enough energy through to wrap the 32-bit counter
        // (2^32 * 61 µJ ≈ 262 kJ).
        let wrap_j = u.energy_j * 4294967296.0;
        p.advance(Seconds(1.0), Watts(wrap_j - 100.0));
        let c1 = p.read_energy_counter().unwrap();
        p.advance(Seconds(1.0), Watts(200.0));
        let c2 = p.read_energy_counter().unwrap();
        assert!(c2 < c1, "counter must wrap");

        let mut rd = EnergyCounterReader::new(&u);
        rd.sample(c1);
        let delta = rd.sample(c2);
        assert!(
            (delta.value() - 200.0).abs() < 1.0,
            "wraparound-corrected delta ≈ 200 J, got {delta}"
        );
    }

    #[test]
    fn enforcement_filter_settles_with_time_window() {
        let mut p = pkg();
        p.set_limit(PowerLimit {
            limit: Watts(70.0),
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        })
        .unwrap();
        // Immediately after the write the enforced limit is still near TDP.
        assert!(p.enforced_limit().value() > 100.0);
        // After several time windows, it has settled onto the target.
        for _ in 0..50 {
            p.advance(Seconds(0.2), Watts(100.0));
        }
        assert!((p.enforced_limit().value() - 70.0).abs() < 0.5);
    }

    #[test]
    fn disabled_limit_enforces_max() {
        let mut p = pkg();
        p.set_limit(PowerLimit {
            limit: Watts(70.0),
            enabled: false,
            clamp: false,
            time_window: Seconds(1.0),
        })
        .unwrap();
        assert_eq!(p.enforced_limit(), p.max_limit());
    }

    #[test]
    fn power_info_register_reports_range() {
        let p = pkg();
        let raw = p.msrs().read(address::PKG_POWER_INFO).unwrap();
        let u = p.units();
        let tdp = (raw & 0x7FFF) as f64 * u.power_w;
        let min = ((raw >> 16) & 0x7FFF) as f64 * u.power_w;
        let max = ((raw >> 32) & 0x7FFF) as f64 * u.power_w;
        assert!((tdp - 120.0).abs() < u.power_w);
        assert!((min - 68.0).abs() < u.power_w);
        assert!((max - 135.0).abs() < u.power_w);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(RaplPackage::new(Watts(120.0), Watts(135.0), Watts(68.0)).is_err());
        assert!(RaplPackage::new(Watts(f64::NAN), Watts(68.0), Watts(135.0)).is_err());
    }
}
