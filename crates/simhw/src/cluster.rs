//! A cluster of simulated nodes.

use crate::error::{Result, SimHwError};
use crate::faults::{FaultKind, NodeHealth};
use crate::node::{Node, NodeId};
use crate::power::{MachineSpec, PowerModel};
use crate::units::Watts;
use crate::variation::{VariationModel, VariationProfile};

/// Builder for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    spec: MachineSpec,
    nodes: usize,
    profile: VariationProfile,
    seed: u64,
}

impl ClusterBuilder {
    /// Start from a machine spec.
    pub fn new(spec: MachineSpec) -> Self {
        Self {
            spec,
            nodes: 0,
            profile: VariationProfile::quartz(),
            seed: 0,
        }
    }

    /// Number of nodes to instantiate.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Variation profile for node efficiency factors.
    pub fn variation(mut self, profile: VariationProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Seed for the variation sampler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the cluster.
    pub fn build(self) -> Result<Cluster> {
        if self.nodes == 0 {
            return Err(SimHwError::InvalidParameter(
                "cluster must have at least one node".into(),
            ));
        }
        let model = PowerModel::new(self.spec)?;
        let mut sampler = VariationModel::new(self.profile, self.seed);
        let nodes = (0..self.nodes)
            .map(|i| Node::new(NodeId(i), &model, sampler.sample()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster { model, nodes })
    }
}

/// A set of nodes sharing one machine model.
#[derive(Debug, Clone)]
pub struct Cluster {
    model: PowerModel,
    nodes: Vec<Node>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder(spec: MachineSpec) -> ClusterBuilder {
        ClusterBuilder::new(spec)
    }

    /// The shared power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster holds no nodes (cannot happen via the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to all nodes.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// One node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(SimHwError::UnknownNode(id.0))
    }

    /// One node by id, mutably.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        self.nodes
            .get_mut(id.0)
            .ok_or(SimHwError::UnknownNode(id.0))
    }

    /// Sum of all programmed node power limits.
    pub fn total_power_limit(&self) -> Watts {
        self.nodes.iter().map(|n| n.power_limit()).sum()
    }

    /// Total TDP across the cluster.
    pub fn total_tdp(&self) -> Watts {
        self.model.spec().tdp_per_node() * self.nodes.len() as f64
    }

    /// Minimum total settable power across the cluster.
    pub fn total_min_limit(&self) -> Watts {
        self.model.spec().min_rapl_per_node() * self.nodes.len() as f64
    }

    /// The node efficiency factors, indexed by node id.
    pub fn efficiency_factors(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.eps()).collect()
    }

    /// Per-node health, indexed by node id.
    pub fn health(&self) -> Vec<NodeHealth> {
        self.nodes.iter().map(|n| n.health()).collect()
    }

    /// One node's health.
    pub fn node_health(&self, id: NodeId) -> Result<NodeHealth> {
        self.node(id).map(|n| n.health())
    }

    /// Ids of nodes that are not fail-stop dead.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !n.is_dead())
            .map(|n| n.id())
            .collect()
    }

    /// Ids of fail-stop dead nodes.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_dead())
            .map(|n| n.id())
            .collect()
    }

    /// Number of nodes that are not fail-stop dead.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_dead()).count()
    }

    /// Inject a fault into one node.
    pub fn inject(&mut self, id: NodeId, kind: FaultKind) -> Result<()> {
        self.node_mut(id)?.inject(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quartz::quartz_spec;

    #[test]
    fn builder_produces_seeded_population() {
        let a = Cluster::builder(quartz_spec())
            .nodes(50)
            .seed(11)
            .build()
            .unwrap();
        let b = Cluster::builder(quartz_spec())
            .nodes(50)
            .seed(11)
            .build()
            .unwrap();
        assert_eq!(a.efficiency_factors(), b.efficiency_factors());
    }

    #[test]
    fn empty_cluster_rejected() {
        assert!(Cluster::builder(quartz_spec()).nodes(0).build().is_err());
    }

    #[test]
    fn totals_scale_with_node_count() {
        let c = Cluster::builder(quartz_spec()).nodes(900).build().unwrap();
        assert_eq!(c.total_tdp(), Watts(216_000.0));
        assert_eq!(c.total_min_limit(), Watts(122_400.0));
    }

    #[test]
    fn unknown_node_errors() {
        let c = Cluster::builder(quartz_spec()).nodes(3).build().unwrap();
        assert!(c.node(NodeId(3)).is_err());
        assert!(c.node(NodeId(2)).is_ok());
    }

    #[test]
    fn health_surface_tracks_injected_faults() {
        let mut c = Cluster::builder(quartz_spec()).nodes(4).build().unwrap();
        assert_eq!(c.alive_count(), 4);
        assert!(c.health().iter().all(|&h| h == NodeHealth::Healthy));
        c.inject(NodeId(2), FaultKind::NodeDeath).unwrap();
        assert_eq!(c.alive_count(), 3);
        assert_eq!(c.dead_nodes(), vec![NodeId(2)]);
        assert_eq!(c.node_health(NodeId(2)).unwrap(), NodeHealth::Dead);
        assert!(c.alive_nodes().iter().all(|&id| id != NodeId(2)));
        assert!(c.inject(NodeId(9), FaultKind::NodeDeath).is_err());
    }

    #[test]
    fn uniform_variation_gives_identical_nodes() {
        let c = Cluster::builder(quartz_spec())
            .nodes(10)
            .variation(VariationProfile::uniform())
            .build()
            .unwrap();
        assert!(c.efficiency_factors().iter().all(|&e| e == 1.0));
    }
}
