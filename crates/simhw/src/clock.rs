//! Simulation clock.
//!
//! All time in the stack is simulated. The clock is a monotonic f64 of
//! seconds with helpers for fixed control intervals, mirroring how GEOPM's
//! controller wakes on a fixed cadence.

use crate::units::Seconds;

/// A monotonic simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    now: Seconds,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self { now: Seconds::ZERO }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advance the clock by `dt`. Panics (in debug builds) on negative or
    /// non-finite steps, which always indicate a harness bug.
    pub fn advance(&mut self, dt: Seconds) {
        debug_assert!(dt.is_valid(), "clock step must be finite and >= 0");
        self.now += dt;
    }

    /// Number of whole control periods of length `period` that have elapsed.
    pub fn ticks(&self, period: Seconds) -> u64 {
        if period.value() <= 0.0 {
            return 0;
        }
        (self.now.value() / period.value()).floor() as u64
    }
}

/// An iterator of fixed-size steps covering `[0, total)`, yielding
/// `(t_start, dt)` pairs. The final step is truncated so steps exactly tile
/// the interval.
#[derive(Debug, Clone)]
pub struct FixedSteps {
    t: f64,
    total: f64,
    dt: f64,
}

impl FixedSteps {
    /// Steps of nominal size `dt` covering `total` seconds.
    pub fn new(total: Seconds, dt: Seconds) -> Self {
        Self {
            t: 0.0,
            total: total.value().max(0.0),
            dt: dt.value().max(f64::MIN_POSITIVE),
        }
    }
}

impl Iterator for FixedSteps {
    type Item = (Seconds, Seconds);

    fn next(&mut self) -> Option<Self::Item> {
        if self.t >= self.total - 1e-12 {
            return None;
        }
        let start = self.t;
        let step = self.dt.min(self.total - self.t);
        self.t += step;
        Some((Seconds(start), Seconds(step)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(Seconds(0.5));
        c.advance(Seconds(0.25));
        assert!((c.now().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ticks_counts_periods() {
        let mut c = SimClock::new();
        c.advance(Seconds(1.05));
        assert_eq!(c.ticks(Seconds(0.5)), 2);
        assert_eq!(c.ticks(Seconds::ZERO), 0);
    }

    #[test]
    fn fixed_steps_tile_interval_exactly() {
        let steps: Vec<_> = FixedSteps::new(Seconds(1.0), Seconds(0.3)).collect();
        assert_eq!(steps.len(), 4);
        let total: f64 = steps.iter().map(|(_, dt)| dt.value()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Last step is the truncated remainder.
        assert!((steps[3].1.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fixed_steps_empty_interval() {
        assert_eq!(FixedSteps::new(Seconds::ZERO, Seconds(0.1)).count(), 0);
    }
}
