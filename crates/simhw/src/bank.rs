//! Columnar (struct-of-arrays) hot-path storage for a fleet of [`Node`]s.
//!
//! The per-[`Node`] stepping path pays, on every node every iteration, a PL1
//! register decode (two `HashMap` loads), an energy-counter store (a
//! `HashMap` insert), and an `exp()` per package. None of that state changes
//! between control writes, so [`NodeBank`] hoists it into parallel columns:
//!
//! * **hot columns** — energy, enforced limit, last frequency, telemetry
//!   blackout countdown, MSR glitch flag. These are *authoritative* between
//!   control operations; the backing `Node`s go stale and are lazily
//!   re-synchronized by [`NodeBank::nodes`].
//! * **control mirrors** — enforcement target/τ, programmed limit, frequency
//!   cap, health, efficiency. Refreshed from the `Node` after every control
//!   operation, which is routed flush → `Node` method → refresh so the
//!   `Node` keeps full authority over fault semantics (stuck RAPL, glitch
//!   consumption, dead-node rejection).
//!
//! [`NodeBank::step_all`] replays exactly the arithmetic of
//! [`RaplPackage::advance`] over the columns — same operand values, same
//! operation order — so a bank-stepped fleet is bit-identical to a fleet
//! stepped through [`Node::try_step`] (property-tested in
//! `pmstack-runtime/tests/columnar.rs`). It additionally reports whether the
//! enforcement filters reached a bitwise fixed point, which is what arms the
//! runtime's steady-state fast-forward.

use crate::error::Result;
use crate::faults::{FaultKind, NodeHealth};
use crate::node::Node;
use crate::power::{LoadModel, OperatingPoint, PowerModel};
use crate::units::{Hertz, Joules, Seconds, Watts};
use pmstack_obs::StaticCounter;

/// Observability: batched stepping calls.
static STEP_ALL_CALLS: StaticCounter = StaticCounter::new("simhw.step_all.calls");
/// Observability: batched steps whose enforcement filters were all at their
/// bitwise fixed point (the steady-state signal).
static STEP_ALL_SETTLED: StaticCounter = StaticCounter::new("simhw.step_all.settled");

/// Outcome of one host's step inside [`NodeBank::step_all`], mirroring the
/// three ways [`Node::try_step`] can go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostStep {
    /// The host was not stepped (no operating point supplied — dead host).
    Skipped,
    /// Hardware advanced and telemetry read back cleanly.
    Fresh,
    /// Hardware advanced but the telemetry read failed (blackout or
    /// transient MSR fault) — the caller must fall back on stale data.
    Stale,
}

/// Struct-of-arrays storage for a fleet of nodes with batched stepping.
///
/// Per-(host, socket) columns use index `host * sockets + socket`.
#[derive(Debug, Clone)]
pub struct NodeBank {
    nodes: Vec<Node>,
    sockets: usize,
    /// True while the backing `Node`s agree with the hot columns.
    hot_synced: bool,

    // Hot columns, per (host, socket): authoritative between control ops.
    energy: Vec<Joules>,
    enforced: Vec<Watts>,

    // Control mirrors, per (host, socket): refreshed after control ops.
    target: Vec<Watts>,
    tau: Vec<f64>,
    enabled: Vec<bool>,
    pkg_max: Vec<Watts>,

    // Hot columns, per host.
    last_freq: Vec<Hertz>,
    telemetry_down: Vec<u32>,
    msr_glitch: Vec<bool>,

    // Control mirrors, per host.
    eps: Vec<f64>,
    health: Vec<NodeHealth>,
    freq_cap: Vec<Option<Hertz>>,
    programmed: Vec<Watts>,
}

impl NodeBank {
    /// Build a bank over `nodes`. All nodes must have the same socket count
    /// (true of any cluster built from one machine spec).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let sockets = nodes.first().map_or(0, |n| n.packages().len());
        debug_assert!(
            nodes.iter().all(|n| n.packages().len() == sockets),
            "NodeBank requires a homogeneous socket count"
        );
        let n = nodes.len();
        let mut bank = Self {
            nodes,
            sockets,
            hot_synced: true,
            energy: vec![Joules::ZERO; n * sockets],
            enforced: vec![Watts(0.0); n * sockets],
            target: vec![Watts(0.0); n * sockets],
            tau: vec![1.0; n * sockets],
            enabled: vec![true; n * sockets],
            pkg_max: vec![Watts(0.0); n * sockets],
            last_freq: vec![Hertz(0.0); n],
            telemetry_down: vec![0; n],
            msr_glitch: vec![false; n],
            eps: vec![1.0; n],
            health: vec![NodeHealth::Healthy; n],
            freq_cap: vec![None; n],
            programmed: vec![Watts(0.0); n],
        };
        for h in 0..n {
            bank.refresh_node(h);
        }
        bank
    }

    /// Number of hosts in the bank.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the bank holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sockets per host.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// The host's efficiency factor ε.
    pub fn eps(&self, h: usize) -> f64 {
        self.eps[h]
    }

    /// The host's observed health.
    pub fn health(&self, h: usize) -> NodeHealth {
        self.health[h]
    }

    /// True unless the host is fail-stop dead.
    pub fn is_alive(&self, h: usize) -> bool {
        self.health[h] != NodeHealth::Dead
    }

    /// The host's programmed frequency cap, if any.
    pub fn freq_cap(&self, h: usize) -> Option<Hertz> {
        self.freq_cap[h]
    }

    /// The most recent lead frequency the host resolved.
    pub fn last_freq(&self, h: usize) -> Hertz {
        self.last_freq[h]
    }

    /// The host's programmed node-level limit (sum over sockets), matching
    /// [`Node::power_limit`].
    pub fn power_limit(&self, h: usize) -> Watts {
        self.programmed[h]
    }

    /// The limit the host's enforcement loops currently hold (sum over
    /// sockets), bit-identical to [`Node::enforced_limit`].
    pub fn enforced_limit(&self, h: usize) -> Watts {
        let s = self.sockets;
        (h * s..(h + 1) * s)
            .map(|i| {
                if self.enabled[i] {
                    self.enforced[i]
                } else {
                    self.pkg_max[i]
                }
            })
            .sum()
    }

    /// Cumulative exact host energy (sum over sockets), bit-identical to
    /// [`Node::energy`].
    pub fn energy(&self, h: usize) -> Joules {
        let s = self.sockets;
        (h * s..(h + 1) * s).map(|i| self.energy[i]).sum()
    }

    /// The operating point the host settles on right now, replicating
    /// [`Node::operating_point`] (PCU resolution under the enforced limit,
    /// clamped by any software frequency cap).
    pub fn operating_point<L: LoadModel + ?Sized>(
        &self,
        h: usize,
        model: &PowerModel,
        load: &L,
    ) -> OperatingPoint {
        let op = load.operating_point(model, self.eps[h], self.enforced_limit(h));
        match self.freq_cap[h] {
            Some(cap_f) if op.lead > cap_f => OperatingPoint {
                lead: cap_f,
                trail: op.trail.min(cap_f),
                power: load.node_power_at(model, self.eps[h], cap_f),
            },
            _ => op,
        }
    }

    /// True when no host has a pending telemetry blackout or MSR glitch —
    /// i.e. the hot flags hold no one-shot state a fast-forwarded iteration
    /// could consume differently from a stepped one.
    pub fn quiescent(&self) -> bool {
        self.telemetry_down.iter().all(|&t| t == 0) && self.msr_glitch.iter().all(|&g| !g)
    }

    /// Program a node-level power limit (routed through
    /// [`Node::set_power_limit`], so stuck-RAPL latching, glitch consumption
    /// and dead-node rejection behave exactly as on the per-node path).
    pub fn set_power_limit(&mut self, h: usize, limit: Watts) -> Result<()> {
        self.with_node_mut(h, |n| n.set_power_limit(limit))
    }

    /// Program or release a frequency cap (routed through
    /// [`Node::set_freq_cap`]).
    pub fn set_freq_cap(&mut self, h: usize, cap: Option<Hertz>) -> Result<()> {
        self.with_node_mut(h, |n| n.set_freq_cap(cap))
    }

    /// Apply an injected fault (routed through [`Node::inject`]).
    pub fn inject(&mut self, h: usize, kind: FaultKind) {
        self.with_node_mut(h, |n| n.inject(kind));
    }

    /// Mark the host suspect. Health is not hot state, so this bypasses the
    /// flush/refresh roundtrip — it is called every iteration by trust
    /// tracking.
    pub fn mark_suspect(&mut self, h: usize) {
        self.nodes[h].mark_suspect();
        self.health[h] = self.nodes[h].health();
    }

    /// Clear a suspect marking (dead hosts stay dead).
    pub fn mark_healthy(&mut self, h: usize) {
        self.nodes[h].mark_healthy();
        self.health[h] = self.nodes[h].health();
    }

    /// Advance every host with an operating point by `dt`, replaying exactly
    /// the arithmetic of [`Node::try_step`] over the columns:
    ///
    /// * energy accumulates at `op.power / sockets` per package;
    /// * each enforcement filter settles one `alpha` step toward its target;
    /// * `last_freq` latches `op.lead`;
    /// * telemetry blackouts count down and glitches are consumed, surfaced
    ///   as [`HostStep::Stale`].
    ///
    /// `ops[h] == None` means "do not step host `h`" (the dead-host path).
    /// Returns `true` when every stepped enforcement filter was already at
    /// its bitwise fixed point — the steady-state signal the fast-forward
    /// path keys on. `parallel` chunks the columns across the worker pool.
    pub fn step_all(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
    ) -> bool {
        let _span = pmstack_obs::span!("simhw.step_all.secs");
        STEP_ALL_CALLS.inc();
        let n = self.nodes.len();
        assert_eq!(ops.len(), n, "one operating point slot per host");
        assert_eq!(results.len(), n, "one result slot per host");
        self.hot_synced = false;
        let s = self.sockets;
        let workers = pmstack_exec::workers();
        if !parallel || workers <= 1 || n < 2 {
            let mut chunk = StepChunk {
                base: 0,
                energy: &mut self.energy,
                enforced: &mut self.enforced,
                last_freq: &mut self.last_freq,
                telemetry_down: &mut self.telemetry_down,
                msr_glitch: &mut self.msr_glitch,
                results,
                settled: true,
            };
            step_chunk(&mut chunk, s, dt, ops, &self.target, &self.tau);
            if chunk.settled {
                STEP_ALL_SETTLED.inc();
            }
            return chunk.settled;
        }

        let chunk_hosts = n.div_ceil(workers);
        let mut chunks: Vec<StepChunk<'_>> = Vec::with_capacity(workers);
        let (mut energy, mut enforced) = (&mut self.energy[..], &mut self.enforced[..]);
        let (mut last_freq, mut telemetry_down, mut msr_glitch, mut results) = (
            &mut self.last_freq[..],
            &mut self.telemetry_down[..],
            &mut self.msr_glitch[..],
            results,
        );
        let mut base = 0;
        while base < n {
            let take = chunk_hosts.min(n - base);
            let (ea, et) = energy.split_at_mut(take * s);
            let (fa, ft) = enforced.split_at_mut(take * s);
            let (la, lt) = last_freq.split_at_mut(take);
            let (ta, tt) = telemetry_down.split_at_mut(take);
            let (ma, mt) = msr_glitch.split_at_mut(take);
            let (ra, rt) = results.split_at_mut(take);
            energy = et;
            enforced = ft;
            last_freq = lt;
            telemetry_down = tt;
            msr_glitch = mt;
            results = rt;
            chunks.push(StepChunk {
                base,
                energy: ea,
                enforced: fa,
                last_freq: la,
                telemetry_down: ta,
                msr_glitch: ma,
                results: ra,
                settled: true,
            });
            base += take;
        }
        let (target, tau) = (&self.target, &self.tau);
        pmstack_exec::par_for_each_mut(&mut chunks, |_, chunk| {
            step_chunk(chunk, s, dt, ops, target, tau);
        });
        let settled = chunks.iter().all(|c| c.settled);
        if settled {
            STEP_ALL_SETTLED.inc();
        }
        settled
    }

    /// Fast-forward energy accumulation: add `deltas[h]` to every package of
    /// every live host. `deltas[h]` must be the per-package energy of one
    /// iteration (`per_socket_power * dt`, the exact product
    /// [`NodeBank::step_all`] would have added), so `k` calls are
    /// bit-identical to `k` stepped iterations of a settled fleet.
    pub fn replay_energy(&mut self, deltas: &[Joules]) {
        debug_assert_eq!(deltas.len(), self.nodes.len());
        self.hot_synced = false;
        let s = self.sockets;
        for (h, &delta) in deltas.iter().enumerate() {
            if self.health[h] == NodeHealth::Dead {
                continue;
            }
            for e in &mut self.energy[h * s..(h + 1) * s] {
                *e += delta;
            }
        }
    }

    /// The backing nodes, re-synchronized from the hot columns first. Use
    /// for read paths that want full `Node` views; control operations must
    /// go through the bank so the columns stay authoritative.
    pub fn nodes(&mut self) -> &[Node] {
        self.flush_all();
        &self.nodes
    }

    /// One backing node, re-synchronized from the hot columns first.
    pub fn node(&mut self, h: usize) -> &Node {
        self.flush_node(h);
        &self.nodes[h]
    }

    /// Tear the bank down into its (synchronized) nodes.
    pub fn into_nodes(mut self) -> Vec<Node> {
        self.flush_all();
        self.nodes
    }

    /// Route a control operation through the backing `Node`: flush the hot
    /// columns into it, run the operation, then refresh every mirror.
    fn with_node_mut<T>(&mut self, h: usize, f: impl FnOnce(&mut Node) -> T) -> T {
        self.flush_node(h);
        let out = f(&mut self.nodes[h]);
        self.refresh_node(h);
        out
    }

    fn flush_all(&mut self) {
        if self.hot_synced {
            return;
        }
        for h in 0..self.nodes.len() {
            self.flush_node(h);
        }
        self.hot_synced = true;
    }

    fn flush_node(&mut self, h: usize) {
        let s = self.sockets;
        for k in 0..s {
            let i = h * s + k;
            let (e, f) = (self.energy[i], self.enforced[i]);
            self.nodes[h].packages_mut()[k].set_hot_state(e, f);
        }
        let (lf, td, mg) = (
            self.last_freq[h],
            self.telemetry_down[h],
            self.msr_glitch[h],
        );
        self.nodes[h].set_hot_flags(lf, td, mg);
    }

    fn refresh_node(&mut self, h: usize) {
        let s = self.sockets;
        let node = &self.nodes[h];
        for (k, pkg) in node.packages().iter().enumerate() {
            let i = h * s + k;
            let (e, f) = pkg.hot_state();
            self.energy[i] = e;
            self.enforced[i] = f;
            let (target, tau) = pkg.enforcement_params();
            self.target[i] = target;
            self.tau[i] = tau;
            self.enabled[i] = pkg.limit_enabled();
            self.pkg_max[i] = pkg.max_limit();
        }
        let (lf, td, mg) = node.hot_flags();
        self.last_freq[h] = lf;
        self.telemetry_down[h] = td;
        self.msr_glitch[h] = mg;
        self.eps[h] = node.eps();
        self.health[h] = node.health();
        self.freq_cap[h] = node.freq_cap();
        self.programmed[h] = node.power_limit();
    }
}

/// One worker's disjoint view of the hot columns.
struct StepChunk<'a> {
    base: usize,
    energy: &'a mut [Joules],
    enforced: &'a mut [Watts],
    last_freq: &'a mut [Hertz],
    telemetry_down: &'a mut [u32],
    msr_glitch: &'a mut [bool],
    results: &'a mut [HostStep],
    settled: bool,
}

/// Step every host of one chunk. `alpha` is memoized on τ: every package
/// sharing a time window (the common case — all of them) reuses one `exp()`
/// per chunk instead of paying one per package per host.
fn step_chunk(
    chunk: &mut StepChunk<'_>,
    sockets: usize,
    dt: Seconds,
    ops: &[Option<OperatingPoint>],
    target: &[Watts],
    tau: &[f64],
) {
    let mut memo_tau = f64::NAN;
    let mut memo_alpha = 0.0;
    for i in 0..chunk.results.len() {
        let h = chunk.base + i;
        let Some(op) = ops[h] else {
            chunk.results[i] = HostStep::Skipped;
            continue;
        };
        chunk.last_freq[i] = op.lead;
        let per_socket = op.power / sockets as f64;
        for k in 0..sockets {
            let gi = h * sockets + k;
            let li = i * sockets + k;
            chunk.energy[li] += per_socket * dt;
            let t = tau[gi];
            if t != memo_tau {
                memo_alpha = 1.0 - (-dt.value() / t).exp();
                memo_tau = t;
            }
            let held = chunk.enforced[li];
            let next = held + (target[gi] - held) * memo_alpha;
            if next.value().to_bits() != held.value().to_bits() {
                chunk.settled = false;
            }
            chunk.enforced[li] = next;
        }
        chunk.results[i] = if chunk.telemetry_down[i] > 0 {
            chunk.telemetry_down[i] -= 1;
            HostStep::Stale
        } else if std::mem::take(&mut chunk.msr_glitch[i]) {
            HostStep::Stale
        } else {
            HostStep::Fresh
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::power::CoreClass;
    use crate::quartz::quartz_spec;

    struct FlatLoad {
        kappa: f64,
    }

    impl LoadModel for FlatLoad {
        fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
            model.node_power(
                eps,
                &[CoreClass {
                    count: model.spec().cores_used_per_node,
                    kappa: self.kappa,
                    freq: lead,
                }],
            )
        }
    }

    fn fleet(n: usize) -> (PowerModel, Vec<Node>) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..n)
            .map(|i| Node::new(NodeId(i), &model, 0.9 + 0.02 * i as f64).unwrap())
            .collect();
        (model, nodes)
    }

    /// Step the reference fleet and the bank in lockstep, asserting every
    /// observable is bit-identical after each iteration.
    fn assert_lockstep(
        model: &PowerModel,
        load: &FlatLoad,
        reference: &mut [Node],
        bank: &mut NodeBank,
        dt: Seconds,
        iterations: usize,
    ) {
        let n = reference.len();
        let mut ops = vec![None; n];
        let mut results = vec![HostStep::Skipped; n];
        for _ in 0..iterations {
            for (h, node) in reference.iter().enumerate() {
                ops[h] = (!node.is_dead()).then(|| bank.operating_point(h, model, load));
            }
            bank.step_all(dt, &ops, &mut results, false);
            for node in reference.iter_mut() {
                let _ = node.try_step(model, load, dt);
            }
            for (h, node) in reference.iter().enumerate() {
                assert_eq!(
                    bank.energy(h).value().to_bits(),
                    node.energy().value().to_bits(),
                    "energy diverged on host {h}"
                );
                assert_eq!(
                    bank.enforced_limit(h).value().to_bits(),
                    node.enforced_limit().value().to_bits(),
                    "enforced limit diverged on host {h}"
                );
            }
        }
    }

    #[test]
    fn bank_steps_bit_identically_to_nodes() {
        let (model, mut reference) = fleet(5);
        let load = FlatLoad { kappa: 2.7 };
        let mut bank = NodeBank::from_nodes(reference.clone());
        for (h, node) in reference.iter_mut().enumerate() {
            node.set_power_limit(Watts(170.0 + 10.0 * h as f64))
                .unwrap();
            bank.set_power_limit(h, Watts(170.0 + 10.0 * h as f64))
                .unwrap();
        }
        reference[2]
            .set_freq_cap(Some(Hertz::from_ghz(1.9)))
            .unwrap();
        bank.set_freq_cap(2, Some(Hertz::from_ghz(1.9))).unwrap();
        assert_lockstep(&model, &load, &mut reference, &mut bank, Seconds(0.2), 40);
    }

    #[test]
    fn bank_replicates_fault_semantics() {
        let (model, mut reference) = fleet(4);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(reference.clone());
        for (h, kind) in [
            (0, FaultKind::NodeDeath),
            (1, FaultKind::StuckRapl { pinned_w: 140.0 }),
            (2, FaultKind::TelemetryDropout { iterations: 3 }),
            (3, FaultKind::TransientMsrFault),
        ] {
            reference[h].inject(kind);
            bank.inject(h, kind);
        }
        assert!(!bank.is_alive(0));
        assert!(!bank.quiescent());
        // The stuck write latched the pinned value on both sides.
        assert_eq!(
            bank.power_limit(1).value().to_bits(),
            reference[1].power_limit().value().to_bits()
        );
        assert_lockstep(&model, &load, &mut reference, &mut bank, Seconds(0.2), 6);
        assert!(bank.quiescent(), "dropout and glitch should be consumed");
    }

    #[test]
    fn parallel_and_sequential_stepping_agree() {
        let (model, nodes) = fleet(9);
        let load = FlatLoad { kappa: 2.6 };
        let mut seq = NodeBank::from_nodes(nodes.clone());
        let mut par = NodeBank::from_nodes(nodes);
        for h in 0..seq.len() {
            seq.set_power_limit(h, Watts(180.0)).unwrap();
            par.set_power_limit(h, Watts(180.0)).unwrap();
        }
        let mut results_a = vec![HostStep::Skipped; seq.len()];
        let mut results_b = vec![HostStep::Skipped; par.len()];
        let mut ops = vec![None; seq.len()];
        for _ in 0..10 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(seq.operating_point(h, &model, &load));
            }
            let sa = seq.step_all(Seconds(0.2), &ops, &mut results_a, false);
            let sb = par.step_all(Seconds(0.2), &ops, &mut results_b, true);
            assert_eq!(sa, sb);
            assert_eq!(results_a, results_b);
        }
        for h in 0..seq.len() {
            assert_eq!(
                seq.energy(h).value().to_bits(),
                par.energy(h).value().to_bits()
            );
        }
    }

    #[test]
    fn settles_to_bitwise_fixed_point_and_replays_energy() {
        let (model, nodes) = fleet(3);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(nodes);
        for h in 0..bank.len() {
            bank.set_power_limit(h, Watts(160.0)).unwrap();
        }
        let dt = Seconds(0.25);
        let mut results = vec![HostStep::Skipped; bank.len()];
        let mut ops = vec![None; bank.len()];
        let mut settled = false;
        for _ in 0..2000 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(bank.operating_point(h, &model, &load));
            }
            settled = bank.step_all(dt, &ops, &mut results, false);
            if settled {
                break;
            }
        }
        assert!(settled, "enforcement must reach a bitwise fixed point");

        // From steady state, replaying k energy deltas matches k real steps.
        let mut stepped = bank.clone();
        let deltas: Vec<Joules> = (0..bank.len())
            .map(|h| {
                let op = bank.operating_point(h, &model, &load);
                op.power / bank.sockets() as f64 * dt
            })
            .collect();
        for _ in 0..7 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(stepped.operating_point(h, &model, &load));
            }
            stepped.step_all(dt, &ops, &mut results, false);
            bank.replay_energy(&deltas);
        }
        for h in 0..bank.len() {
            assert_eq!(
                bank.energy(h).value().to_bits(),
                stepped.energy(h).value().to_bits(),
                "fast-forwarded energy diverged on host {h}"
            );
        }
    }

    #[test]
    fn nodes_view_is_resynchronized() {
        let (model, nodes) = fleet(2);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(nodes);
        let mut results = vec![HostStep::Skipped; 2];
        let ops: Vec<_> = (0..2)
            .map(|h| Some(bank.operating_point(h, &model, &load)))
            .collect();
        for _ in 0..5 {
            bank.step_all(Seconds(0.2), &ops, &mut results, false);
        }
        let expect: Vec<u64> = (0..2).map(|h| bank.energy(h).value().to_bits()).collect();
        for (h, node) in bank.nodes().iter().enumerate() {
            assert_eq!(node.energy().value().to_bits(), expect[h]);
            // The energy-status MSR is brought up to date too.
            assert!(node.packages()[0].read_energy_counter().unwrap() > 0);
        }
        let nodes = bank.into_nodes();
        assert_eq!(nodes.len(), 2);
    }
}
