//! Columnar (struct-of-arrays) hot-path storage for a fleet of [`Node`]s.
//!
//! The per-[`Node`] stepping path pays, on every node every iteration, a PL1
//! register decode (two `HashMap` loads), an energy-counter store (a
//! `HashMap` insert), and an `exp()` per package. None of that state changes
//! between control writes, so [`NodeBank`] hoists it into parallel columns:
//!
//! * **hot columns** — energy, enforced limit, last frequency, telemetry
//!   blackout countdown, MSR glitch flag. These are *authoritative* between
//!   control operations; the backing `Node`s go stale and are lazily
//!   re-synchronized by [`NodeBank::nodes`].
//! * **control mirrors** — enforcement target/τ, programmed limit, frequency
//!   cap, health, efficiency. Refreshed from the `Node` after every control
//!   operation, which is routed flush → `Node` method → refresh so the
//!   `Node` keeps full authority over fault semantics (stuck RAPL, glitch
//!   consumption, dead-node rejection).
//!
//! [`NodeBank::step_all`] replays exactly the arithmetic of
//! [`RaplPackage::advance`] over the columns — same operand values, same
//! operation order — so a bank-stepped fleet is bit-identical to a fleet
//! stepped through [`Node::try_step`] (property-tested in
//! `pmstack-runtime/tests/columnar.rs`). It additionally reports whether the
//! enforcement filters reached a bitwise fixed point, which is what arms the
//! runtime's steady-state fast-forward.
//!
//! ## Segments
//!
//! The bank is sharded into fixed-size **segments** of
//! [`DEFAULT_SEGMENT_HOSTS`] hosts (tunable via
//! [`NodeBank::set_segment_hosts`]). Each segment carries its own cache slot
//! recording whether its enforcement filters sat at a bitwise fixed point
//! after the last step — and at which `dt` — so a control write or fault on
//! one host dirties only that host's segment.
//! [`NodeBank::step_all_partial`] exploits this: segments whose slot proves
//! "settled, quiescent, same `dt` bits" skip the filter updates entirely and
//! *replay* (energy accumulates `op.power / sockets * dt` per package —
//! exactly the product a real step would add — and `last_freq` latches
//! `op.lead`), while dirty segments take the full stepping arithmetic. The
//! replay is bit-identical to stepping a settled segment because a settled
//! filter's update is a bitwise no-op and the skip is only taken when the
//! `dt` bits match the settle-time `dt` (α depends on `dt`, so a different
//! window would re-excite the filters). Per-(host,socket) columns are
//! contiguous per segment, so both paths run over dense slabs the
//! autovectorizer can chew on.

use crate::error::Result;
use crate::faults::{FaultKind, NodeHealth};
use crate::node::Node;
use crate::power::{LoadModel, OperatingPoint, PowerModel};
use crate::units::{Hertz, Joules, Seconds, Watts};
use pmstack_obs::StaticCounter;

/// Observability: batched stepping calls.
static STEP_ALL_CALLS: StaticCounter = StaticCounter::new("simhw.step_all.calls");
/// Observability: batched steps whose enforcement filters were all at their
/// bitwise fixed point (the steady-state signal).
static STEP_ALL_SETTLED: StaticCounter = StaticCounter::new("simhw.step_all.settled");
/// Observability: settled segment caches dirtied by a control op or fault.
static SHARD_INVALIDATED: StaticCounter = StaticCounter::new("simhw.bank.shard.invalidated");
/// Observability: segments advanced on the replay path (filter updates
/// skipped) by [`NodeBank::step_all_partial`].
static SHARD_REPLAYED: StaticCounter = StaticCounter::new("simhw.bank.shard.replayed");

/// Default hosts per segment: big enough that per-segment bookkeeping is
/// noise (one cache probe per 1024 hosts), small enough that a 100k-host
/// fleet has ~98 independently invalidatable shards.
pub const DEFAULT_SEGMENT_HOSTS: usize = 1024;

/// One segment's settled-state cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegCache {
    /// Must be stepped: a control op / fault touched the segment, or its
    /// filters were still moving after the last step.
    Invalid,
    /// Every enforcement filter in the segment was at its bitwise fixed
    /// point after a step with these `dt` bits. `quiescent` records that no
    /// host held one-shot telemetry state afterwards, which the replay path
    /// additionally requires.
    Settled { dt_bits: u64, quiescent: bool },
}

/// What [`NodeBank::step_all_partial`] did, per segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Every *stepped* enforcement filter was already at its bitwise fixed
    /// point (replayed segments are settled by construction) — the
    /// steady-state signal the fast-forward path keys on.
    pub all_settled: bool,
    /// Segments advanced on the replay path (filter updates skipped).
    pub segments_replayed: usize,
    /// Segments that took the full stepping arithmetic.
    pub segments_stepped: usize,
}

/// Outcome of one host's step inside [`NodeBank::step_all`], mirroring the
/// three ways [`Node::try_step`] can go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostStep {
    /// The host was not stepped (no operating point supplied — dead host).
    Skipped,
    /// Hardware advanced and telemetry read back cleanly.
    Fresh,
    /// Hardware advanced but the telemetry read failed (blackout or
    /// transient MSR fault) — the caller must fall back on stale data.
    Stale,
}

/// Struct-of-arrays storage for a fleet of nodes with batched stepping.
///
/// Per-(host, socket) columns use index `host * sockets + socket`.
#[derive(Debug, Clone)]
pub struct NodeBank {
    nodes: Vec<Node>,
    sockets: usize,
    /// True while the backing `Node`s agree with the hot columns.
    hot_synced: bool,
    /// Hosts per segment (last segment may be shorter).
    segment_hosts: usize,
    /// Per-segment settled-state cache, `len == len().div_ceil(segment_hosts)`.
    seg: Vec<SegCache>,

    // Hot columns, per (host, socket): authoritative between control ops.
    energy: Vec<Joules>,
    enforced: Vec<Watts>,

    // Control mirrors, per (host, socket): refreshed after control ops.
    target: Vec<Watts>,
    tau: Vec<f64>,
    enabled: Vec<bool>,
    pkg_max: Vec<Watts>,

    // Hot columns, per host.
    last_freq: Vec<Hertz>,
    telemetry_down: Vec<u32>,
    msr_glitch: Vec<bool>,

    // Control mirrors, per host.
    eps: Vec<f64>,
    health: Vec<NodeHealth>,
    freq_cap: Vec<Option<Hertz>>,
    programmed: Vec<Watts>,
}

impl NodeBank {
    /// Build a bank over `nodes`. All nodes must have the same socket count
    /// (true of any cluster built from one machine spec).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let sockets = nodes.first().map_or(0, |n| n.packages().len());
        debug_assert!(
            nodes.iter().all(|n| n.packages().len() == sockets),
            "NodeBank requires a homogeneous socket count"
        );
        let n = nodes.len();
        let mut bank = Self {
            nodes,
            sockets,
            hot_synced: true,
            segment_hosts: DEFAULT_SEGMENT_HOSTS,
            seg: vec![SegCache::Invalid; n.div_ceil(DEFAULT_SEGMENT_HOSTS)],
            energy: vec![Joules::ZERO; n * sockets],
            enforced: vec![Watts(0.0); n * sockets],
            target: vec![Watts(0.0); n * sockets],
            tau: vec![1.0; n * sockets],
            enabled: vec![true; n * sockets],
            pkg_max: vec![Watts(0.0); n * sockets],
            last_freq: vec![Hertz(0.0); n],
            telemetry_down: vec![0; n],
            msr_glitch: vec![false; n],
            eps: vec![1.0; n],
            health: vec![NodeHealth::Healthy; n],
            freq_cap: vec![None; n],
            programmed: vec![Watts(0.0); n],
        };
        for h in 0..n {
            bank.refresh_node(h);
        }
        bank
    }

    /// Number of hosts in the bank.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the bank holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sockets per host.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Hosts per segment.
    pub fn segment_hosts(&self) -> usize {
        self.segment_hosts
    }

    /// Number of segments (`len().div_ceil(segment_hosts())`).
    pub fn num_segments(&self) -> usize {
        self.seg.len()
    }

    /// The segment index covering host `h`.
    pub fn segment_of(&self, h: usize) -> usize {
        h / self.segment_hosts
    }

    /// The host range of segment `sidx` (the last segment may be shorter
    /// than `segment_hosts()`).
    pub fn segment_range(&self, sidx: usize) -> std::ops::Range<usize> {
        let lo = sidx * self.segment_hosts;
        lo..(lo + self.segment_hosts).min(self.nodes.len())
    }

    /// True when segment `sidx`'s enforcement filters were all at their
    /// bitwise fixed point after the last step, with no control op or fault
    /// on the segment since.
    pub fn segment_settled(&self, sidx: usize) -> bool {
        matches!(self.seg[sidx], SegCache::Settled { .. })
    }

    /// Re-shard the bank into segments of `hosts` hosts. Drops every
    /// segment cache (the next step re-proves settledness); the hot columns
    /// themselves are untouched, so this is callable at any point.
    pub fn set_segment_hosts(&mut self, hosts: usize) {
        assert!(hosts >= 1, "segment size must be at least 1 host");
        self.segment_hosts = hosts;
        self.seg = vec![SegCache::Invalid; self.nodes.len().div_ceil(hosts)];
    }

    /// The host's efficiency factor ε.
    pub fn eps(&self, h: usize) -> f64 {
        self.eps[h]
    }

    /// The host's observed health.
    pub fn health(&self, h: usize) -> NodeHealth {
        self.health[h]
    }

    /// True unless the host is fail-stop dead.
    pub fn is_alive(&self, h: usize) -> bool {
        self.health[h] != NodeHealth::Dead
    }

    /// The host's programmed frequency cap, if any.
    pub fn freq_cap(&self, h: usize) -> Option<Hertz> {
        self.freq_cap[h]
    }

    /// The most recent lead frequency the host resolved.
    pub fn last_freq(&self, h: usize) -> Hertz {
        self.last_freq[h]
    }

    /// The host's programmed node-level limit (sum over sockets), matching
    /// [`Node::power_limit`].
    pub fn power_limit(&self, h: usize) -> Watts {
        self.programmed[h]
    }

    /// The limit the host's enforcement loops currently hold (sum over
    /// sockets), bit-identical to [`Node::enforced_limit`].
    pub fn enforced_limit(&self, h: usize) -> Watts {
        let s = self.sockets;
        (h * s..(h + 1) * s)
            .map(|i| {
                if self.enabled[i] {
                    self.enforced[i]
                } else {
                    self.pkg_max[i]
                }
            })
            .sum()
    }

    /// Cumulative exact host energy (sum over sockets), bit-identical to
    /// [`Node::energy`].
    pub fn energy(&self, h: usize) -> Joules {
        let s = self.sockets;
        (h * s..(h + 1) * s).map(|i| self.energy[i]).sum()
    }

    /// The operating point the host settles on right now, replicating
    /// [`Node::operating_point`] (PCU resolution under the enforced limit,
    /// clamped by any software frequency cap).
    pub fn operating_point<L: LoadModel + ?Sized>(
        &self,
        h: usize,
        model: &PowerModel,
        load: &L,
    ) -> OperatingPoint {
        let op = load.operating_point(model, self.eps[h], self.enforced_limit(h));
        match self.freq_cap[h] {
            Some(cap_f) if op.lead > cap_f => OperatingPoint {
                lead: cap_f,
                trail: op.trail.min(cap_f),
                power: load.node_power_at(model, self.eps[h], cap_f),
            },
            _ => op,
        }
    }

    /// True when no host has a pending telemetry blackout or MSR glitch —
    /// i.e. the hot flags hold no one-shot state a fast-forwarded iteration
    /// could consume differently from a stepped one.
    pub fn quiescent(&self) -> bool {
        self.telemetry_down.iter().all(|&t| t == 0) && self.msr_glitch.iter().all(|&g| !g)
    }

    /// Program a node-level power limit (routed through
    /// [`Node::set_power_limit`], so stuck-RAPL latching, glitch consumption
    /// and dead-node rejection behave exactly as on the per-node path).
    pub fn set_power_limit(&mut self, h: usize, limit: Watts) -> Result<()> {
        self.with_node_mut(h, |n| n.set_power_limit(limit))
    }

    /// Program or release a frequency cap (routed through
    /// [`Node::set_freq_cap`]).
    pub fn set_freq_cap(&mut self, h: usize, cap: Option<Hertz>) -> Result<()> {
        self.with_node_mut(h, |n| n.set_freq_cap(cap))
    }

    /// Apply an injected fault (routed through [`Node::inject`]).
    pub fn inject(&mut self, h: usize, kind: FaultKind) {
        self.with_node_mut(h, |n| n.inject(kind));
    }

    /// Mark the host suspect. Health is not hot state, so this bypasses the
    /// flush/refresh roundtrip — it is called every iteration by trust
    /// tracking.
    pub fn mark_suspect(&mut self, h: usize) {
        self.nodes[h].mark_suspect();
        self.health[h] = self.nodes[h].health();
    }

    /// Clear a suspect marking (dead hosts stay dead).
    pub fn mark_healthy(&mut self, h: usize) {
        self.nodes[h].mark_healthy();
        self.health[h] = self.nodes[h].health();
    }

    /// Advance every host with an operating point by `dt`, replaying exactly
    /// the arithmetic of [`Node::try_step`] over the columns:
    ///
    /// * energy accumulates at `op.power / sockets` per package;
    /// * each enforcement filter settles one `alpha` step toward its target;
    /// * `last_freq` latches `op.lead`;
    /// * telemetry blackouts count down and glitches are consumed, surfaced
    ///   as [`HostStep::Stale`].
    ///
    /// `ops[h] == None` means "do not step host `h`" (the dead-host path).
    /// Returns `true` when every stepped enforcement filter was already at
    /// its bitwise fixed point — the steady-state signal the fast-forward
    /// path keys on. `parallel` chunks the columns across the worker pool.
    ///
    /// Every host takes the full stepping arithmetic; segment caches are
    /// still maintained so a later [`NodeBank::step_all_partial`] can pick
    /// up where this left off.
    pub fn step_all(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
    ) -> bool {
        self.step_segments(dt, ops, results, parallel, false)
            .all_settled
    }

    /// Like [`NodeBank::step_all`], but segments whose cache proves
    /// "settled, quiescent, same `dt` bits" skip the filter updates and
    /// replay instead, leaving results bit-identical to a full step. A
    /// fault or control write on one host therefore costs re-stepping only
    /// that host's segment; the rest of the fleet stays on the replay path.
    ///
    /// `ops[h]` for a host in a replayable segment must be the operating
    /// point the host settled on — guaranteed when ops are resolved from
    /// the bank itself ([`NodeBank::operating_point`] is a pure function of
    /// columns that any invalidating change dirties) or cached from the
    /// settling iteration, which is how `JobPlatform` drives this.
    pub fn step_all_partial(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
    ) -> StepReport {
        self.step_segments(dt, ops, results, parallel, true)
    }

    fn step_segments(
        &mut self,
        dt: Seconds,
        ops: &[Option<OperatingPoint>],
        results: &mut [HostStep],
        parallel: bool,
        allow_replay: bool,
    ) -> StepReport {
        let _span = pmstack_obs::span!("simhw.step_all.secs");
        STEP_ALL_CALLS.inc();
        let n = self.nodes.len();
        assert_eq!(ops.len(), n, "one operating point slot per host");
        assert_eq!(results.len(), n, "one result slot per host");
        let mut report = StepReport {
            all_settled: true,
            segments_replayed: 0,
            segments_stepped: 0,
        };
        if n == 0 {
            STEP_ALL_SETTLED.inc();
            return report;
        }
        self.hot_synced = false;
        let s = self.sockets;
        let sh = self.segment_hosts;
        let segs = self.seg.len();
        let dt_bits = dt.value().to_bits();
        let workers = pmstack_exec::workers();
        let mut cols = SpanCols {
            energy: &mut self.energy,
            enforced: &mut self.enforced,
            last_freq: &mut self.last_freq,
            telemetry_down: &mut self.telemetry_down,
            msr_glitch: &mut self.msr_glitch,
            results,
        };
        let (target, tau) = (&self.target, &self.tau);

        if segs <= 1 {
            // Sub-segment fleet: one cache slot, but keep the host-chunked
            // fan-out so jobs smaller than a segment retain full step
            // parallelism. The replay/step decision is made once, up front.
            let replay = allow_replay && replayable(self.seg[0], dt_bits);
            if !parallel || workers <= 1 || n < 2 {
                if replay {
                    replay_span(&mut cols, 0, s, dt, ops);
                } else {
                    let (settled, quiescent) = step_span(&mut cols, 0, s, dt, ops, target, tau);
                    self.seg[0] = cache_after_step(settled, quiescent, dt_bits);
                    report.all_settled = settled;
                }
            } else {
                let chunk_hosts = n.div_ceil(workers);
                let mut chunks: Vec<HostChunk<'_>> = Vec::with_capacity(workers);
                let mut base = 0;
                while base < n {
                    let take = chunk_hosts.min(n - base);
                    chunks.push(HostChunk {
                        base,
                        cols: cols.split_off_front(take, s),
                        settled: true,
                        quiescent: true,
                    });
                    base += take;
                }
                pmstack_exec::par_for_each_mut(&mut chunks, |_, chunk| {
                    if replay {
                        replay_span(&mut chunk.cols, chunk.base, s, dt, ops);
                    } else {
                        let (settled, quiescent) =
                            step_span(&mut chunk.cols, chunk.base, s, dt, ops, target, tau);
                        chunk.settled = settled;
                        chunk.quiescent = quiescent;
                    }
                });
                if !replay {
                    let settled = chunks.iter().all(|c| c.settled);
                    let quiescent = chunks.iter().all(|c| c.quiescent);
                    self.seg[0] = cache_after_step(settled, quiescent, dt_bits);
                    report.all_settled = settled;
                }
            }
            if replay {
                report.segments_replayed = 1;
            } else {
                report.segments_stepped = 1;
            }
        } else {
            // Multi-segment fleet: chunk boundaries are segment boundaries,
            // so each worker owns its segments' cache slots outright and the
            // replay/step decision is local to the chunk.
            let chunk_segs = if !parallel || workers <= 1 {
                segs
            } else {
                segs.div_ceil(workers)
            };
            let mut chunks: Vec<SegChunk<'_>> = Vec::with_capacity(segs.div_ceil(chunk_segs));
            let mut seg_rem = &mut self.seg[..];
            let mut base = 0;
            while !seg_rem.is_empty() {
                let take_segs = chunk_segs.min(seg_rem.len());
                let take_hosts = (take_segs * sh).min(n - base);
                let (sa, st) = seg_rem.split_at_mut(take_segs);
                seg_rem = st;
                chunks.push(SegChunk {
                    base,
                    cols: cols.split_off_front(take_hosts, s),
                    seg: sa,
                    replayed: 0,
                    stepped: 0,
                    all_settled: true,
                });
                base += take_hosts;
            }
            pmstack_exec::par_for_each_mut(&mut chunks, |_, chunk| {
                run_seg_chunk(chunk, s, sh, dt, dt_bits, ops, target, tau, allow_replay);
            });
            for chunk in &chunks {
                report.all_settled &= chunk.all_settled;
                report.segments_replayed += chunk.replayed;
                report.segments_stepped += chunk.stepped;
            }
        }
        if report.segments_replayed > 0 {
            SHARD_REPLAYED.add(report.segments_replayed as u64);
        }
        if report.all_settled {
            STEP_ALL_SETTLED.inc();
        }
        report
    }

    /// Fast-forward energy accumulation: add `deltas[h]` to every package of
    /// every live host. `deltas[h]` must be the per-package energy of one
    /// iteration (`per_socket_power * dt`, the exact product
    /// [`NodeBank::step_all`] would have added), so `k` calls are
    /// bit-identical to `k` stepped iterations of a settled fleet.
    pub fn replay_energy(&mut self, deltas: &[Joules]) {
        debug_assert_eq!(deltas.len(), self.nodes.len());
        self.hot_synced = false;
        let s = self.sockets;
        for (h, &delta) in deltas.iter().enumerate() {
            if self.health[h] == NodeHealth::Dead {
                continue;
            }
            for e in &mut self.energy[h * s..(h + 1) * s] {
                *e += delta;
            }
        }
    }

    /// The backing nodes, re-synchronized from the hot columns first. Use
    /// for read paths that want full `Node` views; control operations must
    /// go through the bank so the columns stay authoritative.
    pub fn nodes(&mut self) -> &[Node] {
        self.flush_all();
        &self.nodes
    }

    /// One backing node, re-synchronized from the hot columns first.
    pub fn node(&mut self, h: usize) -> &Node {
        self.flush_node(h);
        &self.nodes[h]
    }

    /// Tear the bank down into its (synchronized) nodes.
    pub fn into_nodes(mut self) -> Vec<Node> {
        self.flush_all();
        self.nodes
    }

    /// Route a control operation that is *not* mirrored in the columns
    /// (sub-domain programming) through the backing `Node`. Shares
    /// [`NodeBank::with_node_mut`]'s flush → op → refresh → dirty routing,
    /// so fault semantics and cache invalidation stay identical to the
    /// mirrored control paths.
    pub(crate) fn with_node<T>(&mut self, h: usize, f: impl FnOnce(&mut Node) -> T) -> T {
        self.with_node_mut(h, f)
    }

    /// Route a control operation through the backing `Node`: flush the hot
    /// columns into it, run the operation, then refresh every mirror. The
    /// host's segment cache is dirtied — this is the invalidation point for
    /// every control write and injected fault, and only for those: health
    /// markings ([`NodeBank::mark_suspect`] / [`NodeBank::mark_healthy`])
    /// bypass this path because health never feeds the stepping arithmetic.
    fn with_node_mut<T>(&mut self, h: usize, f: impl FnOnce(&mut Node) -> T) -> T {
        self.flush_node(h);
        let out = f(&mut self.nodes[h]);
        self.refresh_node(h);
        self.dirty_segment(h);
        out
    }

    /// Drop host `h`'s segment cache, counting settled→invalid transitions.
    fn dirty_segment(&mut self, h: usize) {
        let sidx = self.segment_of(h);
        if matches!(self.seg[sidx], SegCache::Settled { .. }) {
            SHARD_INVALIDATED.inc();
        }
        self.seg[sidx] = SegCache::Invalid;
    }

    fn flush_all(&mut self) {
        if self.hot_synced {
            return;
        }
        for h in 0..self.nodes.len() {
            self.flush_node(h);
        }
        self.hot_synced = true;
    }

    fn flush_node(&mut self, h: usize) {
        let s = self.sockets;
        for k in 0..s {
            let i = h * s + k;
            let (e, f) = (self.energy[i], self.enforced[i]);
            self.nodes[h].packages_mut()[k].set_hot_state(e, f);
        }
        let (lf, td, mg) = (
            self.last_freq[h],
            self.telemetry_down[h],
            self.msr_glitch[h],
        );
        self.nodes[h].set_hot_flags(lf, td, mg);
    }

    fn refresh_node(&mut self, h: usize) {
        let s = self.sockets;
        let node = &self.nodes[h];
        for (k, pkg) in node.packages().iter().enumerate() {
            let i = h * s + k;
            let (e, f) = pkg.hot_state();
            self.energy[i] = e;
            self.enforced[i] = f;
            let (target, tau) = pkg.enforcement_params();
            self.target[i] = target;
            self.tau[i] = tau;
            self.enabled[i] = pkg.limit_enabled();
            self.pkg_max[i] = pkg.max_limit();
        }
        let (lf, td, mg) = node.hot_flags();
        self.last_freq[h] = lf;
        self.telemetry_down[h] = td;
        self.msr_glitch[h] = mg;
        self.eps[h] = node.eps();
        self.health[h] = node.health();
        self.freq_cap[h] = node.freq_cap();
        self.programmed[h] = node.power_limit();
    }
}

/// True when a segment's cache proves the replay path is bit-identical to
/// stepping: filters settled under the *same* `dt` bits (α depends on `dt`)
/// and no one-shot telemetry state was pending.
fn replayable(cache: SegCache, dt_bits: u64) -> bool {
    matches!(
        cache,
        SegCache::Settled { dt_bits: b, quiescent: true } if b == dt_bits
    )
}

/// The cache slot a segment earns by being stepped.
fn cache_after_step(settled: bool, quiescent: bool, dt_bits: u64) -> SegCache {
    if settled {
        SegCache::Settled { dt_bits, quiescent }
    } else {
        SegCache::Invalid
    }
}

/// A disjoint span of the hot columns (per-(host,socket) columns hold
/// `hosts * sockets` elements, per-host columns `hosts`).
struct SpanCols<'a> {
    energy: &'a mut [Joules],
    enforced: &'a mut [Watts],
    last_freq: &'a mut [Hertz],
    telemetry_down: &'a mut [u32],
    msr_glitch: &'a mut [bool],
    results: &'a mut [HostStep],
}

impl<'a> SpanCols<'a> {
    /// Detach the first `hosts` hosts as an independent span, leaving the
    /// remainder in `self` — the splitter the chunk builders iterate.
    fn split_off_front(&mut self, hosts: usize, sockets: usize) -> SpanCols<'a> {
        fn take<'b, T>(slot: &mut &'b mut [T], n: usize) -> &'b mut [T] {
            let (head, tail) = std::mem::take(slot).split_at_mut(n);
            *slot = tail;
            head
        }
        SpanCols {
            energy: take(&mut self.energy, hosts * sockets),
            enforced: take(&mut self.enforced, hosts * sockets),
            last_freq: take(&mut self.last_freq, hosts),
            telemetry_down: take(&mut self.telemetry_down, hosts),
            msr_glitch: take(&mut self.msr_glitch, hosts),
            results: take(&mut self.results, hosts),
        }
    }

    /// Reborrow hosts `lo..lo + len` of this span.
    fn sub(&mut self, lo: usize, len: usize, sockets: usize) -> SpanCols<'_> {
        SpanCols {
            energy: &mut self.energy[lo * sockets..(lo + len) * sockets],
            enforced: &mut self.enforced[lo * sockets..(lo + len) * sockets],
            last_freq: &mut self.last_freq[lo..lo + len],
            telemetry_down: &mut self.telemetry_down[lo..lo + len],
            msr_glitch: &mut self.msr_glitch[lo..lo + len],
            results: &mut self.results[lo..lo + len],
        }
    }
}

/// One worker's sub-segment chunk (single-segment fleets only).
struct HostChunk<'a> {
    base: usize,
    cols: SpanCols<'a>,
    settled: bool,
    quiescent: bool,
}

/// One worker's segment-aligned chunk: whole segments plus their cache
/// slots.
struct SegChunk<'a> {
    base: usize,
    cols: SpanCols<'a>,
    seg: &'a mut [SegCache],
    replayed: usize,
    stepped: usize,
    all_settled: bool,
}

/// Replay or step each segment a chunk owns, refreshing its cache slot.
#[allow(clippy::too_many_arguments)]
fn run_seg_chunk(
    chunk: &mut SegChunk<'_>,
    sockets: usize,
    segment_hosts: usize,
    dt: Seconds,
    dt_bits: u64,
    ops: &[Option<OperatingPoint>],
    target: &[Watts],
    tau: &[f64],
    allow_replay: bool,
) {
    let total = chunk.cols.results.len();
    let mut lo = 0;
    for si in 0..chunk.seg.len() {
        let len = segment_hosts.min(total - lo);
        let mut cols = chunk.cols.sub(lo, len, sockets);
        if allow_replay && replayable(chunk.seg[si], dt_bits) {
            replay_span(&mut cols, chunk.base + lo, sockets, dt, ops);
            chunk.replayed += 1;
        } else {
            let (settled, quiescent) =
                step_span(&mut cols, chunk.base + lo, sockets, dt, ops, target, tau);
            chunk.seg[si] = cache_after_step(settled, quiescent, dt_bits);
            chunk.all_settled &= settled;
            chunk.stepped += 1;
        }
        lo += len;
    }
}

/// Step every host of one span, replicating [`RaplPackage::advance`]
/// bit-for-bit. `alpha` is memoized on τ: every package sharing a time
/// window (the common case — all of them) reuses one `exp()` per span
/// instead of paying one per package per host. Returns `(settled,
/// quiescent)`: whether every filter update was a bitwise no-op, and
/// whether the span holds no one-shot telemetry state afterwards.
///
/// [`RaplPackage::advance`]: crate::rapl::RaplPackage::advance
fn step_span(
    cols: &mut SpanCols<'_>,
    base: usize,
    sockets: usize,
    dt: Seconds,
    ops: &[Option<OperatingPoint>],
    target: &[Watts],
    tau: &[f64],
) -> (bool, bool) {
    let mut memo_tau = f64::NAN;
    let mut memo_alpha = 0.0;
    let mut settled = true;
    let mut quiescent = true;
    for i in 0..cols.results.len() {
        let h = base + i;
        let Some(op) = ops[h] else {
            cols.results[i] = HostStep::Skipped;
            quiescent &= cols.telemetry_down[i] == 0 && !cols.msr_glitch[i];
            continue;
        };
        cols.last_freq[i] = op.lead;
        let per_socket = op.power / sockets as f64;
        for k in 0..sockets {
            let gi = h * sockets + k;
            let li = i * sockets + k;
            cols.energy[li] += per_socket * dt;
            let t = tau[gi];
            if t != memo_tau {
                memo_alpha = 1.0 - (-dt.value() / t).exp();
                memo_tau = t;
            }
            let held = cols.enforced[li];
            let next = held + (target[gi] - held) * memo_alpha;
            if next.value().to_bits() != held.value().to_bits() {
                settled = false;
            }
            cols.enforced[li] = next;
        }
        cols.results[i] = if cols.telemetry_down[i] > 0 {
            cols.telemetry_down[i] -= 1;
            // A glitch pending behind the blackout is not consumed this
            // iteration, so it still blocks quiescence.
            quiescent &= cols.telemetry_down[i] == 0 && !cols.msr_glitch[i];
            HostStep::Stale
        } else if std::mem::take(&mut cols.msr_glitch[i]) {
            HostStep::Stale
        } else {
            HostStep::Fresh
        };
    }
    (settled, quiescent)
}

/// Advance a settled, quiescent span without touching the filters: energy
/// accumulates the same `op.power / sockets * dt` product a real step would
/// add, `last_freq` latches `op.lead`, and every live host reads back
/// [`HostStep::Fresh`] (quiescence proved no blackout/glitch was pending).
/// The per-host delta is hoisted out of the package loop and the two-socket
/// case unrolled so the energy column updates run as straight-line adds
/// over a contiguous slab.
fn replay_span(
    cols: &mut SpanCols<'_>,
    base: usize,
    sockets: usize,
    dt: Seconds,
    ops: &[Option<OperatingPoint>],
) {
    for i in 0..cols.results.len() {
        let h = base + i;
        let Some(op) = ops[h] else {
            cols.results[i] = HostStep::Skipped;
            continue;
        };
        debug_assert!(
            cols.telemetry_down[i] == 0 && !cols.msr_glitch[i],
            "replayed a span holding one-shot telemetry state"
        );
        cols.last_freq[i] = op.lead;
        let add = op.power / sockets as f64 * dt;
        if sockets == 2 {
            cols.energy[i * 2] += add;
            cols.energy[i * 2 + 1] += add;
        } else {
            for e in &mut cols.energy[i * sockets..(i + 1) * sockets] {
                *e += add;
            }
        }
        cols.results[i] = HostStep::Fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::power::CoreClass;
    use crate::quartz::quartz_spec;

    struct FlatLoad {
        kappa: f64,
    }

    impl LoadModel for FlatLoad {
        fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
            model.node_power(
                eps,
                &[CoreClass {
                    count: model.spec().cores_used_per_node,
                    kappa: self.kappa,
                    freq: lead,
                }],
            )
        }
    }

    fn fleet(n: usize) -> (PowerModel, Vec<Node>) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let nodes = (0..n)
            .map(|i| Node::new(NodeId(i), &model, 0.9 + 0.02 * i as f64).unwrap())
            .collect();
        (model, nodes)
    }

    /// Step the reference fleet and the bank in lockstep, asserting every
    /// observable is bit-identical after each iteration.
    fn assert_lockstep(
        model: &PowerModel,
        load: &FlatLoad,
        reference: &mut [Node],
        bank: &mut NodeBank,
        dt: Seconds,
        iterations: usize,
    ) {
        let n = reference.len();
        let mut ops = vec![None; n];
        let mut results = vec![HostStep::Skipped; n];
        for _ in 0..iterations {
            for (h, node) in reference.iter().enumerate() {
                ops[h] = (!node.is_dead()).then(|| bank.operating_point(h, model, load));
            }
            bank.step_all(dt, &ops, &mut results, false);
            for node in reference.iter_mut() {
                let _ = node.try_step(model, load, dt);
            }
            for (h, node) in reference.iter().enumerate() {
                assert_eq!(
                    bank.energy(h).value().to_bits(),
                    node.energy().value().to_bits(),
                    "energy diverged on host {h}"
                );
                assert_eq!(
                    bank.enforced_limit(h).value().to_bits(),
                    node.enforced_limit().value().to_bits(),
                    "enforced limit diverged on host {h}"
                );
            }
        }
    }

    #[test]
    fn bank_steps_bit_identically_to_nodes() {
        let (model, mut reference) = fleet(5);
        let load = FlatLoad { kappa: 2.7 };
        let mut bank = NodeBank::from_nodes(reference.clone());
        for (h, node) in reference.iter_mut().enumerate() {
            node.set_power_limit(Watts(170.0 + 10.0 * h as f64))
                .unwrap();
            bank.set_power_limit(h, Watts(170.0 + 10.0 * h as f64))
                .unwrap();
        }
        reference[2]
            .set_freq_cap(Some(Hertz::from_ghz(1.9)))
            .unwrap();
        bank.set_freq_cap(2, Some(Hertz::from_ghz(1.9))).unwrap();
        assert_lockstep(&model, &load, &mut reference, &mut bank, Seconds(0.2), 40);
    }

    #[test]
    fn bank_replicates_fault_semantics() {
        let (model, mut reference) = fleet(4);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(reference.clone());
        for (h, kind) in [
            (0, FaultKind::NodeDeath),
            (1, FaultKind::StuckRapl { pinned_w: 140.0 }),
            (2, FaultKind::TelemetryDropout { iterations: 3 }),
            (3, FaultKind::TransientMsrFault),
        ] {
            reference[h].inject(kind);
            bank.inject(h, kind);
        }
        assert!(!bank.is_alive(0));
        assert!(!bank.quiescent());
        // The stuck write latched the pinned value on both sides.
        assert_eq!(
            bank.power_limit(1).value().to_bits(),
            reference[1].power_limit().value().to_bits()
        );
        assert_lockstep(&model, &load, &mut reference, &mut bank, Seconds(0.2), 6);
        assert!(bank.quiescent(), "dropout and glitch should be consumed");
    }

    #[test]
    fn parallel_and_sequential_stepping_agree() {
        let (model, nodes) = fleet(9);
        let load = FlatLoad { kappa: 2.6 };
        let mut seq = NodeBank::from_nodes(nodes.clone());
        let mut par = NodeBank::from_nodes(nodes);
        for h in 0..seq.len() {
            seq.set_power_limit(h, Watts(180.0)).unwrap();
            par.set_power_limit(h, Watts(180.0)).unwrap();
        }
        let mut results_a = vec![HostStep::Skipped; seq.len()];
        let mut results_b = vec![HostStep::Skipped; par.len()];
        let mut ops = vec![None; seq.len()];
        for _ in 0..10 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(seq.operating_point(h, &model, &load));
            }
            let sa = seq.step_all(Seconds(0.2), &ops, &mut results_a, false);
            let sb = par.step_all(Seconds(0.2), &ops, &mut results_b, true);
            assert_eq!(sa, sb);
            assert_eq!(results_a, results_b);
        }
        for h in 0..seq.len() {
            assert_eq!(
                seq.energy(h).value().to_bits(),
                par.energy(h).value().to_bits()
            );
        }
    }

    #[test]
    fn settles_to_bitwise_fixed_point_and_replays_energy() {
        let (model, nodes) = fleet(3);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(nodes);
        for h in 0..bank.len() {
            bank.set_power_limit(h, Watts(160.0)).unwrap();
        }
        let dt = Seconds(0.25);
        let mut results = vec![HostStep::Skipped; bank.len()];
        let mut ops = vec![None; bank.len()];
        let mut settled = false;
        for _ in 0..2000 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(bank.operating_point(h, &model, &load));
            }
            settled = bank.step_all(dt, &ops, &mut results, false);
            if settled {
                break;
            }
        }
        assert!(settled, "enforcement must reach a bitwise fixed point");

        // From steady state, replaying k energy deltas matches k real steps.
        let mut stepped = bank.clone();
        let deltas: Vec<Joules> = (0..bank.len())
            .map(|h| {
                let op = bank.operating_point(h, &model, &load);
                op.power / bank.sockets() as f64 * dt
            })
            .collect();
        for _ in 0..7 {
            for (h, op) in ops.iter_mut().enumerate() {
                *op = Some(stepped.operating_point(h, &model, &load));
            }
            stepped.step_all(dt, &ops, &mut results, false);
            bank.replay_energy(&deltas);
        }
        for h in 0..bank.len() {
            assert_eq!(
                bank.energy(h).value().to_bits(),
                stepped.energy(h).value().to_bits(),
                "fast-forwarded energy diverged on host {h}"
            );
        }
    }

    #[test]
    fn nodes_view_is_resynchronized() {
        let (model, nodes) = fleet(2);
        let load = FlatLoad { kappa: 2.5 };
        let mut bank = NodeBank::from_nodes(nodes);
        let mut results = vec![HostStep::Skipped; 2];
        let ops: Vec<_> = (0..2)
            .map(|h| Some(bank.operating_point(h, &model, &load)))
            .collect();
        for _ in 0..5 {
            bank.step_all(Seconds(0.2), &ops, &mut results, false);
        }
        let expect: Vec<u64> = (0..2).map(|h| bank.energy(h).value().to_bits()).collect();
        for (h, node) in bank.nodes().iter().enumerate() {
            assert_eq!(node.energy().value().to_bits(), expect[h]);
            // The energy-status MSR is brought up to date too.
            assert!(node.packages()[0].read_energy_counter().unwrap() > 0);
        }
        let nodes = bank.into_nodes();
        assert_eq!(nodes.len(), 2);
    }
}
