//! Segment-sharding invariants of the columnar [`NodeBank`].
//!
//! The contract under test: `step_all_partial` on a bank sharded into
//! arbitrary (including pathological) segment sizes is **bit-identical** to
//! flat `step_all` stepping and to the per-[`Node`] reference, under any
//! interleaving of control writes and fault injections — including ones
//! that straddle segment boundaries — while invalidating *only* the
//! segments the writes actually touch.

use pmstack_simhw::power::CoreClass;
use pmstack_simhw::{
    quartz_spec, ClassId, ClassedBank, FaultKind, Hertz, HostStep, LoadModel, Node, NodeBank,
    NodeClass, NodeId, PowerModel, Seconds, Watts,
};
use proptest::prelude::*;

struct FlatLoad {
    kappa: f64,
}

impl LoadModel for FlatLoad {
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
        model.node_power(
            eps,
            &[CoreClass {
                count: model.spec().cores_used_per_node,
                kappa: self.kappa,
                freq: lead,
            }],
        )
    }
}

fn fleet(n: usize) -> (PowerModel, Vec<Node>) {
    let model = PowerModel::new(quartz_spec()).unwrap();
    let nodes = (0..n)
        .map(|i| Node::new(NodeId(i), &model, 0.9 + 0.02 * (i % 12) as f64).unwrap())
        .collect();
    (model, nodes)
}

/// One scheduled disturbance in the lockstep property below.
#[derive(Debug, Clone, Copy)]
enum Disturb {
    Limit(f64),
    Cap(f64),
    ClearCap,
    Dropout(u32),
    Glitch,
    Stuck(f64),
    Death,
}

fn disturb_strategy() -> impl Strategy<Value = Disturb> {
    prop_oneof![
        (120.0f64..230.0).prop_map(Disturb::Limit),
        (1.3f64..2.5).prop_map(Disturb::Cap),
        Just(Disturb::ClearCap),
        (1u32..4).prop_map(Disturb::Dropout),
        Just(Disturb::Glitch),
        (100.0f64..200.0).prop_map(Disturb::Stuck),
        Just(Disturb::Death),
    ]
}

fn apply(bank: &mut NodeBank, node: &mut Node, host: usize, d: Disturb) {
    match d {
        Disturb::Limit(w) => {
            let _ = bank.set_power_limit(host, Watts(w));
            let _ = node.set_power_limit(Watts(w));
        }
        Disturb::Cap(ghz) => {
            let _ = bank.set_freq_cap(host, Some(Hertz::from_ghz(ghz)));
            let _ = node.set_freq_cap(Some(Hertz::from_ghz(ghz)));
        }
        Disturb::ClearCap => {
            let _ = bank.set_freq_cap(host, None);
            let _ = node.set_freq_cap(None);
        }
        Disturb::Dropout(iterations) => {
            bank.inject(host, FaultKind::TelemetryDropout { iterations });
            node.inject(FaultKind::TelemetryDropout { iterations });
        }
        Disturb::Glitch => {
            bank.inject(host, FaultKind::TransientMsrFault);
            node.inject(FaultKind::TransientMsrFault);
        }
        Disturb::Stuck(pinned_w) => {
            bank.inject(host, FaultKind::StuckRapl { pinned_w });
            node.inject(FaultKind::StuckRapl { pinned_w });
        }
        Disturb::Death => {
            bank.inject(host, FaultKind::NodeDeath);
            node.inject(FaultKind::NodeDeath);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded stepping with replay enabled is bit-identical to flat
    /// stepping and to the per-node reference under random control/fault
    /// schedules, for any fleet/segment geometry (segments of 1 host,
    /// ragged final segments, fleets smaller than one segment).
    #[test]
    fn sharded_replay_is_bit_identical_to_flat_and_reference(
        n in 1usize..34,
        seg in 1usize..10,
        parallel in (0u8..2).prop_map(|b| b == 1),
        schedule in prop::collection::vec(
            (0usize..16, 0usize..34, disturb_strategy()),
            0..12,
        ),
    ) {
        let (model, mut reference) = fleet(n);
        let load = FlatLoad { kappa: 2.6 };
        let mut flat = NodeBank::from_nodes(reference.clone());
        let mut sharded = NodeBank::from_nodes(reference.clone());
        sharded.set_segment_hosts(seg);

        let dt = Seconds(0.2);
        let mut ops = vec![None; n];
        let mut res_flat = vec![HostStep::Skipped; n];
        let mut res_shard = vec![HostStep::Skipped; n];
        for iter in 0..16 {
            for (at, host, d) in &schedule {
                if *at == iter {
                    let host = *host % n;
                    apply(&mut flat, &mut reference[host], host, *d);
                    // Same disturbance to the sharded bank; the reference
                    // node was already updated above.
                    match *d {
                        Disturb::Limit(w) => {
                            let _ = sharded.set_power_limit(host, Watts(w));
                        }
                        Disturb::Cap(ghz) => {
                            let _ = sharded.set_freq_cap(host, Some(Hertz::from_ghz(ghz)));
                        }
                        Disturb::ClearCap => {
                            let _ = sharded.set_freq_cap(host, None);
                        }
                        d @ (Disturb::Dropout(_)
                        | Disturb::Glitch
                        | Disturb::Stuck(_)
                        | Disturb::Death) => {
                            let kind = match d {
                                Disturb::Dropout(iterations) => {
                                    FaultKind::TelemetryDropout { iterations }
                                }
                                Disturb::Glitch => FaultKind::TransientMsrFault,
                                Disturb::Stuck(pinned_w) => FaultKind::StuckRapl { pinned_w },
                                _ => FaultKind::NodeDeath,
                            };
                            sharded.inject(host, kind);
                        }
                    }
                }
            }
            for (h, op) in ops.iter_mut().enumerate() {
                *op = sharded
                    .is_alive(h)
                    .then(|| sharded.operating_point(h, &model, &load));
            }
            let settled_flat = flat.step_all(dt, &ops, &mut res_flat, parallel);
            let report = sharded.step_all_partial(dt, &ops, &mut res_shard, parallel);
            for node in reference.iter_mut() {
                let _ = node.try_step(&model, &load, dt);
            }

            prop_assert_eq!(settled_flat, report.all_settled, "settled flags diverged");
            prop_assert_eq!(&res_flat, &res_shard, "step outcomes diverged");
            for h in 0..n {
                prop_assert_eq!(
                    sharded.energy(h).value().to_bits(),
                    flat.energy(h).value().to_bits(),
                    "energy diverged from flat on host {}", h
                );
                prop_assert_eq!(
                    sharded.energy(h).value().to_bits(),
                    reference[h].energy().value().to_bits(),
                    "energy diverged from reference on host {}", h
                );
                prop_assert_eq!(
                    sharded.enforced_limit(h).value().to_bits(),
                    reference[h].enforced_limit().value().to_bits(),
                    "enforced limit diverged on host {}", h
                );
                prop_assert_eq!(
                    sharded.last_freq(h).value().to_bits(),
                    flat.last_freq(h).value().to_bits(),
                    "last_freq diverged on host {}", h
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lockstep differential suite for the heterogeneity plane: a 1-class
    /// classed fleet with PKG-only domains must be **bit-identical** to
    /// today's homogeneous [`NodeBank`] under random fault/control/jitter
    /// schedules. The classed bank composes one homogeneous bank per class,
    /// so a single class must delegate to exactly the pre-PR code path.
    #[test]
    fn one_class_pkg_only_fleet_matches_homogeneous_bank(
        n in 1usize..34,
        parallel in (0u8..2).prop_map(|b| b == 1),
        dts in prop::collection::vec(0.05f64..0.4, 1..4),
        schedule in prop::collection::vec(
            (0usize..16, 0usize..34, disturb_strategy()),
            0..12,
        ),
    ) {
        let (model, _) = fleet(0);
        let eps: Vec<f64> = (0..n).map(|i| 0.9 + 0.02 * (i % 12) as f64).collect();
        let nodes: Vec<Node> = eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).unwrap())
            .collect();
        let mut homo = NodeBank::from_nodes(nodes);
        let classes = vec![NodeClass::pkg_only("quartz", quartz_spec())];
        let membership = vec![ClassId(0); n];
        let mut classed = ClassedBank::new(classes, &membership, &eps).unwrap();
        let load = FlatLoad { kappa: 2.6 };

        let mut ops = vec![None; n];
        let mut res_homo = vec![HostStep::Skipped; n];
        let mut res_classed = vec![HostStep::Skipped; n];
        for iter in 0..16 {
            for (at, host, d) in &schedule {
                if *at == iter {
                    let host = *host % n;
                    match *d {
                        Disturb::Limit(w) => {
                            let _ = homo.set_power_limit(host, Watts(w));
                            let _ = classed.set_power_limit(host, Watts(w));
                        }
                        Disturb::Cap(ghz) => {
                            let _ = homo.set_freq_cap(host, Some(Hertz::from_ghz(ghz)));
                            let _ = classed.set_freq_cap(host, Some(Hertz::from_ghz(ghz)));
                        }
                        Disturb::ClearCap => {
                            let _ = homo.set_freq_cap(host, None);
                            let _ = classed.set_freq_cap(host, None);
                        }
                        Disturb::Dropout(iterations) => {
                            homo.inject(host, FaultKind::TelemetryDropout { iterations });
                            classed.inject(host, FaultKind::TelemetryDropout { iterations });
                        }
                        Disturb::Glitch => {
                            homo.inject(host, FaultKind::TransientMsrFault);
                            classed.inject(host, FaultKind::TransientMsrFault);
                        }
                        Disturb::Stuck(pinned_w) => {
                            homo.inject(host, FaultKind::StuckRapl { pinned_w });
                            classed.inject(host, FaultKind::StuckRapl { pinned_w });
                        }
                        Disturb::Death => {
                            homo.inject(host, FaultKind::NodeDeath);
                            classed.inject(host, FaultKind::NodeDeath);
                        }
                    }
                }
            }
            // Jitter the step width through the supplied dt ladder.
            let dt = Seconds(dts[iter % dts.len()]);
            for (h, op) in ops.iter_mut().enumerate() {
                *op = classed.is_alive(h).then(|| classed.operating_point(h, &load));
                // Operating points must agree before stepping at all.
                let homo_op = homo
                    .is_alive(h)
                    .then(|| homo.operating_point(h, &model, &load));
                prop_assert_eq!(&*op, &homo_op, "operating point diverged on host {}", h);
            }
            let settled_homo = homo.step_all_partial(dt, &ops, &mut res_homo, parallel);
            let settled_classed =
                classed.step_all_partial(dt, &ops, &mut res_classed, parallel);

            prop_assert_eq!(settled_homo, settled_classed, "step reports diverged");
            prop_assert_eq!(&res_homo, &res_classed, "step outcomes diverged");
            for h in 0..n {
                prop_assert_eq!(
                    classed.energy(h).value().to_bits(),
                    homo.energy(h).value().to_bits(),
                    "energy diverged on host {}", h
                );
                prop_assert_eq!(
                    classed.enforced_limit(h).value().to_bits(),
                    homo.enforced_limit(h).value().to_bits(),
                    "enforced limit diverged on host {}", h
                );
                prop_assert_eq!(
                    classed.power_limit(h).value().to_bits(),
                    homo.power_limit(h).value().to_bits(),
                    "programmed limit diverged on host {}", h
                );
                prop_assert_eq!(
                    classed.last_freq(h).value().to_bits(),
                    homo.last_freq(h).value().to_bits(),
                    "last_freq diverged on host {}", h
                );
                prop_assert_eq!(classed.health(h), homo.health(h));
            }
        }
    }
}

/// Step a bank with freshly resolved operating points until the partial
/// stepper reports everything settled (bounded, so a bug fails fast).
fn settle(bank: &mut NodeBank, model: &PowerModel, load: &FlatLoad, dt: Seconds) {
    let n = bank.len();
    let mut ops = vec![None; n];
    let mut results = vec![HostStep::Skipped; n];
    for _ in 0..200 {
        for (h, op) in ops.iter_mut().enumerate() {
            *op = bank
                .is_alive(h)
                .then(|| bank.operating_point(h, model, load));
        }
        if bank
            .step_all_partial(dt, &ops, &mut results, false)
            .all_settled
        {
            return;
        }
    }
    panic!("bank failed to settle in 200 iterations");
}

fn step_once(
    bank: &mut NodeBank,
    model: &PowerModel,
    load: &FlatLoad,
    dt: Seconds,
) -> pmstack_simhw::StepReport {
    let n = bank.len();
    let mut ops = vec![None; n];
    let mut results = vec![HostStep::Skipped; n];
    for (h, op) in ops.iter_mut().enumerate() {
        *op = bank
            .is_alive(h)
            .then(|| bank.operating_point(h, model, load));
    }
    bank.step_all_partial(dt, &ops, &mut results, false)
}

#[test]
fn segment_geometry_covers_ragged_fleets() {
    let (_, nodes) = fleet(13);
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(4);
    assert_eq!(bank.num_segments(), 4);
    assert_eq!(bank.segment_range(0), 0..4);
    assert_eq!(bank.segment_range(2), 8..12);
    // Ragged final segment holds the single leftover host.
    assert_eq!(bank.segment_range(3), 12..13);
    assert_eq!(bank.segment_of(11), 2);
    assert_eq!(bank.segment_of(12), 3);

    // A fleet smaller than one segment is one segment.
    let (_, one) = fleet(3);
    let mut small = NodeBank::from_nodes(one);
    small.set_segment_hosts(1024);
    assert_eq!(small.num_segments(), 1);
    assert_eq!(small.segment_range(0), 0..3);
}

#[test]
fn control_write_invalidates_only_its_segment() {
    let (model, nodes) = fleet(12);
    let load = FlatLoad { kappa: 2.5 };
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(4);
    settle(&mut bank, &model, &load, Seconds(0.2));
    assert!((0..3).all(|s| bank.segment_settled(s)));

    bank.set_power_limit(5, Watts(150.0)).unwrap();
    assert!(bank.segment_settled(0));
    assert!(!bank.segment_settled(1), "written segment must re-resolve");
    assert!(bank.segment_settled(2));

    let report = step_once(&mut bank, &model, &load, Seconds(0.2));
    assert_eq!(report.segments_replayed, 2);
    assert_eq!(report.segments_stepped, 1);
}

#[test]
fn fault_and_restore_on_segment_edge_hosts() {
    let (model, nodes) = fleet(8);
    let load = FlatLoad { kappa: 2.5 };
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(4);
    settle(&mut bank, &model, &load, Seconds(0.2));

    // First host of the second segment: only segment 1 re-steps.
    bank.inject(4, FaultKind::TelemetryDropout { iterations: 2 });
    assert!(bank.segment_settled(0));
    assert!(!bank.segment_settled(1));
    settle(&mut bank, &model, &load, Seconds(0.2));

    // Last host of the first segment: only segment 0 re-steps.
    bank.set_freq_cap(3, Some(Hertz::from_ghz(1.8))).unwrap();
    assert!(!bank.segment_settled(0));
    assert!(bank.segment_settled(1));
    settle(&mut bank, &model, &load, Seconds(0.2));

    // Restore (clear the cap) dirties the same single segment again.
    bank.set_freq_cap(3, None).unwrap();
    assert!(!bank.segment_settled(0));
    assert!(bank.segment_settled(1));
    settle(&mut bank, &model, &load, Seconds(0.2));
    assert!((0..2).all(|s| bank.segment_settled(s)));
}

#[test]
fn health_marks_do_not_invalidate_segments() {
    let (model, nodes) = fleet(6);
    let load = FlatLoad { kappa: 2.5 };
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(2);
    settle(&mut bank, &model, &load, Seconds(0.2));

    // Health is bookkeeping for the trust layer; it never feeds the
    // stepping arithmetic, so flipping it must not cost a re-resolve.
    bank.mark_suspect(0);
    bank.mark_healthy(0);
    assert!((0..3).all(|s| bank.segment_settled(s)));
    let report = step_once(&mut bank, &model, &load, Seconds(0.2));
    assert_eq!(report.segments_replayed, 3);
    assert_eq!(report.segments_stepped, 0);
}

#[test]
fn replay_requires_matching_dt() {
    let (model, nodes) = fleet(4);
    let load = FlatLoad { kappa: 2.5 };
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(2);
    settle(&mut bank, &model, &load, Seconds(0.2));

    // A different dt changes the filter coefficient, so the settled
    // fixed point no longer proves the update is a no-op: full re-step.
    let n = bank.len();
    let mut ops = vec![None; n];
    let mut results = vec![HostStep::Skipped; n];
    for (h, op) in ops.iter_mut().enumerate() {
        *op = Some(bank.operating_point(h, &model, &load));
    }
    let report = bank.step_all_partial(Seconds(0.5), &ops, &mut results, false);
    assert_eq!(report.segments_replayed, 0);
    assert_eq!(report.segments_stepped, 2);
}

#[test]
fn step_report_counts_partial_invalidation() {
    let (model, nodes) = fleet(9);
    let load = FlatLoad { kappa: 2.5 };
    let mut bank = NodeBank::from_nodes(nodes);
    bank.set_segment_hosts(3);
    settle(&mut bank, &model, &load, Seconds(0.2));

    let report = step_once(&mut bank, &model, &load, Seconds(0.2));
    assert_eq!(report.segments_replayed, 3);
    assert_eq!(report.segments_stepped, 0);
    assert!(report.all_settled);

    bank.set_power_limit(8, Watts(140.0)).unwrap();
    let report = step_once(&mut bank, &model, &load, Seconds(0.2));
    assert_eq!(report.segments_replayed, 2);
    assert_eq!(report.segments_stepped, 1);
    assert!(!report.all_settled, "re-enforcement is in flight");
}
