//! MSR sub-domain (PP0/DRAM) semantics, tested at the package and node
//! level where [`RaplPackage::advance`] runs the full scaphandre-style
//! arithmetic: independent per-plane energy counters with 32-bit
//! wraparound, per-plane limit registers behind the msr-safe allowlist,
//! clamp ordering of plane-vs-package limits, and stuck-RAPL faults
//! confined to one plane.

use pmstack_simhw::msr::address;
use pmstack_simhw::rapl::{EnergyCounterReader, RaplPackage};
use pmstack_simhw::{
    machines, quartz_spec, ClassId, DomainConfig, Joules, Node, NodeClass, NodeId, PowerModel,
    RaplDomain, Seconds, Watts,
};

fn domain_pkg() -> RaplPackage {
    let mut p = RaplPackage::new(Watts(120.0), Watts(68.0), Watts(135.0)).unwrap();
    p.enable_domains(DomainConfig {
        pp0_fraction: 0.72,
        dram_power: Watts(14.0),
    })
    .unwrap();
    p
}

#[test]
fn pp0_energy_never_exceeds_pkg_energy() {
    let mut p = domain_pkg();
    for i in 0..200 {
        // Vary the draw so the invariant is exercised off the steady path.
        let w = 60.0 + 40.0 * ((i % 7) as f64 / 6.0);
        p.advance(Seconds(0.1), Watts(w));
        let pkg = p.domain_energy(RaplDomain::Pkg).unwrap();
        let pp0 = p.domain_energy(RaplDomain::Pp0).unwrap();
        assert!(
            pp0 <= pkg,
            "PP0 energy {pp0} exceeded PKG energy {pkg} at step {i}"
        );
    }
    // And the split is exactly the configured fraction of package energy.
    let pkg = p.domain_energy(RaplDomain::Pkg).unwrap();
    let pp0 = p.domain_energy(RaplDomain::Pp0).unwrap();
    assert!((pp0.value() / pkg.value() - 0.72).abs() < 1e-9);
}

#[test]
fn sub_domain_counters_wrap_independently() {
    let mut p = domain_pkg();
    let u = p.units();
    // Drive enough energy through PP0 to wrap its 32-bit counter; DRAM
    // accumulates slowly and must not wrap.
    let wrap_j = u.energy_j * 4294967296.0;
    p.advance(Seconds(1.0), Watts((wrap_j - 100.0) / 0.72));
    let c1 = p.read_domain_energy_counter(RaplDomain::Pp0).unwrap();
    p.advance(Seconds(1.0), Watts(300.0));
    let c2 = p.read_domain_energy_counter(RaplDomain::Pp0).unwrap();
    assert!(c2 < c1, "PP0 counter must wrap");

    let mut rd = EnergyCounterReader::new(&u);
    rd.sample(c1);
    let delta = rd.sample(c2);
    assert!(
        (delta.value() - 300.0 * 0.72).abs() < 1.0,
        "wraparound-corrected PP0 delta ≈ 216 J, got {delta}"
    );

    // The DRAM counter tracked its own (much smaller) draw: 14 W for 2 s.
    let dram = p.domain_energy(RaplDomain::Dram).unwrap();
    assert!((dram.value() - 28.0).abs() < 1e-9);
    let dc = p.read_domain_energy_counter(RaplDomain::Dram).unwrap();
    assert!((f64::from(dc) * u.energy_j - 28.0).abs() < 0.01);
}

#[test]
fn plane_limit_clamps_into_plane_range() {
    let mut p = domain_pkg();
    // PP0 range is the package range scaled by the fraction:
    // [68, 135] × 0.72 ≈ [48.96, 97.2].
    let hi = p.set_domain_limit(RaplDomain::Pp0, Watts(500.0)).unwrap();
    assert!((hi.value() - 135.0 * 0.72).abs() < 1e-9);
    let lo = p.set_domain_limit(RaplDomain::Pp0, Watts(1.0)).unwrap();
    assert!((lo.value() - 68.0 * 0.72).abs() < 1e-9);
    // DRAM range is [0, 2 × dram_power] = [0, 28].
    let d = p.set_domain_limit(RaplDomain::Dram, Watts(100.0)).unwrap();
    assert!((d.value() - 28.0).abs() < 1e-9);
    // The programmed value reads back through the plane's own register.
    let pl = p.domain_limit(RaplDomain::Dram).unwrap();
    assert!((pl.limit.value() - 28.0).abs() < p.units().power_w);
    // The package plane keeps its explicit reject-out-of-range contract.
    assert!(p.set_domain_limit(RaplDomain::Pkg, Watts(100.0)).is_err());
}

#[test]
fn clamp_ordering_package_share_caps_the_plane_target() {
    // The plane's own limit applies first, then the package share caps it
    // (equivalently the min of the two): with the package enforcing 90 W,
    // the PP0 target can never exceed 90 × 0.72 = 64.8 W even though the
    // plane's own register still allows 97.2 W.
    let mut p = domain_pkg();
    p.set_limit(pmstack_simhw::rapl::PowerLimit {
        limit: Watts(90.0),
        enabled: true,
        clamp: true,
        time_window: Seconds(1.0),
    })
    .unwrap();
    for _ in 0..400 {
        p.advance(Seconds(0.2), Watts(85.0));
    }
    let pp0 = p.domain_enforced(RaplDomain::Pp0).unwrap();
    assert!(
        (pp0.value() - 90.0 * 0.72).abs() < 0.5,
        "PP0 enforcement settled to the package share, got {pp0}"
    );
    // Tightening the plane's own limit below the share takes over.
    p.set_domain_limit(RaplDomain::Pp0, Watts(55.0)).unwrap();
    for _ in 0..400 {
        p.advance(Seconds(0.2), Watts(85.0));
    }
    let pp0 = p.domain_enforced(RaplDomain::Pp0).unwrap();
    assert!(
        (pp0.value() - 55.0).abs() < 0.5,
        "PP0 enforcement settled to its own limit, got {pp0}"
    );
}

#[test]
fn stuck_plane_leaves_siblings_live() {
    let mut p = domain_pkg();
    p.inject_domain_stuck(RaplDomain::Pp0, Watts(60.0)).unwrap();
    // Writes to the stuck plane silently latch the pinned value…
    let got = p.set_domain_limit(RaplDomain::Pp0, Watts(90.0)).unwrap();
    assert_eq!(got, Watts(60.0));
    let pl = p.domain_limit(RaplDomain::Pp0).unwrap();
    assert!((pl.limit.value() - 60.0).abs() < p.units().power_w);
    // …while the DRAM plane and the package plane keep working.
    let d = p.set_domain_limit(RaplDomain::Dram, Watts(10.0)).unwrap();
    assert!((d.value() - 10.0).abs() < 1e-9);
    p.set_limit(pmstack_simhw::rapl::PowerLimit {
        limit: Watts(100.0),
        enabled: true,
        clamp: true,
        time_window: Seconds(1.0),
    })
    .unwrap();
    assert!((p.limit().limit.value() - 100.0).abs() < p.units().power_w);
    // The package-plane stuck fault stays a node-level concept.
    assert!(p.inject_domain_stuck(RaplDomain::Pkg, Watts(80.0)).is_err());
}

#[test]
fn sub_plane_registers_sit_behind_the_allowlist() {
    let p = domain_pkg();
    // Energy-status planes are read-only through the device…
    let mut dev = p.msrs().clone();
    assert!(dev.write(address::PP0_ENERGY_STATUS, 1).is_err());
    assert!(dev.write(address::DRAM_ENERGY_STATUS, 1).is_err());
    // …and the plane lock bits are not writable.
    let cur = dev.read(address::PP0_POWER_LIMIT).unwrap();
    assert!(dev
        .write(address::PP0_POWER_LIMIT, cur | (1 << 31))
        .is_err());
    // In-range limit-field rewrites are fine.
    dev.write(address::PP0_POWER_LIMIT, cur).unwrap();
}

#[test]
fn pkg_only_package_rejects_domain_access() {
    let p = RaplPackage::new(Watts(120.0), Watts(68.0), Watts(135.0)).unwrap();
    assert!(!p.has_domains());
    assert!(p.domain_energy(RaplDomain::Pp0).is_err());
    assert!(p.domain_enforced(RaplDomain::Dram).is_err());
    // PKG accessors still answer (they alias the classic surface).
    assert_eq!(p.domain_energy(RaplDomain::Pkg).unwrap(), Joules::ZERO);
    assert_eq!(
        p.domain_enforced(RaplDomain::Pkg).unwrap(),
        p.enforced_limit()
    );
}

#[test]
fn classed_node_wires_domains_through_every_socket() {
    let class = NodeClass {
        name: "quartz".to_string(),
        spec: quartz_spec(),
        idle_floor: Watts(72.0),
        domains: Some(DomainConfig {
            pp0_fraction: 0.72,
            dram_power: Watts(14.0),
        }),
    };
    let model = PowerModel::new(class.spec.clone()).unwrap();
    let node = Node::with_class(NodeId(0), ClassId(0), &class, &model, 1.0).unwrap();
    assert!(node.has_domains());
    assert_eq!(node.class_id(), ClassId(0));
    for pkg in node.packages() {
        assert!(pkg.has_domains());
    }
    // The classic constructor stays PKG-only.
    let plain = Node::new(NodeId(1), &model, 1.0).unwrap();
    assert!(!plain.has_domains());
    assert_eq!(plain.class_id(), ClassId(0));
}

#[test]
fn node_level_stuck_domain_keeps_sibling_domains_and_pkg_live() {
    let class = NodeClass {
        name: "stout".to_string(),
        spec: machines::stout_spec(),
        idle_floor: Watts(30.0),
        domains: Some(DomainConfig {
            pp0_fraction: 0.78,
            dram_power: Watts(9.0),
        }),
    };
    let model = PowerModel::new(class.spec.clone()).unwrap();
    let mut node = Node::with_class(NodeId(0), ClassId(0), &class, &model, 1.0).unwrap();
    node.inject_domain_stuck(RaplDomain::Pp0, Watts(60.0))
        .unwrap();
    let latched = node.set_domain_limit(RaplDomain::Pp0, Watts(80.0)).unwrap();
    assert_eq!(latched, Watts(60.0));
    // DRAM and PKG writes still take effect.
    let dram = node
        .set_domain_limit(RaplDomain::Dram, Watts(12.0))
        .unwrap();
    assert!((dram.value() - 12.0).abs() < 0.3);
    node.set_power_limit(Watts(80.0)).unwrap();
    assert!((node.power_limit().value() - 80.0).abs() < 0.2);
    assert!(node.stuck_limit().is_none(), "PKG plane is not stuck");
}
