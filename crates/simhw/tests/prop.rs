//! Property-based tests of the hardware substrate invariants.

use pmstack_simhw::power::CoreClass;
use pmstack_simhw::rapl::{
    decode_power_limit, encode_power_limit, EnergyCounterReader, PowerLimit, RaplPackage,
    RaplUnits, DEFAULT_UNIT_REGISTER,
};
use pmstack_simhw::{quartz_spec, Hertz, PStateLadder, PowerModel, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    /// PL1 encode/decode round-trips within one LSB for any limit in the
    /// settable range and any representable window.
    #[test]
    fn power_limit_roundtrip(limit_w in 1.0f64..4000.0, window_s in 0.001f64..10.0) {
        let units = RaplUnits::decode(DEFAULT_UNIT_REGISTER);
        let pl = PowerLimit {
            limit: Watts(limit_w),
            enabled: true,
            clamp: true,
            time_window: Seconds(window_s),
        };
        let decoded = decode_power_limit(encode_power_limit(&pl, &units), &units);
        prop_assert!((decoded.limit.value() - limit_w).abs() <= units.power_w / 2.0 + 1e-9);
        prop_assert!(decoded.enabled && decoded.clamp);
        // Window quantization error of the (1+F/4)*2^E format is < 12.5%.
        prop_assert!((decoded.time_window.value() - window_s).abs() <= window_s * 0.125 + units.time_s);
    }

    /// The energy counter reader reconstructs any sequence of power draws
    /// despite 32-bit wraparound.
    #[test]
    fn energy_counter_wraparound(powers in prop::collection::vec(1.0f64..260.0, 1..40)) {
        let mut pkg = RaplPackage::new(Watts(120.0), Watts(68.0), Watts(135.0)).unwrap();
        let units = pkg.units();
        let mut reader = EnergyCounterReader::new(&units);
        reader.sample(pkg.read_energy_counter().unwrap());
        // Bias the trajectory near a wrap point to exercise it.
        pkg.advance(Seconds(1.0), Watts(units.energy_j * 4294967296.0 - 500.0));
        reader.sample(pkg.read_energy_counter().unwrap());

        let mut recovered = 0.0;
        let mut truth = 0.0;
        for p in powers {
            pkg.advance(Seconds(1.0), Watts(p));
            truth += p;
            recovered += reader.sample(pkg.read_energy_counter().unwrap()).value();
        }
        prop_assert!((recovered - truth).abs() < 1.0, "recovered {recovered} vs {truth}");
    }

    /// Node power is monotone in frequency and in the variation factor for
    /// any positive activity.
    #[test]
    fn power_monotone(kappa in 0.1f64..5.0, eps in 0.85f64..1.18, ghz in 1.2f64..2.5) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let classes = |f: f64| {
            [CoreClass { count: 34, kappa, freq: Hertz::from_ghz(f) }]
        };
        let p_lo = model.node_power(eps, &classes(ghz));
        let p_hi = model.node_power(eps, &classes(ghz + 0.1));
        prop_assert!(p_hi > p_lo);
        let p_more_eps = model.node_power(eps + 0.01, &classes(ghz));
        prop_assert!(p_more_eps > p_lo);
    }

    /// freq_for_power inverts node_power wherever a solution exists.
    #[test]
    fn freq_power_inversion(kappa in 0.5f64..4.0, eps in 0.9f64..1.1, ghz in 1.25f64..2.55) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let f = Hertz::from_ghz(ghz);
        let p = model.node_power(eps, &[CoreClass { count: 34, kappa, freq: f }]);
        let back = model.freq_for_power(eps, 34, kappa, p).expect("in range");
        prop_assert!((back.ghz() - ghz).abs() < 1e-6);
    }

    /// The p-state ladder's floor is always the highest step not above the
    /// query, and highest_fitting agrees with a linear scan.
    #[test]
    fn ladder_floor_consistency(query_ghz in 1.0f64..3.0, cutoff_ghz in 1.0f64..3.0) {
        let ladder = PStateLadder::new(
            Hertz::from_ghz(1.2),
            Hertz::from_ghz(2.6),
            Hertz(100e6),
        ).unwrap();
        if let Some(f) = ladder.floor(Hertz::from_ghz(query_ghz)) {
            prop_assert!(f.ghz() <= query_ghz + 1e-9);
            // No higher step also fits.
            for &s in ladder.steps() {
                if s > f {
                    prop_assert!(s.ghz() > query_ghz + 1e-9);
                }
            }
        } else {
            prop_assert!(query_ghz < 1.2);
        }
        let fit = ladder.highest_fitting(|s| s.ghz() <= cutoff_ghz);
        let scan = ladder
            .steps()
            .iter()
            .rev()
            .find(|s| s.ghz() <= cutoff_ghz)
            .copied()
            .unwrap_or(ladder.min());
        prop_assert_eq!(fit, scan);
    }

    /// RAPL enforcement always settles to the programmed limit, from any
    /// starting limit, within a bounded number of windows.
    #[test]
    fn enforcement_settles(target_w in 68.0f64..120.0, start_w in 68.0f64..120.0) {
        let mut pkg = RaplPackage::new(Watts(120.0), Watts(68.0), Watts(120.0)).unwrap();
        let mk = |w: f64| PowerLimit {
            limit: Watts(w),
            enabled: true,
            clamp: true,
            time_window: Seconds(1.0),
        };
        pkg.set_limit(mk(start_w)).unwrap();
        for _ in 0..100 {
            pkg.advance(Seconds(0.5), Watts(100.0));
        }
        pkg.set_limit(mk(target_w)).unwrap();
        for _ in 0..100 {
            pkg.advance(Seconds(0.5), Watts(100.0));
        }
        prop_assert!((pkg.enforced_limit().value() - target_w).abs() < 0.1);
    }
}
