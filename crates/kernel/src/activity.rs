//! Per-core activity coefficients κ.
//!
//! The node power model in `pmstack-simhw` takes a dimensionless activity
//! coefficient per core class; this module derives those coefficients from
//! a kernel configuration via the roofline utilizations:
//!
//! ```text
//! κ_compute = a_vec·u_fpu + b·u_mem + e·u_mem/(1 + I) + c0
//! ```
//!
//! * `u_fpu` — floating-point unit utilization (achieved FLOP rate over the
//!   vector-width-specific peak),
//! * `u_mem` — memory-system utilization (achieved bandwidth over the
//!   per-core share of node DRAM bandwidth),
//! * the `e·u_mem/(1+I)` term models load-stream front-end activity that
//!   dominates at very low intensity (why the 0.25 F/B row of Fig. 4 is
//!   hotter than the 1 F/B row),
//! * `c0` — base pipeline activity of a busy core.
//!
//! The constants are calibrated so the uncapped heat map of Fig. 4
//! (207–232 W per node across the `ymm` grid, peak near the ridge intensity,
//! insensitive to imbalance) is reproduced; see DESIGN.md §4.2.

use crate::config::{KernelConfig, VectorWidth};
use pmstack_simhw::MachineSpec;
use serde::{Deserialize, Serialize};

/// FPU activity weight for the 256-bit path.
pub const A_YMM: f64 = 0.754;
/// FPU activity weight for the 128-bit path.
pub const A_XMM: f64 = 0.60;
/// FPU activity weight for the scalar path.
pub const A_SCALAR: f64 = 0.42;
/// Memory-system activity weight.
pub const B_MEM: f64 = 0.422;
/// Load-stream front-end activity weight.
pub const E_LOAD: f64 = 0.515;
/// Base activity of any busy core.
pub const C_BASE: f64 = 1.815;
/// Activity of a core spin-polling at `MPI_Barrier`. Spin loops retire at
/// high IPC, so polling power is ≈93% of typical compute power — which is
/// what makes the uncapped power of Fig. 4 insensitive to imbalance.
pub const KAPPA_POLL: f64 = 2.45;

fn a_vec(vector: VectorWidth) -> f64 {
    match vector {
        VectorWidth::Scalar => A_SCALAR,
        VectorWidth::Xmm => A_XMM,
        VectorWidth::Ymm => A_YMM,
    }
}

/// Roofline utilizations and the resulting activity coefficient for one
/// kernel configuration on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityCoeffs {
    /// FPU utilization in `[0, 1]`.
    pub u_fpu: f64,
    /// Memory-system utilization in `[0, 1]`.
    pub u_mem: f64,
    /// Activity coefficient of a computing core.
    pub kappa_compute: f64,
    /// Activity coefficient of a polling core.
    pub kappa_poll: f64,
}

impl ActivityCoeffs {
    /// Derive the coefficients for `config` on `spec`, given the per-core
    /// share of DRAM bandwidth (which depends on how many ranks on the node
    /// are actually streaming memory).
    pub fn derive(config: &KernelConfig, spec: &MachineSpec, bw_share_bytes_per_s: f64) -> Self {
        let peak_flops = config.vector.flops_per_cycle() * spec.f_turbo.value();
        let (u_fpu, u_mem) = if config.intensity == 0.0 {
            // Pure streaming: no FP work, memory saturated.
            (0.0, 1.0)
        } else {
            // Achieved byte rate is roofline-limited; utilizations follow.
            let byte_rate = (peak_flops / config.intensity).min(bw_share_bytes_per_s);
            let flop_rate = byte_rate * config.intensity;
            (flop_rate / peak_flops, byte_rate / bw_share_bytes_per_s)
        };
        let kappa_compute = a_vec(config.vector) * u_fpu
            + B_MEM * u_mem
            + E_LOAD * u_mem / (1.0 + config.intensity)
            + C_BASE;
        Self {
            u_fpu,
            u_mem,
            kappa_compute,
            kappa_poll: KAPPA_POLL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use pmstack_simhw::quartz_spec;

    fn coeffs(intensity: f64) -> ActivityCoeffs {
        let spec = quartz_spec();
        let bw_share = spec.dram_bw_bytes_per_s / spec.cores_used_per_node as f64;
        ActivityCoeffs::derive(&KernelConfig::balanced_ymm(intensity), &spec, bw_share)
    }

    #[test]
    fn utilizations_are_bounded() {
        for &i in &[0.0, 0.25, 1.0, 8.0, 32.0, 1000.0] {
            let c = coeffs(i);
            assert!((0.0..=1.0).contains(&c.u_fpu), "u_fpu at I={i}");
            assert!((0.0..=1.0).contains(&c.u_mem), "u_mem at I={i}");
        }
    }

    #[test]
    fn memory_bound_below_ridge_compute_bound_above() {
        // Quartz ymm ridge ≈ 9.4 F/B (16 f/c · 2.6 GHz over 4.4 GB/s/core).
        let low = coeffs(1.0);
        assert!((low.u_mem - 1.0).abs() < 1e-12);
        assert!(low.u_fpu < 0.2);
        let high = coeffs(32.0);
        assert!((high.u_fpu - 1.0).abs() < 1e-12);
        assert!(high.u_mem < 0.5);
    }

    #[test]
    fn activity_peaks_near_ridge() {
        // Fig. 4: the hottest row of the heat map is the mid-intensity one,
        // where both the FPU and the memory system are near saturation.
        let k8 = coeffs(8.0).kappa_compute;
        assert!(k8 > coeffs(1.0).kappa_compute);
        assert!(k8 > coeffs(32.0).kappa_compute);
    }

    #[test]
    fn low_intensity_dip_reproduced() {
        // Fig. 4: the 0.25 F/B row is hotter than the 1 F/B row (load-stream
        // activity), even though both are fully memory bound.
        assert!(coeffs(0.25).kappa_compute > coeffs(1.0).kappa_compute);
    }

    #[test]
    fn wider_vectors_burn_more_power_when_compute_bound() {
        let spec = quartz_spec();
        let bw = spec.dram_bw_bytes_per_s / spec.cores_used_per_node as f64;
        let mk = |v| {
            let mut c = KernelConfig::balanced_ymm(32.0);
            c.vector = v;
            ActivityCoeffs::derive(&c, &spec, bw).kappa_compute
        };
        // All three widths are compute-bound at 32 F/B, so κ follows a_vec.
        assert!(mk(VectorWidth::Ymm) > mk(VectorWidth::Xmm));
        assert!(mk(VectorWidth::Xmm) > mk(VectorWidth::Scalar));
    }

    #[test]
    fn poll_activity_is_near_compute_activity() {
        // The Fig. 4 imbalance-insensitivity requires κ_poll within ~10% of
        // typical compute κ.
        let typical = coeffs(1.0).kappa_compute;
        let ratio = KAPPA_POLL / typical;
        assert!((0.85..=1.05).contains(&ratio), "poll/compute ratio {ratio}");
    }
}
