//! Per-node rank composition.
//!
//! Every node of a job runs the same kernel configuration with one rank per
//! used core. Ranks fall into three classes (Fig. 2):
//!
//! * **waiting** ranks poll at the barrier for the whole iteration,
//! * **critical** ranks carry the (possibly multiplied) largest work and
//!   define the iteration's elapsed time,
//! * **common** ranks carry the base work, finish early when the
//!   configuration is imbalanced, and poll for the remainder.

use crate::config::{Imbalance, KernelConfig};
use serde::{Deserialize, Serialize};

/// Fraction of ranks designated as critical in imbalanced configurations
/// (the "Imbalance Work" slice of Fig. 2).
pub const CRITICAL_FRACTION: f64 = 0.125;

/// Counts of each rank class on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankComposition {
    /// Ranks polling the whole iteration.
    pub waiting: usize,
    /// Ranks on the critical path.
    pub critical: usize,
    /// Working ranks not on the critical path.
    pub common: usize,
}

impl RankComposition {
    /// Partition `cores` ranks according to the configuration.
    ///
    /// Waiting ranks take `round(waiting · cores)`. In an imbalanced
    /// configuration, `round(CRITICAL_FRACTION · cores)` of the remaining
    /// ranks (at least one) carry the multiplied work; the rest are common.
    /// In a balanced configuration every working rank is on the critical
    /// path and the common class is empty.
    pub fn for_node(config: &KernelConfig, cores: usize) -> Self {
        assert!(cores > 0, "a node must run at least one rank");
        let waiting = ((config.waiting.fraction() * cores as f64).round() as usize).min(cores - 1);
        let working = cores - waiting;
        match config.imbalance {
            Imbalance::Balanced => Self {
                waiting,
                critical: working,
                common: 0,
            },
            _ => {
                let critical =
                    ((CRITICAL_FRACTION * cores as f64).round() as usize).clamp(1, working);
                Self {
                    waiting,
                    critical,
                    common: working - critical,
                }
            }
        }
    }

    /// Total ranks.
    pub fn total(&self) -> usize {
        self.waiting + self.critical + self.common
    }

    /// Working (non-polling) ranks.
    pub fn working(&self) -> usize {
        self.critical + self.common
    }

    /// Sum of work multipliers across ranks, in units of the common work:
    /// `critical·k + common`. Used for per-node FLOP and byte totals.
    pub fn total_work_units(&self, imbalance: Imbalance) -> f64 {
        self.critical as f64 * imbalance.factor() + self.common as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{VectorWidth, WaitingFraction};

    fn cfg(w: WaitingFraction, k: Imbalance) -> KernelConfig {
        KernelConfig::new(8.0, VectorWidth::Ymm, w, k)
    }

    #[test]
    fn balanced_no_waiting_is_all_critical() {
        let c = RankComposition::for_node(&cfg(WaitingFraction::P0, Imbalance::Balanced), 34);
        assert_eq!(
            c,
            RankComposition {
                waiting: 0,
                critical: 34,
                common: 0
            }
        );
    }

    #[test]
    fn partition_always_totals_cores() {
        for w in WaitingFraction::all() {
            for k in Imbalance::all() {
                let c = RankComposition::for_node(&cfg(w, k), 34);
                assert_eq!(c.total(), 34, "{w} {k}");
                assert!(c.critical >= 1, "{w} {k} must keep a critical rank");
            }
        }
    }

    #[test]
    fn paper_composition_75pct_2x() {
        // 75% of 34 ranks wait (26); of the remaining 8, ~12.5% of the node
        // (4 ranks) carry the imbalanced work.
        let c = RankComposition::for_node(&cfg(WaitingFraction::P75, Imbalance::TwoX), 34);
        assert_eq!(c.waiting, 26);
        assert_eq!(c.critical, 4);
        assert_eq!(c.common, 4);
    }

    #[test]
    fn waiting_never_consumes_all_cores() {
        let c = RankComposition::for_node(&cfg(WaitingFraction::P75, Imbalance::Balanced), 2);
        assert!(c.working() >= 1);
    }

    #[test]
    fn work_units_weight_critical_ranks() {
        let c = RankComposition::for_node(&cfg(WaitingFraction::P50, Imbalance::ThreeX), 34);
        // 17 waiting, 4 critical at 3x, 13 common.
        assert_eq!(c.waiting, 17);
        assert_eq!(c.critical, 4);
        assert_eq!(c.common, 13);
        assert_eq!(c.total_work_units(Imbalance::ThreeX), 4.0 * 3.0 + 13.0);
    }

    #[test]
    fn single_core_node_is_one_critical_rank() {
        let c = RankComposition::for_node(&cfg(WaitingFraction::P0, Imbalance::TwoX), 1);
        assert_eq!(c.critical, 1);
        assert_eq!(c.waiting + c.common, 0);
    }
}
