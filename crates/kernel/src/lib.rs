//! # pmstack-kernel — the synthetic arithmetic-intensity benchmark
//!
//! The paper's workloads are instances of a synthetic kernel (derived from
//! Choi et al.'s roofline-of-energy benchmark) with four knobs that shape a
//! job's power/performance signature (§IV-A, Fig. 2):
//!
//! * **computational intensity** — FLOPs per byte of memory traffic,
//! * **vector width** — scalar / 128-bit `xmm` / 256-bit `ymm` FMA paths,
//! * **percent of waiting ranks** — ranks that poll at `MPI_Barrier` the
//!   whole iteration, consuming power without making progress,
//! * **work imbalance** — designated critical ranks carry 2× or 3× the
//!   common work, so only they are on the bulk-synchronous critical path.
//!
//! This crate provides both:
//!
//! * an **analytic model** of the kernel against the simulated machine —
//!   roofline-limited iteration time, per-core-class activity coefficients,
//!   and a [`simhw::LoadModel`](pmstack_simhw::LoadModel) implementation
//!   whose `operating_point` models the PCU demoting spin-polling cores
//!   before the critical path (the behaviour the GEOPM power balancer
//!   exploits), and
//! * a **native executable micro-kernel** ([`native`]) that runs real
//!   FMA/load loops at a configurable intensity, for calibration on real
//!   hardware.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod composition;
pub mod config;
pub mod load;
pub mod native;
pub mod perf;
pub mod phases;

pub use activity::{ActivityCoeffs, KAPPA_POLL};
pub use composition::RankComposition;
pub use config::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
pub use load::KernelLoad;
pub use perf::PerfModel;
pub use phases::{Phase, PhasedWorkload};
