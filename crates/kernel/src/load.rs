//! The kernel as a hardware load: power as a function of the operating
//! point, and the PCU demotion logic under a cap.
//!
//! A node running the kernel has three core classes (critical, common,
//! waiting — see [`crate::composition`]). The package control unit resolves
//! a power cap in two stages, mirroring per-core p-state hardware:
//!
//! 1. **Uncapped** — with power headroom, everything races at the turbo
//!    ceiling, including spin loops (this is why the uncapped power of
//!    Fig. 4 is insensitive to imbalance).
//! 2. **Trail demotion** — when the cap binds, cores with pause-idle cycles
//!    (polling and slack ranks) are demoted first, down to the spin floor
//!    frequency, while the critical path stays at turbo. This region is the
//!    power the GEOPM balancer can harvest with *zero* performance loss —
//!    the gap between Fig. 4 (used) and Fig. 5 (needed).
//! 3. **Lead throttle** — below that, everybody slows together and the
//!    iteration stretches.

use crate::config::KernelConfig;
use crate::perf::PerfModel;
use pmstack_simhw::power::{CoreClass, OperatingPoint};
use pmstack_simhw::{Hertz, Joules, LoadModel, MachineSpec, PowerModel, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A kernel configuration bound to a machine, usable as a
/// [`LoadModel`] by the simulated nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLoad {
    perf: PerfModel,
    poll_floor: Hertz,
    f_turbo: Hertz,
}

impl KernelLoad {
    /// Bind `config` to the machine described by `spec`.
    pub fn new(config: KernelConfig, spec: &MachineSpec) -> Self {
        Self {
            perf: PerfModel::new(config, spec),
            poll_floor: spec.poll_freq_floor,
            f_turbo: spec.f_turbo,
        }
    }

    /// The underlying performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        self.perf.config()
    }

    /// The frequency of the *common* (partially busy) cores when fully
    /// waiting cores run at `trail`: the PCU demotes a core in proportion to
    /// its pause-idle duty cycle, so a common core that computes `1/k` of
    /// the iteration only trails `(1 - 1/k)` of the way from the lead
    /// frequency to the waiting cores' frequency.
    fn common_freq(&self, lead: Hertz, trail: Hertz) -> Hertz {
        let k = self.config().imbalance.factor();
        let idle_frac = 1.0 - 1.0 / k;
        (lead - (lead - trail) * idle_frac).max(trail)
    }

    /// Node power with critical cores at `lead` and fully-waiting cores at
    /// `trail`; common cores sit between the two, trailing in proportion to
    /// their pause-idle duty cycle.
    pub fn power(&self, model: &PowerModel, eps: f64, lead: Hertz, trail: Hertz) -> Watts {
        let comp = self.perf.composition();
        let coeffs = self.perf.coeffs();
        let f_common = self.common_freq(lead, trail);
        let common_frac = self.perf.common_compute_fraction(lead, f_common);
        let kappa_common =
            common_frac * coeffs.kappa_compute + (1.0 - common_frac) * coeffs.kappa_poll;
        let classes = [
            CoreClass {
                count: comp.critical,
                kappa: coeffs.kappa_compute,
                freq: lead,
            },
            CoreClass {
                count: comp.common,
                kappa: kappa_common,
                freq: f_common,
            },
            CoreClass {
                count: comp.waiting,
                kappa: coeffs.kappa_poll,
                freq: trail,
            },
        ];
        model.node_power(eps, &classes)
    }

    /// Power of an unconstrained node: everything (including spin loops)
    /// races at the turbo ceiling. This is what the GEOPM *monitor* agent
    /// observes (Fig. 4).
    pub fn used_power(&self, model: &PowerModel, eps: f64) -> Watts {
        self.power(model, eps, self.f_turbo, self.f_turbo)
    }

    /// Minimum power at which the node loses no performance: critical cores
    /// at turbo, trailing cores demoted to the spin floor. This is what the
    /// *power balancer* characterization converges to (Fig. 5).
    pub fn needed_power(&self, model: &PowerModel, eps: f64) -> Watts {
        self.power(model, eps, self.f_turbo, self.poll_floor)
    }

    /// The *continuous* achieved lead frequency under `cap` — the
    /// time-average a frequency counter reports while RAPL dithers between
    /// adjacent p-states. Used by the hardware-variation screen (Fig. 6),
    /// where the quantized ladder would hide the variation signal.
    pub fn achieved_frequency(&self, model: &PowerModel, eps: f64, cap: Watts) -> Hertz {
        if self.needed_power(model, eps) <= cap {
            return self.f_turbo;
        }
        let spec = model.spec();
        let power_at = |lead: Hertz| self.power(model, eps, lead, lead.min(self.poll_floor));
        let (mut lo, mut hi) = (spec.f_min, self.f_turbo);
        if power_at(lo) >= cap {
            return lo;
        }
        for _ in 0..48 {
            let mid = Hertz((lo.value() + hi.value()) / 2.0);
            if power_at(mid) <= cap {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Elapsed time of one iteration at the given operating point.
    pub fn iteration_time(&self, op: &OperatingPoint) -> Seconds {
        self.perf.iteration_time(op.lead)
    }

    /// Node energy for one iteration at the given operating point.
    pub fn iteration_energy(&self, op: &OperatingPoint) -> Joules {
        op.power * self.iteration_time(op)
    }
}

impl LoadModel for KernelLoad {
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
        if lead >= self.f_turbo {
            self.used_power(model, eps)
        } else {
            self.power(model, eps, lead, lead.min(self.poll_floor))
        }
    }

    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        let slack = Watts(1e-9);
        // Stage 1: everything at turbo.
        let p_uncapped = self.used_power(model, eps);
        if p_uncapped <= cap + slack {
            return OperatingPoint {
                lead: self.f_turbo,
                trail: self.f_turbo,
                power: p_uncapped,
            };
        }
        // Stage 2: demote trailing cores down to the spin floor while the
        // critical path holds turbo. Power is monotone in trail, so the
        // first fitting step scanning downward is the highest fitting.
        let ladder = model.spec().pstates();
        for &trail in ladder.steps().iter().rev() {
            if trail >= self.f_turbo || trail < self.poll_floor {
                continue;
            }
            let p = self.power(model, eps, self.f_turbo, trail);
            if p <= cap + slack {
                return OperatingPoint {
                    lead: self.f_turbo,
                    trail,
                    power: p,
                };
            }
        }
        // Stage 3: throttle the lead; trailing cores ride at
        // min(lead, floor).
        for &lead in ladder.steps().iter().rev() {
            if lead >= self.f_turbo {
                continue;
            }
            let trail = lead.min(self.poll_floor);
            let p = self.power(model, eps, lead, trail);
            if p <= cap + slack {
                return OperatingPoint {
                    lead,
                    trail,
                    power: p,
                };
            }
        }
        // Nothing fits: hardware bottoms out at the minimum p-state.
        let lead = ladder.min();
        let trail = lead.min(self.poll_floor);
        OperatingPoint {
            lead,
            trail,
            power: self.power(model, eps, lead, trail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, PowerModel};

    fn setup(intensity: f64, w: WaitingFraction, k: Imbalance) -> (PowerModel, KernelLoad) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(KernelConfig::new(intensity, VectorWidth::Ymm, w, k), &spec);
        (model, load)
    }

    #[test]
    fn uncapped_power_matches_fig4_range() {
        // Fig. 4: balanced ymm rows range ~207-232 W/node uncapped.
        for &i in &KernelConfig::heatmap_intensities() {
            let (model, load) = setup(i, WaitingFraction::P0, Imbalance::Balanced);
            let p = load.used_power(&model, 1.0).value();
            assert!((200.0..240.0).contains(&p), "I={i}: {p} W");
        }
    }

    #[test]
    fn uncapped_power_insensitive_to_imbalance() {
        // Fig. 4: along a row, uncapped power moves only a few percent as
        // waiting/imbalance increase.
        let (model, base) = setup(1.0, WaitingFraction::P0, Imbalance::Balanced);
        let p0 = base.used_power(&model, 1.0).value();
        for (w, k) in KernelConfig::heatmap_columns() {
            let (_, load) = setup(1.0, w, k);
            let p = load.used_power(&model, 1.0).value();
            assert!(
                (p - p0).abs() / p0 < 0.06,
                "{w}/{k}: {p} vs {p0} differs more than 6%"
            );
        }
    }

    #[test]
    fn needed_power_strongly_sensitive_to_waiting() {
        // Fig. 5: needed power drops with the share of waiting ranks.
        let (model, p0) = setup(1.0, WaitingFraction::P0, Imbalance::Balanced);
        let (_, p25) = setup(1.0, WaitingFraction::P25, Imbalance::TwoX);
        let (_, p75) = setup(1.0, WaitingFraction::P75, Imbalance::TwoX);
        let n0 = p0.needed_power(&model, 1.0).value();
        let n25 = p25.needed_power(&model, 1.0).value();
        let n75 = p75.needed_power(&model, 1.0).value();
        assert!(n0 > n25 && n25 > n75, "{n0} > {n25} > {n75} expected");
        // Balanced configuration has no harvestable slack.
        let u0 = p0.used_power(&model, 1.0).value();
        assert!((u0 - n0).abs() < 1e-9);
        // Heavy waiting leaves ~8-12% harvestable (Fig. 5 vs Fig. 4).
        let (_, u75) = setup(1.0, WaitingFraction::P75, Imbalance::TwoX);
        let gap = 1.0 - n75 / u75.used_power(&model, 1.0).value();
        assert!((0.05..0.20).contains(&gap), "harvestable gap {gap}");
    }

    #[test]
    fn operating_point_uncapped_is_turbo() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(240.0));
        assert_eq!(op.lead, Hertz::from_ghz(2.6));
        assert_eq!(op.trail, Hertz::from_ghz(2.6));
    }

    #[test]
    fn cap_between_needed_and_used_preserves_lead() {
        let (model, load) = setup(8.0, WaitingFraction::P50, Imbalance::TwoX);
        let used = load.used_power(&model, 1.0);
        let needed = load.needed_power(&model, 1.0);
        assert!(needed < used);
        let cap = Watts((used.value() + needed.value()) / 2.0);
        let op = load.operating_point(&model, 1.0, cap);
        assert_eq!(op.lead, Hertz::from_ghz(2.6), "critical path untouched");
        assert!(op.trail < Hertz::from_ghz(2.6));
        assert!(op.power <= cap + Watts(1e-6));
    }

    #[test]
    fn cap_below_needed_throttles_lead() {
        let (model, load) = setup(8.0, WaitingFraction::P50, Imbalance::TwoX);
        let needed = load.needed_power(&model, 1.0);
        let op = load.operating_point(&model, 1.0, needed - Watts(20.0));
        assert!(op.lead < Hertz::from_ghz(2.6));
        assert!(op.power <= needed - Watts(20.0) + Watts(1e-6));
    }

    #[test]
    fn impossible_cap_bottoms_out_at_min_pstate() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(1.0));
        assert_eq!(op.lead, Hertz::from_ghz(1.2));
        assert!(op.power > Watts(1.0), "power floor exceeds absurd cap");
    }

    #[test]
    fn operating_point_power_is_monotone_in_cap() {
        let (model, load) = setup(4.0, WaitingFraction::P25, Imbalance::ThreeX);
        let mut last = Watts::ZERO;
        for cap_w in (130..=240).step_by(10) {
            let op = load.operating_point(&model, 1.0, Watts(cap_w as f64));
            assert!(
                op.power >= last - Watts(1e-9),
                "power not monotone at {cap_w} W"
            );
            last = op.power;
        }
    }

    #[test]
    fn iteration_energy_is_power_times_time() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(200.0));
        let e = load.iteration_energy(&op);
        assert!((e.value() - op.power.value() * load.iteration_time(&op).value()).abs() < 1e-9);
    }

    #[test]
    fn inefficient_node_needs_more_power() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        assert!(load.needed_power(&model, 1.07) > load.needed_power(&model, 0.94));
    }
}
