//! The kernel as a hardware load: power as a function of the operating
//! point, and the PCU demotion logic under a cap.
//!
//! A node running the kernel has three core classes (critical, common,
//! waiting — see [`crate::composition`]). The package control unit resolves
//! a power cap in two stages, mirroring per-core p-state hardware:
//!
//! 1. **Uncapped** — with power headroom, everything races at the turbo
//!    ceiling, including spin loops (this is why the uncapped power of
//!    Fig. 4 is insensitive to imbalance).
//! 2. **Trail demotion** — when the cap binds, cores with pause-idle cycles
//!    (polling and slack ranks) are demoted first, down to the spin floor
//!    frequency, while the critical path stays at turbo. This region is the
//!    power the GEOPM balancer can harvest with *zero* performance loss —
//!    the gap between Fig. 4 (used) and Fig. 5 (needed).
//! 3. **Lead throttle** — below that, everybody slows together and the
//!    iteration stretches.

use crate::config::KernelConfig;
use crate::perf::PerfModel;
use pmstack_simhw::power::{CoreClass, OperatingPoint};
use pmstack_simhw::{Hertz, Joules, LoadModel, MachineSpec, PowerModel, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed operating-point curves for one (kernel, machine) binding.
///
/// Every hot query the stack makes of a [`KernelLoad`] reduces to
/// `static_power(ε) + D·ε` for some dynamic coefficient `D = Σ count·κ·φ(f)`
/// that does **not** depend on ε — so D can be tabulated once per binding
/// and each per-node query becomes a binary search plus two FLOPs, with no
/// `powf` in the loop. Coefficients are computed with the exact closed-form
/// `φ`, so table-driven answers at ladder steps are bit-identical to the
/// direct scans they replace (see the `table_*_matches_scan` tests).
#[derive(Debug, Clone)]
struct OpTables {
    /// The machine the tables were built for; queries against a different
    /// spec fall back to the direct scans.
    spec: MachineSpec,
    /// D at (turbo, turbo) — the uncapped draw.
    d_used: f64,
    /// D at (turbo, spin floor) — the zero-loss minimum.
    d_needed: f64,
    /// Stage-2 demotion candidates, ascending trail frequency:
    /// `(trail, D(turbo, trail))` for ladder steps in `[floor, turbo)`.
    stage2: Vec<(Hertz, f64)>,
    /// Stage-3 throttle candidates, ascending lead frequency:
    /// `(lead, D(lead, min(lead, floor)))` for ladder steps below turbo.
    stage3: Vec<(Hertz, f64)>,
    /// Dense monotone curve `lead → D(lead, min(lead, floor))` over the φ
    /// table's knots (ladder steps are exact knots), for the continuous
    /// queries: `node_power_at` interpolates it forward and
    /// `achieved_frequency` inverts it.
    dense_freqs: Vec<f64>,
    dense_d: Vec<f64>,
}

impl OpTables {
    /// Interpolated dense coefficient at `lead` Hz; `None` outside the
    /// tabulated range.
    fn dense_lookup(&self, x: f64) -> Option<f64> {
        if !(self.dense_freqs[0]..=*self.dense_freqs.last()?).contains(&x) {
            return None;
        }
        let hi = self.dense_freqs.partition_point(|&k| k <= x);
        if hi == self.dense_freqs.len() {
            return Some(*self.dense_d.last()?);
        }
        let (f0, f1) = (self.dense_freqs[hi - 1], self.dense_freqs[hi]);
        let (d0, d1) = (self.dense_d[hi - 1], self.dense_d[hi]);
        Some(d0 + (x - f0) / (f1 - f0) * (d1 - d0))
    }
}

/// Cache key for [`KernelLoad::shared`]: the kernel configuration (f64
/// fields by bit pattern) plus a fingerprint of the machine spec.
#[derive(PartialEq, Eq, Hash)]
struct LoadKey {
    intensity: u64,
    vector: crate::config::VectorWidth,
    waiting: crate::config::WaitingFraction,
    imbalance: crate::config::Imbalance,
    bytes_per_rank: u64,
    iterations: usize,
    spec_fp: u64,
}

impl LoadKey {
    fn new(config: &KernelConfig, spec: &MachineSpec) -> Self {
        let mut h = DefaultHasher::new();
        spec.name.hash(&mut h);
        spec.sockets_per_node.hash(&mut h);
        spec.cores_per_socket.hash(&mut h);
        spec.cores_used_per_node.hash(&mut h);
        for v in [
            spec.f_min.value(),
            spec.f_base.value(),
            spec.f_turbo.value(),
            spec.f_step.value(),
            spec.tdp_per_socket.value(),
            spec.min_rapl_per_socket.value(),
            spec.alpha,
            spec.uncore_per_socket.value(),
            spec.leak_per_core.value(),
            spec.dram_bw_bytes_per_s,
            spec.poll_freq_floor.value(),
        ] {
            v.to_bits().hash(&mut h);
        }
        Self {
            intensity: config.intensity.to_bits(),
            vector: config.vector,
            waiting: config.waiting,
            imbalance: config.imbalance,
            bytes_per_rank: config.bytes_per_rank.to_bits(),
            iterations: config.iterations,
            spec_fp: h.finish(),
        }
    }
}

/// Process-wide memo of (config, machine) → built load, so the grid's ~800
/// re-bindings of the same few dozen kernel configurations each pay the
/// table construction cost exactly once.
static LOAD_CACHE: OnceLock<Mutex<HashMap<LoadKey, Arc<KernelLoad>>>> = OnceLock::new();

/// A kernel configuration bound to a machine, usable as a
/// [`LoadModel`] by the simulated nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelLoad {
    perf: PerfModel,
    poll_floor: Hertz,
    f_turbo: Hertz,
    /// Lazily-built operating-point tables (see [`OpTables`]); identity is
    /// carried entirely by the fields above.
    tables: OnceLock<OpTables>,
}

impl PartialEq for KernelLoad {
    fn eq(&self, other: &Self) -> bool {
        self.perf == other.perf
            && self.poll_floor == other.poll_floor
            && self.f_turbo == other.f_turbo
    }
}

impl KernelLoad {
    /// Bind `config` to the machine described by `spec`. Delegates to the
    /// process-wide cache so repeated bindings of one configuration share
    /// their precomputed operating-point tables.
    pub fn new(config: KernelConfig, spec: &MachineSpec) -> Self {
        Self::shared(config, spec).as_ref().clone()
    }

    /// The cached form of [`Self::new`]: one [`Arc`]'d load per distinct
    /// (config, machine) pair, with operating-point tables pre-built.
    pub fn shared(config: KernelConfig, spec: &MachineSpec) -> Arc<KernelLoad> {
        static MEMO_HIT: pmstack_obs::StaticCounter =
            pmstack_obs::StaticCounter::new("kernel.load.memo_hit");
        static MEMO_MISS: pmstack_obs::StaticCounter =
            pmstack_obs::StaticCounter::new("kernel.load.memo_miss");
        let key = LoadKey::new(&config, spec);
        let cache = LOAD_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("load cache poisoned");
        if map.contains_key(&key) {
            MEMO_HIT.inc();
        } else {
            MEMO_MISS.inc();
        }
        map.entry(key)
            .or_insert_with(|| {
                let load = Self::build(config, spec);
                // Pre-build the tables so every clone handed out by `new`
                // inherits them instead of rebuilding per instance.
                if let Ok(model) = PowerModel::new(spec.clone()) {
                    let _ = load.optabs(&model);
                }
                Arc::new(load)
            })
            .clone()
    }

    /// The raw, uncached constructor.
    fn build(config: KernelConfig, spec: &MachineSpec) -> Self {
        Self {
            perf: PerfModel::new(config, spec),
            poll_floor: spec.poll_freq_floor,
            f_turbo: spec.f_turbo,
            tables: OnceLock::new(),
        }
    }

    /// The operating-point tables for `model`, or `None` when `model`'s
    /// spec differs from the one the tables were built against (callers
    /// fall back to the direct scans).
    fn optabs(&self, model: &PowerModel) -> Option<&OpTables> {
        let t = self.tables.get_or_init(|| self.build_tables(model));
        (&t.spec == model.spec()).then_some(t)
    }

    fn build_tables(&self, model: &PowerModel) -> OpTables {
        let spec = model.spec().clone();
        let ladder = spec.pstates();
        let d = |lead: Hertz, trail: Hertz| model.dynamic_coefficient(&self.classes(lead, trail));
        let stage2 = ladder
            .steps()
            .iter()
            .copied()
            .filter(|&t| t < self.f_turbo && t >= self.poll_floor)
            .map(|t| (t, d(self.f_turbo, t)))
            .collect();
        let stage3: Vec<(Hertz, f64)> = ladder
            .steps()
            .iter()
            .copied()
            .filter(|&l| l < self.f_turbo)
            .map(|l| (l, d(l, l.min(self.poll_floor))))
            .collect();
        let (dense_freqs, dense_d): (Vec<f64>, Vec<f64>) = model
            .lut()
            .knots()
            .iter()
            .copied()
            .filter(|&f| f >= spec.f_min.value() - 1e-3 && f <= self.f_turbo.value() + 1e-3)
            .map(|f| {
                let lead = Hertz(f);
                (f, d(lead, lead.min(self.poll_floor)))
            })
            .unzip();
        OpTables {
            spec,
            d_used: d(self.f_turbo, self.f_turbo),
            d_needed: d(self.f_turbo, self.poll_floor),
            stage2,
            stage3,
            dense_freqs,
            dense_d,
        }
    }

    /// The underlying performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        self.perf.config()
    }

    /// The frequency of the *common* (partially busy) cores when fully
    /// waiting cores run at `trail`: the PCU demotes a core in proportion to
    /// its pause-idle duty cycle, so a common core that computes `1/k` of
    /// the iteration only trails `(1 - 1/k)` of the way from the lead
    /// frequency to the waiting cores' frequency.
    fn common_freq(&self, lead: Hertz, trail: Hertz) -> Hertz {
        let k = self.config().imbalance.factor();
        let idle_frac = 1.0 - 1.0 / k;
        (lead - (lead - trail) * idle_frac).max(trail)
    }

    /// The three core classes at a (lead, trail) operating point — the one
    /// place the kernel translates its composition into the power model's
    /// vocabulary; [`Self::power`] and the tables both go through it so
    /// their dynamic coefficients are computed identically.
    fn classes(&self, lead: Hertz, trail: Hertz) -> [CoreClass; 3] {
        let comp = self.perf.composition();
        let coeffs = self.perf.coeffs();
        let f_common = self.common_freq(lead, trail);
        let common_frac = self.perf.common_compute_fraction(lead, f_common);
        let kappa_common =
            common_frac * coeffs.kappa_compute + (1.0 - common_frac) * coeffs.kappa_poll;
        [
            CoreClass {
                count: comp.critical,
                kappa: coeffs.kappa_compute,
                freq: lead,
            },
            CoreClass {
                count: comp.common,
                kappa: kappa_common,
                freq: f_common,
            },
            CoreClass {
                count: comp.waiting,
                kappa: coeffs.kappa_poll,
                freq: trail,
            },
        ]
    }

    /// Node power with critical cores at `lead` and fully-waiting cores at
    /// `trail`; common cores sit between the two, trailing in proportion to
    /// their pause-idle duty cycle.
    pub fn power(&self, model: &PowerModel, eps: f64, lead: Hertz, trail: Hertz) -> Watts {
        model.node_power(eps, &self.classes(lead, trail))
    }

    /// Power of an unconstrained node: everything (including spin loops)
    /// races at the turbo ceiling. This is what the GEOPM *monitor* agent
    /// observes (Fig. 4).
    pub fn used_power(&self, model: &PowerModel, eps: f64) -> Watts {
        match self.optabs(model) {
            Some(t) => model.static_power(eps) + Watts(t.d_used * eps),
            None => self.power(model, eps, self.f_turbo, self.f_turbo),
        }
    }

    /// Minimum power at which the node loses no performance: critical cores
    /// at turbo, trailing cores demoted to the spin floor. This is what the
    /// *power balancer* characterization converges to (Fig. 5).
    pub fn needed_power(&self, model: &PowerModel, eps: f64) -> Watts {
        match self.optabs(model) {
            Some(t) => model.static_power(eps) + Watts(t.d_needed * eps),
            None => self.power(model, eps, self.f_turbo, self.poll_floor),
        }
    }

    /// The *continuous* achieved lead frequency under `cap` — the
    /// time-average a frequency counter reports while RAPL dithers between
    /// adjacent p-states. Used by the hardware-variation screen (Fig. 6),
    /// where the quantized ladder would hide the variation signal.
    ///
    /// Solved by inverting the precomputed monotone power curve; differs
    /// from the reference bisection only by the curve's interpolation
    /// error, well under one ladder step.
    pub fn achieved_frequency(&self, model: &PowerModel, eps: f64, cap: Watts) -> Hertz {
        if self.needed_power(model, eps) <= cap {
            return self.f_turbo;
        }
        let Some(t) = self.optabs(model) else {
            return self.achieved_frequency_bisect(model, eps, cap);
        };
        // P(lead) = static(ε) + D(lead)·ε, so invert D at the target.
        let d_target = (cap - model.static_power(eps)).value() / eps;
        if t.dense_d[0] >= d_target {
            return Hertz(t.dense_freqs[0]);
        }
        let hi = t.dense_d.partition_point(|&d| d <= d_target);
        if hi >= t.dense_d.len() {
            return self.f_turbo;
        }
        let (d0, d1) = (t.dense_d[hi - 1], t.dense_d[hi]);
        let (f0, f1) = (t.dense_freqs[hi - 1], t.dense_freqs[hi]);
        let s = if d1 > d0 {
            (d_target - d0) / (d1 - d0)
        } else {
            0.0
        };
        Hertz(f0 + s * (f1 - f0))
    }

    /// Reference bisection for [`Self::achieved_frequency`]; the fallback
    /// when tables don't apply and the oracle its tests compare against.
    fn achieved_frequency_bisect(&self, model: &PowerModel, eps: f64, cap: Watts) -> Hertz {
        if self.power(model, eps, self.f_turbo, self.poll_floor) <= cap {
            return self.f_turbo;
        }
        let spec = model.spec();
        let power_at = |lead: Hertz| self.power(model, eps, lead, lead.min(self.poll_floor));
        let (mut lo, mut hi) = (spec.f_min, self.f_turbo);
        if power_at(lo) >= cap {
            return lo;
        }
        for _ in 0..48 {
            let mid = Hertz((lo.value() + hi.value()) / 2.0);
            if power_at(mid) <= cap {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Elapsed time of one iteration at the given operating point.
    pub fn iteration_time(&self, op: &OperatingPoint) -> Seconds {
        self.perf.iteration_time(op.lead)
    }

    /// Node energy for one iteration at the given operating point.
    pub fn iteration_energy(&self, op: &OperatingPoint) -> Joules {
        op.power * self.iteration_time(op)
    }
}

impl KernelLoad {
    /// Reference ladder scan for [`LoadModel::operating_point`]; the
    /// fallback when tables don't apply and the oracle the table path is
    /// tested bit-identical against.
    fn operating_point_scan(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        let slack = Watts(1e-9);
        // Stage 1: everything at turbo.
        let p_uncapped = self.power(model, eps, self.f_turbo, self.f_turbo);
        if p_uncapped <= cap + slack {
            return OperatingPoint {
                lead: self.f_turbo,
                trail: self.f_turbo,
                power: p_uncapped,
            };
        }
        // Stage 2: demote trailing cores down to the spin floor while the
        // critical path holds turbo. Power is monotone in trail, so the
        // first fitting step scanning downward is the highest fitting.
        let ladder = model.spec().pstates();
        for &trail in ladder.steps().iter().rev() {
            if trail >= self.f_turbo || trail < self.poll_floor {
                continue;
            }
            let p = self.power(model, eps, self.f_turbo, trail);
            if p <= cap + slack {
                return OperatingPoint {
                    lead: self.f_turbo,
                    trail,
                    power: p,
                };
            }
        }
        // Stage 3: throttle the lead; trailing cores ride at
        // min(lead, floor).
        for &lead in ladder.steps().iter().rev() {
            if lead >= self.f_turbo {
                continue;
            }
            let trail = lead.min(self.poll_floor);
            let p = self.power(model, eps, lead, trail);
            if p <= cap + slack {
                return OperatingPoint {
                    lead,
                    trail,
                    power: p,
                };
            }
        }
        // Nothing fits: hardware bottoms out at the minimum p-state.
        let lead = ladder.min();
        let trail = lead.min(self.poll_floor);
        OperatingPoint {
            lead,
            trail,
            power: self.power(model, eps, lead, trail),
        }
    }
}

impl LoadModel for KernelLoad {
    fn node_power_at(&self, model: &PowerModel, eps: f64, lead: Hertz) -> Watts {
        if lead >= self.f_turbo {
            return self.used_power(model, eps);
        }
        if let Some(t) = self.optabs(model) {
            if let Some(d) = t.dense_lookup(lead.value()) {
                return model.static_power(eps) + Watts(d * eps);
            }
        }
        self.power(model, eps, lead, lead.min(self.poll_floor))
    }

    /// Table-driven PCU resolution: the same three stages as
    /// [`Self::operating_point_scan`], but each stage is one binary search
    /// over a precomputed monotone coefficient array. Power at every
    /// candidate is `static(ε) + D·ε` with D computed exactly once at table
    /// build, so the chosen point and its power are bit-identical to the
    /// scan's.
    fn operating_point(&self, model: &PowerModel, eps: f64, cap: Watts) -> OperatingPoint {
        let Some(t) = self.optabs(model) else {
            return self.operating_point_scan(model, eps, cap);
        };
        if t.stage3.is_empty() {
            // Degenerate ladder (f_min == f_turbo): scan handles it.
            return self.operating_point_scan(model, eps, cap);
        }
        let slack = Watts(1e-9);
        let stat = model.static_power(eps);
        let fits = |d: f64| stat + Watts(d * eps) <= cap + slack;
        // Stage 1: everything at turbo.
        if fits(t.d_used) {
            return OperatingPoint {
                lead: self.f_turbo,
                trail: self.f_turbo,
                power: stat + Watts(t.d_used * eps),
            };
        }
        // Stage 2: highest fitting trail (D ascends with trail, so fitting
        // entries are a prefix).
        let c = t.stage2.partition_point(|&(_, d)| fits(d));
        if c > 0 {
            let (trail, d) = t.stage2[c - 1];
            return OperatingPoint {
                lead: self.f_turbo,
                trail,
                power: stat + Watts(d * eps),
            };
        }
        // Stage 3: highest fitting lead, bottoming out at the minimum
        // p-state when nothing fits.
        let c = t.stage3.partition_point(|&(_, d)| fits(d));
        let (lead, d) = t.stage3[c.max(1) - 1];
        OperatingPoint {
            lead,
            trail: lead.min(self.poll_floor),
            power: stat + Watts(d * eps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, PowerModel};

    fn setup(intensity: f64, w: WaitingFraction, k: Imbalance) -> (PowerModel, KernelLoad) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(KernelConfig::new(intensity, VectorWidth::Ymm, w, k), &spec);
        (model, load)
    }

    #[test]
    fn uncapped_power_matches_fig4_range() {
        // Fig. 4: balanced ymm rows range ~207-232 W/node uncapped.
        for &i in &KernelConfig::heatmap_intensities() {
            let (model, load) = setup(i, WaitingFraction::P0, Imbalance::Balanced);
            let p = load.used_power(&model, 1.0).value();
            assert!((200.0..240.0).contains(&p), "I={i}: {p} W");
        }
    }

    #[test]
    fn uncapped_power_insensitive_to_imbalance() {
        // Fig. 4: along a row, uncapped power moves only a few percent as
        // waiting/imbalance increase.
        let (model, base) = setup(1.0, WaitingFraction::P0, Imbalance::Balanced);
        let p0 = base.used_power(&model, 1.0).value();
        for (w, k) in KernelConfig::heatmap_columns() {
            let (_, load) = setup(1.0, w, k);
            let p = load.used_power(&model, 1.0).value();
            assert!(
                (p - p0).abs() / p0 < 0.06,
                "{w}/{k}: {p} vs {p0} differs more than 6%"
            );
        }
    }

    #[test]
    fn needed_power_strongly_sensitive_to_waiting() {
        // Fig. 5: needed power drops with the share of waiting ranks.
        let (model, p0) = setup(1.0, WaitingFraction::P0, Imbalance::Balanced);
        let (_, p25) = setup(1.0, WaitingFraction::P25, Imbalance::TwoX);
        let (_, p75) = setup(1.0, WaitingFraction::P75, Imbalance::TwoX);
        let n0 = p0.needed_power(&model, 1.0).value();
        let n25 = p25.needed_power(&model, 1.0).value();
        let n75 = p75.needed_power(&model, 1.0).value();
        assert!(n0 > n25 && n25 > n75, "{n0} > {n25} > {n75} expected");
        // Balanced configuration has no harvestable slack.
        let u0 = p0.used_power(&model, 1.0).value();
        assert!((u0 - n0).abs() < 1e-9);
        // Heavy waiting leaves ~8-12% harvestable (Fig. 5 vs Fig. 4).
        let (_, u75) = setup(1.0, WaitingFraction::P75, Imbalance::TwoX);
        let gap = 1.0 - n75 / u75.used_power(&model, 1.0).value();
        assert!((0.05..0.20).contains(&gap), "harvestable gap {gap}");
    }

    #[test]
    fn operating_point_uncapped_is_turbo() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(240.0));
        assert_eq!(op.lead, Hertz::from_ghz(2.6));
        assert_eq!(op.trail, Hertz::from_ghz(2.6));
    }

    #[test]
    fn cap_between_needed_and_used_preserves_lead() {
        let (model, load) = setup(8.0, WaitingFraction::P50, Imbalance::TwoX);
        let used = load.used_power(&model, 1.0);
        let needed = load.needed_power(&model, 1.0);
        assert!(needed < used);
        let cap = Watts((used.value() + needed.value()) / 2.0);
        let op = load.operating_point(&model, 1.0, cap);
        assert_eq!(op.lead, Hertz::from_ghz(2.6), "critical path untouched");
        assert!(op.trail < Hertz::from_ghz(2.6));
        assert!(op.power <= cap + Watts(1e-6));
    }

    #[test]
    fn cap_below_needed_throttles_lead() {
        let (model, load) = setup(8.0, WaitingFraction::P50, Imbalance::TwoX);
        let needed = load.needed_power(&model, 1.0);
        let op = load.operating_point(&model, 1.0, needed - Watts(20.0));
        assert!(op.lead < Hertz::from_ghz(2.6));
        assert!(op.power <= needed - Watts(20.0) + Watts(1e-6));
    }

    #[test]
    fn impossible_cap_bottoms_out_at_min_pstate() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(1.0));
        assert_eq!(op.lead, Hertz::from_ghz(1.2));
        assert!(op.power > Watts(1.0), "power floor exceeds absurd cap");
    }

    #[test]
    fn operating_point_power_is_monotone_in_cap() {
        let (model, load) = setup(4.0, WaitingFraction::P25, Imbalance::ThreeX);
        let mut last = Watts::ZERO;
        for cap_w in (130..=240).step_by(10) {
            let op = load.operating_point(&model, 1.0, Watts(cap_w as f64));
            assert!(
                op.power >= last - Watts(1e-9),
                "power not monotone at {cap_w} W"
            );
            last = op.power;
        }
    }

    #[test]
    fn iteration_energy_is_power_times_time() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        let op = load.operating_point(&model, 1.0, Watts(200.0));
        let e = load.iteration_energy(&op);
        assert!((e.value() - op.power.value() * load.iteration_time(&op).value()).abs() < 1e-9);
    }

    #[test]
    fn inefficient_node_needs_more_power() {
        let (model, load) = setup(8.0, WaitingFraction::P0, Imbalance::Balanced);
        assert!(load.needed_power(&model, 1.07) > load.needed_power(&model, 0.94));
    }

    #[test]
    fn table_operating_point_matches_scan_bit_for_bit() {
        // The table path must be indistinguishable from the ladder scan it
        // replaced: same chosen p-states, same power to the last bit, for
        // every stage of the PCU resolution.
        for &(w, k) in &[
            (WaitingFraction::P0, Imbalance::Balanced),
            (WaitingFraction::P25, Imbalance::TwoX),
            (WaitingFraction::P50, Imbalance::TwoX),
            (WaitingFraction::P75, Imbalance::ThreeX),
        ] {
            for intensity in [0.25, 1.0, 8.0, 32.0] {
                let (model, load) = setup(intensity, w, k);
                for eps in [0.94, 1.0, 1.07] {
                    for cap_dw in 0..=60 {
                        let cap = Watts(120.0 + 2.0 * cap_dw as f64);
                        let table = load.operating_point(&model, eps, cap);
                        let scan = load.operating_point_scan(&model, eps, cap);
                        assert_eq!(table.lead, scan.lead, "lead at {cap}, eps {eps}");
                        assert_eq!(table.trail, scan.trail, "trail at {cap}, eps {eps}");
                        assert_eq!(
                            table.power.value().to_bits(),
                            scan.power.value().to_bits(),
                            "power at {cap}, eps {eps}: {} vs {}",
                            table.power,
                            scan.power
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn table_achieved_frequency_matches_bisection() {
        // The curve inversion may differ from the 48-step bisection only by
        // the dense table's interpolation error — far under one p-state.
        let (model, load) = setup(8.0, WaitingFraction::P50, Imbalance::TwoX);
        for eps in [0.94, 1.0, 1.07] {
            for cap_w in (136..=240).step_by(4) {
                let cap = Watts(cap_w as f64);
                let fast = load.achieved_frequency(&model, eps, cap);
                let slow = load.achieved_frequency_bisect(&model, eps, cap);
                assert!(
                    (fast.value() - slow.value()).abs() < 5e6,
                    "cap {cap}, eps {eps}: table {fast} vs bisect {slow}"
                );
            }
        }
    }

    #[test]
    fn shared_loads_are_cached_and_equal() {
        let spec = quartz_spec();
        let config = KernelConfig::balanced_ymm(4.0);
        let a = KernelLoad::shared(config, &spec);
        let b = KernelLoad::shared(config, &spec);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        assert_eq!(*a, KernelLoad::new(config, &spec));
        // A different configuration gets its own entry.
        let c = KernelLoad::shared(KernelConfig::balanced_ymm(2.0), &spec);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
