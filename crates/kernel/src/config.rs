//! Kernel configuration space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Vector register width used by the compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VectorWidth {
    /// Scalar double-precision adds/multiplies.
    Scalar,
    /// 128-bit (`xmm`) packed double FMA.
    Xmm,
    /// 256-bit (`ymm`) packed double FMA.
    Ymm,
}

impl VectorWidth {
    /// Double-precision FLOPs retired per core per cycle at this width on
    /// the Broadwell part (two FMA ports; FMA counts two FLOPs per lane).
    pub fn flops_per_cycle(self) -> f64 {
        match self {
            Self::Scalar => 2.0,
            Self::Xmm => 8.0,
            Self::Ymm => 16.0,
        }
    }

    /// All widths, narrow to wide.
    pub fn all() -> [Self; 3] {
        [Self::Scalar, Self::Xmm, Self::Ymm]
    }
}

impl fmt::Display for VectorWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Xmm => "xmm",
            Self::Ymm => "ymm",
        })
    }
}

/// Fraction of ranks polling at the barrier for the whole iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WaitingFraction {
    /// No waiting ranks.
    P0,
    /// 25% of ranks wait.
    P25,
    /// 50% of ranks wait.
    P50,
    /// 75% of ranks wait.
    P75,
}

impl WaitingFraction {
    /// The fraction as a number in `[0, 1)`.
    pub fn fraction(self) -> f64 {
        match self {
            Self::P0 => 0.0,
            Self::P25 => 0.25,
            Self::P50 => 0.50,
            Self::P75 => 0.75,
        }
    }

    /// All levels used in the paper.
    pub fn all() -> [Self; 4] {
        [Self::P0, Self::P25, Self::P50, Self::P75]
    }
}

impl fmt::Display for WaitingFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.fraction() * 100.0)
    }
}

/// Work multiplier carried by the designated critical ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Imbalance {
    /// Balanced: every working rank does the common work.
    Balanced,
    /// Critical ranks carry 2× the common work.
    TwoX,
    /// Critical ranks carry 3× the common work.
    ThreeX,
}

impl Imbalance {
    /// The critical-rank work multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Self::Balanced => 1.0,
            Self::TwoX => 2.0,
            Self::ThreeX => 3.0,
        }
    }

    /// All levels used in the paper.
    pub fn all() -> [Self; 3] {
        [Self::Balanced, Self::TwoX, Self::ThreeX]
    }
}

impl fmt::Display for Imbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Balanced => "1x",
            Self::TwoX => "2x",
            Self::ThreeX => "3x",
        })
    }
}

/// One configuration of the synthetic kernel — the unit the paper calls a
/// "workload".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Computational intensity in FLOPs per byte. Zero is the pure memory-
    /// streaming configuration (Table II's "0 FLOPs/byte" workloads).
    pub intensity: f64,
    /// Vector register width of the compute phase.
    pub vector: VectorWidth,
    /// Fraction of ranks polling at the barrier.
    pub waiting: WaitingFraction,
    /// Critical-rank work multiplier.
    pub imbalance: Imbalance,
    /// Bytes of memory traffic per rank per iteration (common work unit).
    pub bytes_per_rank: f64,
    /// Iterations per execution (the paper measures 100).
    pub iterations: usize,
}

impl KernelConfig {
    /// Default per-rank memory traffic per iteration: 2 GB, giving
    /// iteration times on the order of half a second at full speed.
    pub const DEFAULT_BYTES_PER_RANK: f64 = 2e9;
    /// Default iteration count (paper: 100 iterations per configuration).
    pub const DEFAULT_ITERATIONS: usize = 100;

    /// A balanced `ymm` configuration at the given intensity — the most
    /// common shape in the paper's mixes.
    pub fn balanced_ymm(intensity: f64) -> Self {
        Self::new(
            intensity,
            VectorWidth::Ymm,
            WaitingFraction::P0,
            Imbalance::Balanced,
        )
    }

    /// A fully specified configuration with default work size.
    pub fn new(
        intensity: f64,
        vector: VectorWidth,
        waiting: WaitingFraction,
        imbalance: Imbalance,
    ) -> Self {
        Self {
            intensity,
            vector,
            waiting,
            imbalance,
            bytes_per_rank: Self::DEFAULT_BYTES_PER_RANK,
            iterations: Self::DEFAULT_ITERATIONS,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.intensity.is_finite() && self.intensity >= 0.0) {
            return Err(format!("intensity must be >= 0, got {}", self.intensity));
        }
        if !(self.bytes_per_rank.is_finite() && self.bytes_per_rank > 0.0) {
            return Err(format!(
                "bytes_per_rank must be positive, got {}",
                self.bytes_per_rank
            ));
        }
        if self.iterations == 0 {
            return Err("iterations must be >= 1".to_string());
        }
        Ok(())
    }

    /// Human-readable label, e.g. `"ymm 16 F/B, 25% waiting, 2x"`.
    pub fn label(&self) -> String {
        let intensity = if self.intensity >= 1.0 || self.intensity == 0.0 {
            format!("{:.0}", self.intensity)
        } else {
            format!("{}", self.intensity)
        };
        format!(
            "{} {} F/B, {} waiting, {}",
            self.vector, intensity, self.waiting, self.imbalance
        )
    }

    /// The intensity sweep used by the Fig. 4 / Fig. 5 heat-map rows.
    pub fn heatmap_intensities() -> [f64; 8] {
        [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    }

    /// The (waiting, imbalance) columns of the Fig. 4 / Fig. 5 heat maps:
    /// `0%`, then 25/50/75% waiting each at 2× and 3× imbalance.
    pub fn heatmap_columns() -> [(WaitingFraction, Imbalance); 7] {
        use Imbalance::*;
        use WaitingFraction::*;
        [
            (P0, Balanced),
            (P25, TwoX),
            (P25, ThreeX),
            (P50, TwoX),
            (P50, ThreeX),
            (P75, TwoX),
            (P75, ThreeX),
        ]
    }

    /// The full Fig. 4 / Fig. 5 grid for a vector width (rows × columns).
    pub fn heatmap_grid(vector: VectorWidth) -> Vec<KernelConfig> {
        let mut grid = Vec::new();
        for &i in &Self::heatmap_intensities() {
            for &(w, k) in &Self::heatmap_columns() {
                grid.push(KernelConfig::new(i, vector, w, k));
            }
        }
        grid
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_per_cycle_doubles_with_width() {
        assert_eq!(VectorWidth::Xmm.flops_per_cycle(), 8.0);
        assert_eq!(
            VectorWidth::Ymm.flops_per_cycle(),
            2.0 * VectorWidth::Xmm.flops_per_cycle()
        );
    }

    #[test]
    fn labels_are_stable() {
        let c = KernelConfig::new(
            16.0,
            VectorWidth::Ymm,
            WaitingFraction::P25,
            Imbalance::TwoX,
        );
        assert_eq!(c.label(), "ymm 16 F/B, 25% waiting, 2x");
        let c = KernelConfig::balanced_ymm(0.25);
        assert_eq!(c.label(), "ymm 0.25 F/B, 0% waiting, 1x");
    }

    #[test]
    fn validation() {
        assert!(KernelConfig::balanced_ymm(8.0).validate().is_ok());
        assert!(KernelConfig::balanced_ymm(-1.0).validate().is_err());
        let mut c = KernelConfig::balanced_ymm(8.0);
        c.bytes_per_rank = 0.0;
        assert!(c.validate().is_err());
        let mut c = KernelConfig::balanced_ymm(8.0);
        c.iterations = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn heatmap_grid_shape_matches_figures() {
        let g = KernelConfig::heatmap_grid(VectorWidth::Ymm);
        assert_eq!(g.len(), 8 * 7);
        // First column of each row is the balanced configuration.
        assert_eq!(g[0].waiting, WaitingFraction::P0);
        assert_eq!(g[0].imbalance, Imbalance::Balanced);
    }

    #[test]
    fn zero_intensity_is_valid_pure_streaming() {
        let c = KernelConfig::new(
            0.0,
            VectorWidth::Ymm,
            WaitingFraction::P50,
            Imbalance::Balanced,
        );
        assert!(c.validate().is_ok());
        assert_eq!(c.label(), "ymm 0 F/B, 50% waiting, 1x");
    }
}
