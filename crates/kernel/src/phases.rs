//! Multi-phase applications.
//!
//! §VIII names "extending this study to account for applications with
//! multiple phases that have varying design characteristics" as future
//! work. A [`PhasedWorkload`] is a sequence of kernel configurations with
//! per-phase iteration counts — e.g. a solver alternating between a
//! memory-bound assembly phase and a compute-bound factorization phase.
//! The runtime's balancer re-converges at each phase boundary (see the
//! `pmstack-runtime` phased controller tests).

use crate::config::KernelConfig;
use serde::{Deserialize, Serialize};

/// One phase: a kernel configuration held for a number of iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The workload shape during this phase.
    pub config: KernelConfig,
    /// Bulk-synchronous iterations in this phase.
    pub iterations: usize,
}

/// A multi-phase application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// Phases, in execution order.
    pub phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// A single-phase workload (degenerate case).
    pub fn single(config: KernelConfig, iterations: usize) -> Self {
        Self {
            phases: vec![Phase { config, iterations }],
        }
    }

    /// Build from `(config, iterations)` pairs.
    ///
    /// # Panics
    /// On an empty phase list or a zero-iteration phase.
    pub fn new(phases: impl IntoIterator<Item = (KernelConfig, usize)>) -> Self {
        let phases: Vec<Phase> = phases
            .into_iter()
            .map(|(config, iterations)| Phase { config, iterations })
            .collect();
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        assert!(
            phases.iter().all(|p| p.iterations > 0),
            "phases must run at least one iteration"
        );
        Self { phases }
    }

    /// Total iterations across phases.
    pub fn total_iterations(&self) -> usize {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when the workload has no phases (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phase active at global iteration `iter` (0-based), with the
    /// phase index. Iterations beyond the end stay in the last phase.
    pub fn phase_at(&self, iter: usize) -> (usize, &Phase) {
        let mut start = 0;
        for (i, p) in self.phases.iter().enumerate() {
            if iter < start + p.iterations {
                return (i, p);
            }
            start += p.iterations;
        }
        (
            self.phases.len() - 1,
            self.phases.last().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Imbalance, VectorWidth, WaitingFraction};

    fn two_phase() -> PhasedWorkload {
        PhasedWorkload::new([
            (KernelConfig::balanced_ymm(0.5), 10),
            (
                KernelConfig::new(
                    16.0,
                    VectorWidth::Ymm,
                    WaitingFraction::P50,
                    Imbalance::TwoX,
                ),
                5,
            ),
        ])
    }

    #[test]
    fn phase_lookup_walks_boundaries() {
        let w = two_phase();
        assert_eq!(w.total_iterations(), 15);
        assert_eq!(w.phase_at(0).0, 0);
        assert_eq!(w.phase_at(9).0, 0);
        assert_eq!(w.phase_at(10).0, 1);
        assert_eq!(w.phase_at(14).0, 1);
        // Beyond the end: stays in the last phase.
        assert_eq!(w.phase_at(100).0, 1);
    }

    #[test]
    fn single_phase_is_whole_run() {
        let w = PhasedWorkload::single(KernelConfig::balanced_ymm(8.0), 7);
        assert_eq!(w.len(), 1);
        assert_eq!(w.phase_at(3).0, 0);
        assert_eq!(w.total_iterations(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_rejected() {
        PhasedWorkload::new(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_phase_rejected() {
        PhasedWorkload::new([(KernelConfig::balanced_ymm(1.0), 0)]);
    }
}
