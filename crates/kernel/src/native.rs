//! A native, actually-executing version of the arithmetic-intensity kernel.
//!
//! The analytic model in this crate predicts behaviour on the *simulated*
//! Quartz machine; this module provides the real thing for calibration runs
//! on whatever host executes the test suite: threads streaming over arrays
//! performing a configurable number of fused multiply-adds per element, i.e.
//! a tunable FLOPs-per-byte ratio, with a spin barrier after each iteration
//! (the synchronizing point of Fig. 2).
//!
//! The public repository referenced by the paper
//! (`dannosliwcd/arithmetic-intensity`) has the same structure: a compute
//! phase of FMA/load instructions and a slack/polling phase at a barrier.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Parameters for a native kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeConfig {
    /// Worker threads (ranks).
    pub ranks: usize,
    /// `f64` elements per rank (bytes = 8 × elements read + 8 × written).
    pub elements_per_rank: usize,
    /// Fused multiply-adds per element; intensity ≈ `2·fma / 16` FLOPs/byte.
    pub fma_per_element: usize,
    /// Bulk-synchronous iterations.
    pub iterations: usize,
    /// Work multiplier for rank 0 (emulates the imbalanced critical rank).
    pub critical_multiplier: usize,
}

impl NativeConfig {
    /// A small, quick-running configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            ranks: 2,
            elements_per_rank: 1 << 14,
            fma_per_element: 4,
            iterations: 3,
            critical_multiplier: 1,
        }
    }

    /// Approximate arithmetic intensity in FLOPs/byte (each element incurs
    /// one 8-byte read and one 8-byte write; each FMA is two FLOPs).
    pub fn intensity(&self) -> f64 {
        (2 * self.fma_per_element) as f64 / 16.0
    }

    /// Total FLOPs across all ranks and iterations.
    pub fn total_flops(&self) -> f64 {
        let per_rank = (self.elements_per_rank * self.fma_per_element * 2) as f64;
        let multipliers = (self.ranks - 1) as f64 + self.critical_multiplier as f64;
        per_rank * multipliers * self.iterations as f64
    }
}

/// Results of a native kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeStats {
    /// Wall-clock elapsed seconds.
    pub elapsed_s: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Checksum of the output data (prevents the optimizer from deleting
    /// the work and lets tests verify the computation happened).
    pub checksum: f64,
}

/// A centralized sense-reversing spin barrier, the polling phase of Fig. 2.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        Self {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
        }
    }
}

/// Stream over `data` applying `fma_per_element` fused multiply-adds to each
/// element. Returns a checksum.
fn compute_phase(data: &mut [f64], fma_per_element: usize) -> f64 {
    let mut sum = 0.0f64;
    for x in data.iter_mut() {
        let mut v = *x;
        for _ in 0..fma_per_element {
            v = v.mul_add(1.000000001, 1e-9);
        }
        *x = v;
        sum += v;
    }
    sum
}

/// Run the native kernel and report achieved throughput.
pub fn run(config: &NativeConfig) -> NativeStats {
    assert!(config.ranks >= 1, "need at least one rank");
    assert!(config.critical_multiplier >= 1);
    let barrier = Arc::new(SpinBarrier::new(config.ranks));
    let start = Instant::now();
    let checksum: f64 = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.ranks);
        for rank in 0..config.ranks {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let mult = if rank == 0 {
                    config.critical_multiplier
                } else {
                    1
                };
                let mut data = vec![1.0f64; config.elements_per_rank];
                let mut sum = 0.0;
                for _ in 0..config.iterations {
                    for _ in 0..mult {
                        sum += compute_phase(&mut data, config.fma_per_element);
                    }
                    barrier.wait();
                }
                sum
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .sum()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    NativeStats {
        elapsed_s,
        gflops: config.total_flops() / elapsed_s / 1e9,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_completes_and_computes() {
        let stats = run(&NativeConfig::small());
        assert!(stats.elapsed_s > 0.0);
        assert!(stats.gflops > 0.0);
        // Every element started at 1.0 and only grew.
        assert!(stats.checksum > (2 * (1 << 14)) as f64);
        assert!(stats.checksum.is_finite());
    }

    #[test]
    fn intensity_knob_maps_to_flops_per_byte() {
        let mut c = NativeConfig::small();
        c.fma_per_element = 8;
        assert!((c.intensity() - 1.0).abs() < 1e-12);
        c.fma_per_element = 32;
        assert!((c.intensity() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_multiplies_critical_work() {
        let mut c = NativeConfig::small();
        c.critical_multiplier = 3;
        let base_flops = NativeConfig::small().total_flops();
        // One rank does 3x work: totals grow by 2 rank-shares.
        let per_rank_share = base_flops / 2.0;
        assert!((c.total_flops() - (base_flops + 2.0 * per_rank_share)).abs() < 1.0);
    }

    #[test]
    fn single_rank_runs_without_deadlock() {
        let mut c = NativeConfig::small();
        c.ranks = 1;
        c.iterations = 2;
        let stats = run(&c);
        assert!(stats.checksum.is_finite());
    }

    #[test]
    fn barrier_synchronizes_many_ranks() {
        let mut c = NativeConfig::small();
        c.ranks = 8;
        c.elements_per_rank = 1 << 10;
        c.iterations = 10;
        // Completion without deadlock across generations is the property.
        let stats = run(&c);
        assert!(stats.elapsed_s > 0.0);
    }
}
