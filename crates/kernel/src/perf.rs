//! Roofline performance model of the kernel.
//!
//! Per iteration, a working rank moves `bytes_per_rank` bytes (critical
//! ranks `k×` that) and performs `intensity` FLOPs per byte. The achieved
//! per-rank byte rate at the turbo ceiling is roofline-limited:
//!
//! ```text
//! rate_bytes(f_turbo) = min( fpc(vec)·f_turbo / I ,  BW_node / working_ranks )
//! ```
//!
//! and scales linearly with the lead frequency below the ceiling — on this
//! part, reduced core frequency also reduces sustainable memory concurrency,
//! so even bandwidth-bound phases slow down under a cap (the reason the
//! power balancer's pre-characterized "needed power" of Fig. 5 stays close
//! to used power for balanced configurations).

use crate::activity::ActivityCoeffs;
use crate::composition::RankComposition;
use crate::config::KernelConfig;
use pmstack_simhw::{Hertz, MachineSpec, Seconds};
use serde::{Deserialize, Serialize};

/// The performance model of one kernel configuration on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    config: KernelConfig,
    composition: RankComposition,
    /// Per-core share of node DRAM bandwidth among streaming ranks.
    bw_share: f64,
    /// Achieved per-rank byte rate at the turbo ceiling.
    rate_bytes_at_turbo: f64,
    /// Activity coefficients for this configuration.
    coeffs: ActivityCoeffs,
    f_turbo: Hertz,
}

impl PerfModel {
    /// Build the model for `config` on `spec`, with one rank per used core.
    pub fn new(config: KernelConfig, spec: &MachineSpec) -> Self {
        let composition = RankComposition::for_node(&config, spec.cores_used_per_node);
        let bw_share = spec.dram_bw_bytes_per_s / composition.working() as f64;
        let coeffs = ActivityCoeffs::derive(&config, spec, bw_share);
        let peak_flops = config.vector.flops_per_cycle() * spec.f_turbo.value();
        let rate_bytes_at_turbo = if config.intensity == 0.0 {
            bw_share
        } else {
            (peak_flops / config.intensity).min(bw_share)
        };
        Self {
            config,
            composition,
            bw_share,
            rate_bytes_at_turbo,
            coeffs,
            f_turbo: spec.f_turbo,
        }
    }

    /// The configuration being modeled.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The node's rank composition.
    pub fn composition(&self) -> RankComposition {
        self.composition
    }

    /// The activity coefficients.
    pub fn coeffs(&self) -> ActivityCoeffs {
        self.coeffs
    }

    /// Per-rank share of DRAM bandwidth.
    pub fn bw_share(&self) -> f64 {
        self.bw_share
    }

    /// Achieved per-rank byte rate at lead frequency `f`.
    pub fn rank_byte_rate(&self, f: Hertz) -> f64 {
        self.rate_bytes_at_turbo * (f.value() / self.f_turbo.value())
    }

    /// Elapsed time of one bulk-synchronous iteration when the critical
    /// ranks run at lead frequency `f`.
    pub fn iteration_time(&self, f: Hertz) -> Seconds {
        let critical_bytes = self.config.imbalance.factor() * self.config.bytes_per_rank;
        Seconds(critical_bytes / self.rank_byte_rate(f))
    }

    /// Total FLOPs per node per iteration (all working ranks).
    pub fn node_flops_per_iteration(&self) -> f64 {
        self.config.intensity
            * self.config.bytes_per_rank
            * self.composition.total_work_units(self.config.imbalance)
    }

    /// Total bytes per node per iteration (all working ranks).
    pub fn node_bytes_per_iteration(&self) -> f64 {
        self.config.bytes_per_rank * self.composition.total_work_units(self.config.imbalance)
    }

    /// Achieved node FLOP rate at lead frequency `f`.
    pub fn node_flop_rate(&self, f: Hertz) -> f64 {
        self.node_flops_per_iteration() / self.iteration_time(f).value()
    }

    /// The fraction of an iteration a *common* rank spends computing when it
    /// runs at `trail` while the critical ranks run at `lead`; the remainder
    /// is spent polling. Bounded to 1 (a trailing rank can never exceed the
    /// iteration).
    pub fn common_compute_fraction(&self, lead: Hertz, trail: Hertz) -> f64 {
        let k = self.config.imbalance.factor();
        (lead.value() / (k * trail.value())).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::quartz_spec;

    fn model(intensity: f64) -> PerfModel {
        PerfModel::new(KernelConfig::balanced_ymm(intensity), &quartz_spec())
    }

    #[test]
    fn iteration_time_scales_inversely_with_frequency() {
        let m = model(8.0);
        let spec = quartz_spec();
        let t_hi = m.iteration_time(spec.f_turbo);
        let t_lo = m.iteration_time(Hertz::from_ghz(1.3));
        assert!((t_lo.value() / t_hi.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_rate_is_bandwidth_share() {
        let m = model(0.25);
        let spec = quartz_spec();
        let share = spec.dram_bw_bytes_per_s / 34.0;
        assert!((m.rank_byte_rate(spec.f_turbo) - share).abs() < 1e-3);
    }

    #[test]
    fn compute_bound_rate_is_flop_limited() {
        let m = model(32.0);
        let spec = quartz_spec();
        let peak = 16.0 * spec.f_turbo.value();
        assert!((m.rank_byte_rate(spec.f_turbo) - peak / 32.0).abs() < 1e-3);
    }

    #[test]
    fn imbalance_stretches_iteration() {
        let spec = quartz_spec();
        let balanced = PerfModel::new(KernelConfig::balanced_ymm(8.0), &spec);
        let imb = PerfModel::new(
            KernelConfig::new(
                8.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::ThreeX,
            ),
            &spec,
        );
        // Critical ranks carry 3x work but also have fewer ranks sharing
        // bandwidth is unchanged (all 34 working), so iteration is 3x.
        let r = imb.iteration_time(spec.f_turbo).value()
            / balanced.iteration_time(spec.f_turbo).value();
        assert!((r - 3.0).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn waiting_ranks_boost_bandwidth_share() {
        let spec = quartz_spec();
        let full = PerfModel::new(KernelConfig::balanced_ymm(0.25), &spec);
        let half = PerfModel::new(
            KernelConfig::new(
                0.25,
                VectorWidth::Ymm,
                WaitingFraction::P50,
                Imbalance::Balanced,
            ),
            &spec,
        );
        assert!(half.bw_share() > full.bw_share());
        // Memory-bound iteration is therefore faster with waiting ranks.
        assert!(half.iteration_time(spec.f_turbo) < full.iteration_time(spec.f_turbo));
    }

    #[test]
    fn zero_intensity_has_zero_flops() {
        let spec = quartz_spec();
        let m = PerfModel::new(
            KernelConfig::new(
                0.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ),
            &spec,
        );
        assert_eq!(m.node_flops_per_iteration(), 0.0);
        assert!(m.iteration_time(spec.f_turbo).value() > 0.0);
    }

    #[test]
    fn common_compute_fraction_bounds() {
        let spec = quartz_spec();
        let m = PerfModel::new(
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P0, Imbalance::TwoX),
            &spec,
        );
        let f = m.common_compute_fraction(spec.f_turbo, spec.f_turbo);
        assert!((f - 0.5).abs() < 1e-12);
        // A heavily-trailed common rank saturates at 1 (it never exceeds the
        // iteration).
        let f = m.common_compute_fraction(spec.f_turbo, Hertz::from_ghz(1.2));
        assert!(f <= 1.0);
    }

    #[test]
    fn flop_rate_consistency() {
        let spec = quartz_spec();
        let m = model(8.0);
        // All 34 ranks memory bound at 4.41 GB/s/rank · 8 F/B.
        let expected = 34.0 * (spec.dram_bw_bytes_per_s / 34.0) * 8.0;
        assert!((m.node_flop_rate(spec.f_turbo) - expected).abs() / expected < 1e-9);
    }
}
