//! Property-based tests of the kernel model invariants.

use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_simhw::{quartz_spec, Hertz, LoadModel, PowerModel, Watts};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        prop_oneof![Just(0.0), 0.05f64..40.0,],
        prop_oneof![
            Just(VectorWidth::Scalar),
            Just(VectorWidth::Xmm),
            Just(VectorWidth::Ymm)
        ],
        prop_oneof![
            Just(WaitingFraction::P0),
            Just(WaitingFraction::P25),
            Just(WaitingFraction::P50),
            Just(WaitingFraction::P75)
        ],
        prop_oneof![
            Just(Imbalance::Balanced),
            Just(Imbalance::TwoX),
            Just(Imbalance::ThreeX)
        ],
    )
        .prop_map(|(i, v, w, k)| KernelConfig::new(i, v, w, k))
}

proptest! {
    /// Needed power never exceeds used power, and both stay within the
    /// physical envelope (static floor … beyond-TDP ceiling scaled by ε).
    #[test]
    fn needed_le_used_and_bounded(config in arb_config(), eps in 0.85f64..1.18) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(config, &spec);
        let used = load.used_power(&model, eps);
        let needed = load.needed_power(&model, eps);
        prop_assert!(needed <= used + Watts(1e-9));
        prop_assert!(needed > model.static_power(eps));
        prop_assert!(used < Watts(300.0));
    }

    /// The PCU operating point always fits the cap when the cap is
    /// achievable at the minimum p-state, and power is monotone in the cap.
    #[test]
    fn operating_point_fits_and_monotone(config in arb_config(), eps in 0.9f64..1.1) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(config, &spec);
        let floor = load.operating_point(&model, eps, Watts(0.0)).power;
        let mut last = Watts::ZERO;
        for cap_w in (140..=240).step_by(5) {
            let op = load.operating_point(&model, eps, Watts(cap_w as f64));
            if Watts(cap_w as f64) >= floor {
                prop_assert!(op.power <= Watts(cap_w as f64) + Watts(1e-6));
            }
            prop_assert!(op.power >= last - Watts(1e-9));
            last = op.power;
            // Trail never exceeds lead; both stay on the ladder's range.
            prop_assert!(op.trail <= op.lead);
            prop_assert!(op.lead >= spec.f_min && op.lead <= spec.f_turbo);
        }
    }

    /// Iteration time is positive, scales linearly with 1/frequency, and
    /// the lead frequency fully determines it (trail never matters).
    #[test]
    fn iteration_time_scaling(config in arb_config(), ghz in 1.2f64..2.6) {
        let spec = quartz_spec();
        let perf = pmstack_kernel::PerfModel::new(config, &spec);
        let t_ref = perf.iteration_time(spec.f_turbo).value();
        let t = perf.iteration_time(Hertz::from_ghz(ghz)).value();
        prop_assert!(t_ref > 0.0);
        let expected = t_ref * spec.f_turbo.ghz() / ghz;
        prop_assert!((t - expected).abs() / expected < 1e-9);
    }

    /// A tighter cap never makes the iteration faster.
    #[test]
    fn tighter_cap_never_faster(config in arb_config(), eps in 0.9f64..1.1) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(config, &spec);
        let mut last_time = f64::INFINITY;
        for cap_w in (136..=240).step_by(8) {
            let op = load.operating_point(&model, eps, Watts(cap_w as f64));
            let t = load.iteration_time(&op).value();
            prop_assert!(t <= last_time + 1e-9, "cap {cap_w} W slowed down");
            last_time = t;
        }
    }

    /// The continuous achieved frequency is consistent with the discrete
    /// operating point (within one p-state) and monotone in the cap.
    #[test]
    fn achieved_frequency_consistency(config in arb_config(), eps in 0.9f64..1.1) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let load = KernelLoad::new(config, &spec);
        let mut last = 0.0f64;
        for cap_w in (140..=240).step_by(10) {
            let cont = load.achieved_frequency(&model, eps, Watts(cap_w as f64));
            let disc = load.operating_point(&model, eps, Watts(cap_w as f64)).lead;
            prop_assert!(cont.ghz() >= last - 1e-9, "not monotone");
            last = cont.ghz();
            prop_assert!(
                (cont.ghz() - disc.ghz()).abs() <= 0.11,
                "continuous {} vs discrete {} differ by more than a p-state",
                cont.ghz(),
                disc.ghz()
            );
        }
    }

    /// Waiting ranks widen the used-vs-needed gap; balanced configurations
    /// have none.
    #[test]
    fn waiting_creates_harvestable_slack(i in 0.1f64..40.0, eps in 0.9f64..1.1) {
        let spec = quartz_spec();
        let model = PowerModel::new(spec.clone()).unwrap();
        let gap = |w, k| {
            let load = KernelLoad::new(KernelConfig::new(i, VectorWidth::Ymm, w, k), &spec);
            load.used_power(&model, eps).value() - load.needed_power(&model, eps).value()
        };
        let balanced = gap(WaitingFraction::P0, Imbalance::Balanced);
        prop_assert!(balanced.abs() < 1e-9);
        let heavy = gap(WaitingFraction::P75, Imbalance::ThreeX);
        let light = gap(WaitingFraction::P25, Imbalance::TwoX);
        prop_assert!(heavy > light && light > 0.0);
    }
}
