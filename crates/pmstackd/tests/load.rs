//! Concurrency and saturation suite: the daemon under parallel clients,
//! plus property tests of the ledger invariants the admission plane rides
//! on. The single hard rule everywhere: the power ledger never
//! oversubscribes and reservations are conserved and unique.

mod common;

use common::{connect, get, post, read_response, send};
use pmstack_rm::{JobId, PowerLedger};
use pmstack_simhw::Watts;
use pmstackd::json::{self, Value};
use pmstackd::{Daemon, DaemonConfig};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const APPS: [&str; 5] = ["balanced", "compute", "memory", "wasteful", "imbalanced"];
const POLICIES: [&str; 4] = ["static", "prechar", "minwaste", "mixedadaptive"];

/// Hammer `/submit` from many threads, then audit the admission plane:
/// total reserved power within budget, utilization sane, every granted
/// node held by exactly one live job.
#[test]
fn concurrent_submits_never_oversubscribe() {
    let hosts = 64;
    let budget_w = 150.0 * hosts as f64;
    let daemon = Arc::new(
        Daemon::spawn(DaemonConfig {
            hosts,
            budget_per_host_w: 150.0,
            workers: 8,
            conn_capacity: 128,
            max_inflight: 64,
            tick_ms: 5,
            // Leases far outlive the test so every grant is still active
            // when we audit; expiry would otherwise hide double-grants.
            job_ttl_ticks: 1_000_000,
            max_nodes_per_job: 8,
            ..DaemonConfig::default()
        })
        .unwrap(),
    );

    let threads = 6;
    let per_thread = 25;
    let mut handles = Vec::new();
    for t in 0..threads {
        let daemon = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            let mut grants = Vec::new();
            let mut rejected = 0usize;
            for i in 0..per_thread {
                let k = t * per_thread + i;
                let body = format!(
                    "{{\"app\":\"{}\",\"nodes\":{},\"policy\":\"{}\"}}",
                    APPS[k % APPS.len()],
                    (k % 4) + 1,
                    POLICIES[k % POLICIES.len()]
                );
                let resp = post(daemon.addr(), "/submit", &body);
                match resp.status {
                    200 => {
                        let v = json::parse(&resp.body).expect("grant is JSON");
                        let granted = v.get("granted_w").and_then(Value::as_f64).unwrap();
                        let Some(Value::Arr(nodes)) = v.get("nodes") else {
                            panic!("grant without nodes: {}", resp.body_str());
                        };
                        let ids: Vec<u64> = nodes
                            .iter()
                            .map(|n| n.as_f64().expect("node id is numeric") as u64)
                            .collect();
                        grants.push((granted, ids));
                    }
                    429 | 503 => rejected += 1,
                    other => panic!("unexpected status {other}: {}", resp.body_str()),
                }
            }
            (grants, rejected)
        }));
    }

    let mut all_grants = Vec::new();
    let mut rejected = 0;
    for handle in handles {
        let (grants, r) = handle.join().expect("client thread panicked");
        all_grants.extend(grants);
        rejected += r;
    }
    assert_eq!(
        all_grants.len() + rejected,
        threads * per_thread,
        "every request must be answered"
    );
    assert!(!all_grants.is_empty(), "at least some submits must land");

    // Uniqueness: with no expiry during the test, no node may appear in
    // two grants.
    let mut held = HashSet::new();
    for (_, nodes) in &all_grants {
        for &n in nodes {
            assert!(held.insert(n), "node {n} granted to two live jobs");
        }
    }

    // Conservation: the ledger agrees with the sum of what clients were
    // told (responses round to 0.1 W, hence the tolerance).
    let admission = daemon.admission();
    let admission = admission.lock().unwrap();
    let reserved = admission.ledger().reserved().value();
    let granted_sum: f64 = all_grants.iter().map(|(w, _)| *w).sum();
    assert!(
        (reserved - granted_sum).abs() <= 0.05 * all_grants.len() as f64 + 1e-6,
        "ledger reserved {reserved} != sum of granted {granted_sum}"
    );
    assert!(
        reserved <= budget_w + 1e-6,
        "oversubscribed: {reserved} > {budget_w}"
    );
    let util = admission.ledger().utilization();
    assert!((0.0..=1.0 + 1e-9).contains(&util), "utilization {util}");
    assert_eq!(admission.active_jobs(), all_grants.len());
    drop(admission);

    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("daemon still shared"),
    }
}

/// Scrape `/metrics` from several threads while submits churn the
/// registry: every scrape must be a complete, valid exposition — no torn
/// reads.
#[test]
fn concurrent_metric_scrapes_never_tear() {
    let daemon = Arc::new(
        Daemon::spawn(DaemonConfig {
            hosts: 32,
            tick_ms: 1,
            job_ttl_ticks: 10,
            ..DaemonConfig::default()
        })
        .unwrap(),
    );

    let mut handles = Vec::new();
    for _ in 0..2 {
        let daemon = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            for k in 0..20 {
                let body = format!(
                    "{{\"app\":\"balanced\",\"nodes\":{},\"policy\":\"mixedadaptive\"}}",
                    (k % 4) + 1
                );
                let resp = post(daemon.addr(), "/submit", &body);
                assert!(
                    matches!(resp.status, 200 | 429 | 503),
                    "unexpected submit status {}",
                    resp.status
                );
            }
        }));
    }
    for _ in 0..2 {
        let daemon = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            for _ in 0..15 {
                let resp = get(daemon.addr(), "/metrics");
                assert_eq!(resp.status, 200);
                pmstack_obs::validate_prometheus(resp.body_str())
                    .unwrap_or_else(|e| panic!("torn scrape: {e}"));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker panicked");
    }
    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("daemon still shared"),
    }
}

/// With the in-flight gate closed (`max_inflight: 0`) every submit is
/// shed with 429 — and sheds must not leak gate slots (each request is
/// answered, none hangs).
#[test]
fn inflight_gate_sheds_429() {
    let daemon = Daemon::spawn(DaemonConfig {
        hosts: 8,
        max_inflight: 0,
        tick_ms: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    for _ in 0..10 {
        let resp = post(
            daemon.addr(),
            "/submit",
            "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\"}",
        );
        assert_eq!(resp.status, 429, "{}", resp.body_str());
        assert_eq!(resp.reason, "Too Many Requests");
    }
    // The gate gates /submit only; reads still flow.
    assert_eq!(get(daemon.addr(), "/healthz").status, 200);
    daemon.shutdown();
}

/// Bottom rung of the ladder: one worker, minimal queue. A connection
/// arriving while the worker is pinned and the queue is full gets the
/// inline 503 from the accept loop itself.
#[test]
fn full_connection_queue_is_refused_inline_with_503() {
    let daemon = Daemon::spawn(DaemonConfig {
        hosts: 8,
        workers: 1,
        conn_capacity: 1,
        tick_ms: 1,
        ..DaemonConfig::default()
    })
    .unwrap();

    // Pin the single worker with a slow stream (long inter-frame sleep).
    let mut pinned = connect(daemon.addr());
    send(
        &mut pinned,
        b"GET /stream?frames=10000&interval_ms=5000 HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Fill the one queue slot; this connection just sits there unserved.
    let _queued = connect(daemon.addr());
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Overflow: the accept loop must answer 503 itself, without a worker.
    let mut overflow = connect(daemon.addr());
    send(&mut overflow, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    let resp = read_response(&mut overflow);
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(resp.body_str().contains("connection queue full"));

    drop(pinned); // unblock the worker's next chunk write
    daemon.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of reserve / reserve_upto / release /
    /// reclaim across a handful of jobs, the ledger (a) never exceeds the
    /// budget, (b) always equals the sum of per-job reservations tracked
    /// by an independent mirror, and (c) grants stay within [floor, want].
    #[test]
    fn ledger_conserves_under_random_op_sequences(
        budget in 400.0f64..2000.0,
        ops in prop::collection::vec(
            (0u8..4, 0u64..6, 1.0f64..400.0, 0.0f64..1.0),
            1..60,
        ),
    ) {
        let mut ledger = PowerLedger::new(Watts(budget));
        let mut mirror: HashMap<u64, f64> = HashMap::new();

        for (kind, job, amount, frac) in ops {
            let id = JobId(job);
            match kind {
                0 => match ledger.reserve(id, Watts(amount)) {
                    Ok(()) => {
                        mirror.insert(job, amount);
                    }
                    Err(over) => {
                        // Refusal must be honest: the request really did
                        // not fit, and nothing changed.
                        let others: f64 = mirror
                            .iter()
                            .filter(|(j, _)| **j != job)
                            .map(|(_, w)| w)
                            .sum();
                        prop_assert!(amount > budget - others - 1e-6);
                        prop_assert!(over.requested.value() >= amount - 1e-9);
                    }
                },
                1 => {
                    let floor = amount * frac;
                    match ledger.reserve_upto(id, Watts(amount), Watts(floor)) {
                        Ok(granted) => {
                            let g = granted.value();
                            prop_assert!(g >= floor - 1e-6, "grant {g} below floor {floor}");
                            prop_assert!(g <= amount + 1e-6, "grant {g} above want {amount}");
                            mirror.insert(job, g);
                        }
                        Err(_) => {
                            let others: f64 = mirror
                                .iter()
                                .filter(|(j, _)| **j != job)
                                .map(|(_, w)| w)
                                .sum();
                            prop_assert!(floor > budget - others - 1e-6);
                        }
                    }
                }
                2 => {
                    ledger.release(id);
                    mirror.remove(&job);
                }
                _ => {
                    let held = mirror.get(&job).copied().unwrap_or(0.0);
                    let reclaimed = ledger.reclaim(id, Watts(amount)).value();
                    prop_assert!((reclaimed - amount.min(held)).abs() < 1e-6);
                    let left = held - reclaimed;
                    if left <= 0.0 {
                        mirror.remove(&job);
                    } else {
                        mirror.insert(job, left);
                    }
                }
            }

            // Invariants after every single op.
            let reserved = ledger.reserved().value();
            let mirror_sum: f64 = mirror.values().sum();
            prop_assert!(
                (reserved - mirror_sum).abs() < 1e-6,
                "ledger {reserved} diverged from mirror {mirror_sum}"
            );
            prop_assert!(reserved <= budget + 1e-6, "oversubscribed");
            prop_assert!(
                (ledger.available().value() - (budget - reserved)).abs() < 1e-6
            );
            for (j, w) in &mirror {
                let held = ledger.reservation(JobId(*j));
                prop_assert!(held.is_some(), "job {j} reservation vanished");
                prop_assert!((held.unwrap().value() - w).abs() < 1e-6);
            }
        }

        // Releasing everything restores the full budget.
        for job in 0..6 {
            ledger.release(JobId(job));
        }
        prop_assert!(ledger.reserved() == Watts::ZERO);
        prop_assert!((ledger.available().value() - budget).abs() < 1e-9);
    }
}
