//! Raw-socket HTTP client shared by the conformance and load suites.
//!
//! Deliberately independent of the daemon's own `http` module: the tests
//! speak wire bytes, so a framing bug on the server cannot be masked by a
//! matching bug in a shared parser.

#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response, as read off the wire.
#[derive(Debug, Clone)]
pub struct RawResponse {
    pub status: u16,
    pub reason: String,
    /// Header pairs with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// True when the body arrived via `Transfer-Encoding: chunked`.
    pub chunked: bool,
}

impl RawResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("body is UTF-8")
    }
}

/// Open a connection with sane test timeouts.
pub fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    BufReader::new(stream)
}

/// Write raw request bytes on an open connection.
pub fn send(conn: &mut BufReader<TcpStream>, raw: &[u8]) {
    conn.get_mut().write_all(raw).expect("write request");
    conn.get_mut().flush().expect("flush request");
}

fn read_line(conn: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    conn.read_line(&mut line).expect("read line");
    line.trim_end_matches(['\r', '\n']).to_string()
}

/// Read one full response: status line, headers, then a `Content-Length`
/// or chunked body. Panics on framing violations — that IS the test.
pub fn read_response(conn: &mut BufReader<TcpStream>) -> RawResponse {
    let status_line = read_line(conn);
    let mut parts = status_line.splitn(3, ' ');
    assert_eq!(
        parts.next(),
        Some("HTTP/1.1"),
        "bad status line {status_line:?}"
    );
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let reason = parts.next().unwrap_or("").to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(conn);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .unwrap_or_else(|| panic!("malformed header {line:?}"));
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    let chunked = header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        assert!(
            header("content-length").is_none(),
            "chunked response must not also declare Content-Length"
        );
        loop {
            let size_line = read_line(conn);
            let size = usize::from_str_radix(&size_line, 16)
                .unwrap_or_else(|_| panic!("bad chunk size line {size_line:?}"));
            if size == 0 {
                let trailer = read_line(conn);
                assert!(trailer.is_empty(), "unexpected trailer {trailer:?}");
                break;
            }
            let mut chunk = vec![0u8; size];
            conn.read_exact(&mut chunk).expect("read chunk payload");
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            conn.read_exact(&mut crlf).expect("read chunk terminator");
            assert_eq!(&crlf, b"\r\n", "chunk not CRLF-terminated");
        }
    } else {
        let len: usize = header("content-length")
            .expect("non-chunked response must declare Content-Length")
            .parse()
            .expect("Content-Length is an integer");
        body.resize(len, 0);
        conn.read_exact(&mut body).expect("read declared body");
    }

    RawResponse {
        status,
        reason,
        headers,
        body,
        chunked,
    }
}

/// One-shot request from raw bytes on a fresh connection.
pub fn roundtrip_raw(addr: SocketAddr, raw: &[u8]) -> RawResponse {
    let mut conn = connect(addr);
    send(&mut conn, raw);
    read_response(&mut conn)
}

/// One-shot `GET path` with `Connection: close`.
pub fn get(addr: SocketAddr, path: &str) -> RawResponse {
    roundtrip_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// One-shot `POST path` with a JSON body and `Connection: close`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> RawResponse {
    roundtrip_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}
