//! Protocol-conformance suite: every daemon surface against a live
//! ephemeral-port instance, asserted at the wire level.

mod common;

use common::{connect, get, post, read_response, roundtrip_raw, send};
use pmstackd::json::{self, Value};
use pmstackd::{Daemon, DaemonConfig};

/// A small daemon sized for fast conformance checks.
fn small_daemon() -> Daemon {
    Daemon::spawn(DaemonConfig {
        port: 0,
        hosts: 16,
        budget_per_host_w: 150.0,
        workers: 4,
        conn_capacity: 64,
        max_inflight: 8,
        tick_ms: 1,
        job_ttl_ticks: 200,
        max_nodes_per_job: 8,
        segment_hosts: None,
        class_layout: Vec::new(),
    })
    .expect("daemon binds an ephemeral port")
}

#[test]
fn index_describes_the_surfaces() {
    let daemon = small_daemon();
    let resp = get(daemon.addr(), "/");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.reason, "OK");
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; charset=utf-8")
    );
    let body = resp.body_str();
    for surface in ["/metrics", "/stream", "/submit", "/healthz"] {
        assert!(body.contains(surface), "index missing {surface}: {body}");
    }
    daemon.shutdown();
}

#[test]
fn healthz_reports_fleet_liveness() {
    let daemon = small_daemon();
    let resp = get(daemon.addr(), "/healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let v = json::parse(&resp.body).expect("healthz body is JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("hosts").and_then(Value::as_f64), Some(16.0));
    daemon.shutdown();
}

#[test]
fn metrics_round_trips_through_prometheus_validation() {
    let daemon = small_daemon();
    let resp = get(daemon.addr(), "/metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = resp.body_str();
    pmstack_obs::validate_prometheus(text)
        .unwrap_or_else(|e| panic!("exposition invalid: {e}\n{text}"));
    // The scrape itself was counted before rendering, so the daemon's own
    // series must be present.
    assert!(
        text.contains("pmstack_pmstackd_http_requests_total"),
        "daemon request counter missing from exposition:\n{text}"
    );
    daemon.shutdown();
}

#[test]
fn metrics_formats_select_exporters() {
    let daemon = small_daemon();

    let resp = get(daemon.addr(), "/metrics?format=json");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    json::parse(&resp.body).expect("json exporter output parses");

    let resp = get(daemon.addr(), "/metrics?format=summary");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; charset=utf-8")
    );

    let resp = get(daemon.addr(), "/metrics?format=bogus");
    assert_eq!(resp.status, 400);
    assert!(
        resp.body_str().contains("prometheus"),
        "{}",
        resp.body_str()
    );
    daemon.shutdown();
}

#[test]
fn submit_grants_nodes_and_caps() {
    let daemon = small_daemon();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"compute\",\"nodes\":3,\"policy\":\"mixedadaptive\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let v = json::parse(&resp.body).expect("grant is JSON");
    assert_eq!(v.get("app").and_then(Value::as_str), Some("compute"));
    assert_eq!(v.get("degraded"), Some(&Value::Bool(false)));
    let granted = v.get("granted_w").and_then(Value::as_f64).unwrap();
    let want = v.get("want_w").and_then(Value::as_f64).unwrap();
    assert!(
        granted > 0.0 && granted <= want + 0.1,
        "{granted} vs {want}"
    );
    let Some(Value::Arr(nodes)) = v.get("nodes") else {
        panic!("nodes missing: {}", resp.body_str());
    };
    let Some(Value::Arr(caps)) = v.get("caps_w") else {
        panic!("caps_w missing: {}", resp.body_str());
    };
    assert_eq!(nodes.len(), 3);
    assert_eq!(caps.len(), 3, "one cap per granted node");
    for cap in caps {
        let w = cap.as_f64().expect("cap is numeric");
        assert!(w > 0.0 && w <= 250.0, "cap {w} outside physical range");
    }
    daemon.shutdown();
}

#[test]
fn submit_validation_maps_to_400() {
    let daemon = small_daemon();
    let cases = [
        "not json at all",
        "[1,2,3]",
        "{\"nodes\":2,\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"nodes\":2}",
        "{\"app\":\"warp-drive\",\"nodes\":2,\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"nodes\":0,\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"nodes\":2.5,\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"nodes\":9,\"policy\":\"static\"}",
        "{\"app\":\"balanced\",\"nodes\":2,\"policy\":\"vibes\"}",
    ];
    for body in cases {
        let resp = post(daemon.addr(), "/submit", body);
        assert_eq!(
            resp.status,
            400,
            "{body} should be 400: {}",
            resp.body_str()
        );
        assert!(
            json::parse(&resp.body).unwrap().get("error").is_some(),
            "400 body carries an error field"
        );
    }
    daemon.shutdown();
}

#[test]
fn submit_node_exhaustion_is_503() {
    let daemon = Daemon::spawn(DaemonConfig {
        hosts: 4,
        max_nodes_per_job: 4,
        job_ttl_ticks: 100_000,
        tick_ms: 50,
        ..DaemonConfig::default()
    })
    .unwrap();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":4,\"policy\":\"static\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\"}",
    );
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    let v = json::parse(&resp.body).unwrap();
    assert_eq!(v.get("free_nodes").and_then(Value::as_f64), Some(0.0));
    daemon.shutdown();
}

/// A daemon with a two-class layout: quartz on ids 0..12, stout on 12..16.
fn classed_daemon() -> Daemon {
    Daemon::spawn(DaemonConfig {
        hosts: 16,
        max_nodes_per_job: 8,
        job_ttl_ticks: 100_000,
        tick_ms: 50,
        class_layout: vec![("quartz".to_string(), 12), ("stout".to_string(), 4)],
        ..DaemonConfig::default()
    })
    .unwrap()
}

fn counter(addr: std::net::SocketAddr, name: &str) -> f64 {
    let resp = get(addr, "/metrics?format=json");
    assert_eq!(resp.status, 200);
    json::parse(&resp.body)
        .expect("metrics JSON parses")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

#[test]
fn submit_class_preference_pins_nodes_to_the_class_segment() {
    let daemon = classed_daemon();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":3,\"policy\":\"static\",\"class\":\"stout\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let v = json::parse(&resp.body).expect("grant is JSON");
    assert_eq!(v.get("class").and_then(Value::as_str), Some("stout"));
    let Some(Value::Arr(nodes)) = v.get("nodes") else {
        panic!("nodes missing: {}", resp.body_str());
    };
    assert_eq!(nodes.len(), 3);
    for node in nodes {
        let id = node.as_f64().expect("node id is numeric") as usize;
        assert!(
            (12..16).contains(&id),
            "node {id} outside the stout segment 12..16"
        );
    }
    // An unconstrained submit on the same fleet omits the class field and
    // draws from the low (quartz) ids.
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":2,\"policy\":\"static\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let v = json::parse(&resp.body).unwrap();
    assert!(v.get("class").is_none(), "{}", resp.body_str());
    daemon.shutdown();
}

#[test]
fn submit_unknown_class_is_400_with_error_body() {
    let daemon = classed_daemon();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\",\"class\":\"warp\"}",
    );
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let err = json::parse(&resp.body)
        .unwrap()
        .get("error")
        .and_then(Value::as_str)
        .expect("400 body carries an error field")
        .to_string();
    assert!(err.contains("warp"), "{err}");
    assert!(
        err.contains("quartz") && err.contains("stout"),
        "error should list the known classes: {err}"
    );
    // A non-string class is also a 400.
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\",\"class\":3}",
    );
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    daemon.shutdown();

    // On an unclassed fleet every class name is unknown.
    let daemon = small_daemon();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\",\"class\":\"quartz\"}",
    );
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let v = json::parse(&resp.body).unwrap();
    let err = v.get("error").and_then(Value::as_str).unwrap();
    assert!(err.contains("no node classes"), "{err}");
    daemon.shutdown();
}

#[test]
fn submit_class_exhaustion_is_503_and_counts_the_rejection() {
    let daemon = classed_daemon();
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":4,\"policy\":\"static\",\"class\":\"stout\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let before = counter(daemon.addr(), "pmstackd.submit.rejected_nodes");
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\",\"class\":\"stout\"}",
    );
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    let v = json::parse(&resp.body).unwrap();
    // Segment-local accounting: zero stout nodes free even though the
    // twelve quartz nodes are all still idle.
    assert_eq!(v.get("free_nodes").and_then(Value::as_f64), Some(0.0));
    let after = counter(daemon.addr(), "pmstackd.submit.rejected_nodes");
    assert!(
        after >= before + 1.0,
        "rejected_nodes rung not counted: {before} -> {after}"
    );

    // The quartz segment still admits.
    let resp = post(
        daemon.addr(),
        "/submit",
        "{\"app\":\"balanced\",\"nodes\":4,\"policy\":\"static\",\"class\":\"quartz\"}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    daemon.shutdown();
}

#[test]
fn malformed_requests_are_400_and_close() {
    let daemon = small_daemon();
    for raw in [
        "BOGUS\r\n\r\n",
        "GET\r\n\r\n",
        "GET /x HTTP/9.9\r\n\r\n",
        "get /x HTTP/1.1\r\n\r\n",
        "GET relative HTTP/1.1\r\n\r\n",
        "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
    ] {
        let resp = roundtrip_raw(daemon.addr(), raw.as_bytes());
        assert_eq!(resp.status, 400, "{raw:?} should be 400");
        assert_eq!(resp.header("connection"), Some("close"), "{raw:?}");
    }
    daemon.shutdown();
}

#[test]
fn unknown_paths_and_methods_map_to_404_and_405() {
    let daemon = small_daemon();
    let resp = get(daemon.addr(), "/no/such/endpoint");
    assert_eq!(resp.status, 404);
    assert_eq!(resp.reason, "Not Found");

    let resp = post(daemon.addr(), "/metrics", "{}");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));

    let resp = get(daemon.addr(), "/submit");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    daemon.shutdown();
}

#[test]
fn oversized_body_is_413_without_reading_it() {
    let daemon = small_daemon();
    // Declare a body over the limit but never send a byte of it: the
    // daemon must refuse on the declaration alone.
    let declared = pmstackd::http::MAX_BODY_BYTES + 1;
    let raw = format!("POST /submit HTTP/1.1\r\nHost: test\r\nContent-Length: {declared}\r\n\r\n");
    let resp = roundtrip_raw(daemon.addr(), raw.as_bytes());
    assert_eq!(resp.status, 413);
    assert_eq!(resp.reason, "Payload Too Large");
    daemon.shutdown();
}

#[test]
fn oversized_header_block_is_431() {
    let daemon = small_daemon();
    let raw = format!(
        "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
        "a".repeat(pmstackd::http::MAX_LINE_BYTES + 16)
    );
    let resp = roundtrip_raw(daemon.addr(), raw.as_bytes());
    assert_eq!(resp.status, 431);
    daemon.shutdown();
}

#[test]
fn stream_delivers_chunked_json_frames() {
    let daemon = small_daemon();
    let resp = get(daemon.addr(), "/stream?frames=3&interval_ms=1");
    assert_eq!(resp.status, 200);
    assert!(resp.chunked, "stream must use chunked framing");
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let lines: Vec<&str> = resp.body_str().lines().collect();
    assert_eq!(lines.len(), 3, "{}", resp.body_str());
    let mut last_tick = -1.0;
    for line in lines {
        let v =
            json::parse(line.as_bytes()).unwrap_or_else(|e| panic!("frame not JSON ({e}): {line}"));
        assert_eq!(v.get("hosts").and_then(Value::as_f64), Some(16.0));
        assert!(v.get("power_w").and_then(Value::as_f64).is_some());
        let tick = v.get("tick").and_then(Value::as_f64).unwrap();
        assert!(tick > last_tick, "ticks must be strictly increasing");
        last_tick = tick;
    }
    daemon.shutdown();
}

#[test]
fn stream_parameter_validation_maps_to_400() {
    let daemon = small_daemon();
    for path in [
        "/stream?frames=0",
        "/stream?frames=abc",
        "/stream?frames=10001",
        "/stream?interval_ms=-5",
        "/stream?interval_ms=999999",
    ] {
        let resp = get(daemon.addr(), path);
        assert_eq!(
            resp.status,
            400,
            "{path} should be 400: {}",
            resp.body_str()
        );
    }
    daemon.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_socket() {
    let daemon = small_daemon();
    let mut conn = connect(daemon.addr());

    send(&mut conn, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    let first = read_response(&mut conn);
    assert_eq!(first.status, 200);
    assert_ne!(first.header("connection"), Some("close"));

    let body = "{\"app\":\"balanced\",\"nodes\":1,\"policy\":\"static\"}";
    send(
        &mut conn,
        format!(
            "POST /submit HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let second = read_response(&mut conn);
    assert_eq!(second.status, 200, "{}", second.body_str());

    // The third request asks to close; the server must honor it.
    send(
        &mut conn,
        b"GET / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    let third = read_response(&mut conn);
    assert_eq!(third.status, 200);
    assert_eq!(third.header("connection"), Some("close"));
    daemon.shutdown();
}

#[test]
fn content_length_matches_body_exactly() {
    let daemon = small_daemon();
    // read_response already read_exact()s the declared length; asserting
    // parseability here proves no trailing garbage followed the body.
    for path in ["/", "/healthz", "/metrics", "/metrics?format=json"] {
        let mut conn = connect(daemon.addr());
        send(
            &mut conn,
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        );
        let resp = read_response(&mut conn);
        assert_eq!(resp.status, 200);
        let mut rest = Vec::new();
        use std::io::Read;
        conn.read_to_end(&mut rest).expect("drain to EOF");
        assert!(
            rest.is_empty(),
            "{path}: {} stray bytes after declared body",
            rest.len()
        );
    }
    daemon.shutdown();
}
