//! The fleet step loop: one dedicated thread drives the simulated
//! platform so request threads never have to.
//!
//! Each tick the loop (1) drains the admission plane's queued cap
//! programs into the platform, (2) runs one iteration, and (3) publishes a
//! fresh [`FleetSnapshot`] behind an `Arc` swap. `/metrics` and `/stream`
//! read whatever snapshot is current — consistent, lock-held for
//! nanoseconds, and never blocking on a 100k-host iteration in progress.

use crate::admission::Admission;
use pmstack_kernel::KernelConfig;
use pmstack_obs::{StaticCounter, StaticGauge};
use pmstack_runtime::{FleetSnapshot, IterationBuffers, JobPlatform};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

static TICKS: StaticCounter = StaticCounter::new("pmstackd.fleet.ticks");
static CAP_OPS: StaticCounter = StaticCounter::new("pmstackd.fleet.cap_ops");
static POWER: StaticGauge = StaticGauge::new("pmstackd.fleet.power_w");
static ALIVE: StaticGauge = StaticGauge::new("pmstackd.fleet.alive");
static STEADY: StaticGauge = StaticGauge::new("pmstackd.fleet.steady");

/// Deterministic manufacturing-variation spread for the served fleet; the
/// same formula the megafleet scenario uses, so serving-plane results are
/// comparable with the batch benchmarks.
pub fn eps_of(i: usize) -> f64 {
    0.92 + 0.012 * ((i * 31) % 16) as f64
}

/// Configuration of the served fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Fleet size.
    pub hosts: usize,
    /// Sleep between step-loop ticks.
    pub tick_interval: Duration,
    /// Override the bank's segment size (tests use small segments).
    pub segment_hosts: Option<usize>,
}

/// Handle to the running step loop.
pub struct Fleet {
    latest: Arc<Mutex<Arc<FleetSnapshot>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    model: PowerModel,
    host_eps: Vec<f64>,
}

impl Fleet {
    /// Build the platform, publish an initial snapshot, and start the step
    /// loop. The loop drains `admission.tick()` before every iteration.
    pub fn spawn(config: FleetConfig, admission: Arc<Mutex<Admission>>) -> Self {
        let model = PowerModel::new(quartz_spec()).expect("quartz spec is valid");
        let host_eps: Vec<f64> = (0..config.hosts).map(eps_of).collect();
        let nodes: Vec<Node> = host_eps
            .iter()
            .enumerate()
            .map(|(i, &e)| Node::new(NodeId(i), &model, e).expect("eps is in range"))
            .collect();
        let mut platform = JobPlatform::new(model.clone(), nodes, KernelConfig::balanced_ymm(8.0));
        if let Some(sh) = config.segment_hosts {
            platform = platform.with_segment_hosts(sh);
        }
        platform.set_fast_forward(true);

        let initial = Arc::new(platform.fleet_snapshot(&Default::default()));
        let latest = Arc::new(Mutex::new(initial));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let latest = Arc::clone(&latest);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pmstackd-fleet".into())
                .spawn(move || {
                    let mut bufs = IterationBuffers::new();
                    while !stop.load(Ordering::Acquire) {
                        let ops = admission.lock().expect("admission lock").tick();
                        for (host, cap) in &ops {
                            // Expiry of a host that died mid-lease can race a
                            // removed node; programming failures are expected
                            // there and must not kill the loop.
                            let _ = platform.set_host_limit(*host, *cap);
                        }
                        CAP_OPS.add(ops.len() as u64);
                        platform.run_iteration_into(&mut bufs);
                        let snap = Arc::new(platform.fleet_snapshot(bufs.outcome()));
                        POWER.set(snap.power_w);
                        ALIVE.set(snap.alive as f64);
                        STEADY.set(if snap.steady { 1.0 } else { 0.0 });
                        TICKS.inc();
                        *latest.lock().expect("snapshot lock") = snap;
                        if !config.tick_interval.is_zero() {
                            std::thread::sleep(config.tick_interval);
                        }
                    }
                })
                .expect("spawn fleet thread")
        };

        Self {
            latest,
            stop,
            thread: Some(thread),
            model,
            host_eps,
        }
    }

    /// The most recently published snapshot (cheap: one Arc clone).
    pub fn latest(&self) -> Arc<FleetSnapshot> {
        Arc::clone(&self.latest.lock().expect("snapshot lock"))
    }

    /// The power model the fleet was built from.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Per-host efficiency factors, index-aligned with host ids.
    pub fn host_eps(&self) -> &[f64] {
        &self.host_eps
    }

    /// Render one snapshot as a single JSON object (one stream frame).
    pub fn snapshot_json(snap: &FleetSnapshot, tick: u64) -> String {
        format!(
            "{{\"tick\":{},\"hosts\":{},\"alive\":{},\"segments\":{},\
             \"elapsed_s\":{:.6},\"steady\":{},\"energy_j\":{:.3},\
             \"power_w\":{:.3},\"iteration_s\":{:.6}}}",
            tick,
            snap.hosts,
            snap.alive,
            snap.segments,
            snap.elapsed_s,
            snap.steady,
            snap.energy_j,
            snap.power_w,
            snap.iteration_s
        )
    }

    /// Stop and join the step loop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AppClass, SubmitRequest};
    use pmstack_core::PolicyKind;
    use pmstack_simhw::Watts;

    fn small_fleet() -> (Fleet, Arc<Mutex<Admission>>) {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let eps: Vec<f64> = (0..8).map(eps_of).collect();
        let admission = Arc::new(Mutex::new(Admission::new(
            model,
            eps,
            Watts(240.0 * 8.0),
            3,
            8,
        )));
        let fleet = Fleet::spawn(
            FleetConfig {
                hosts: 8,
                tick_interval: Duration::from_millis(1),
                segment_hosts: None,
            },
            Arc::clone(&admission),
        );
        (fleet, admission)
    }

    #[test]
    fn step_loop_publishes_progressing_snapshots() {
        let (fleet, _admission) = small_fleet();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let snap = fleet.latest();
            if snap.elapsed_s > 0.0 && snap.energy_j > 0.0 {
                assert_eq!(snap.hosts, 8);
                assert_eq!(snap.alive, 8);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "loop never ticked");
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.shutdown();
    }

    #[test]
    fn admission_caps_reach_the_platform_via_tick() {
        let (fleet, admission) = small_fleet();
        let grant = admission
            .lock()
            .unwrap()
            .submit(&SubmitRequest {
                app: AppClass::Balanced,
                nodes: 2,
                policy: PolicyKind::StaticCaps,
                class: None,
            })
            .unwrap();
        assert_eq!(grant.nodes.len(), 2);
        // The loop drains the ops within a few ticks; afterwards the job
        // expires (TTL 3) and its watts return.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if admission.lock().unwrap().ledger().reserved() == Watts::ZERO {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "grant never expired");
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.shutdown();
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let snap = FleetSnapshot {
            hosts: 8,
            alive: 7,
            segments: 1,
            elapsed_s: 1.25,
            steady: true,
            energy_j: 1234.5,
            power_w: 987.6,
            iteration_s: 0.5,
        };
        let doc = Fleet::snapshot_json(&snap, 42);
        let v = crate::json::parse(doc.as_bytes()).unwrap();
        assert_eq!(v.get("tick").and_then(|x| x.as_f64()), Some(42.0));
        assert_eq!(v.get("hosts").and_then(|x| x.as_f64()), Some(8.0));
        assert_eq!(v.get("alive").and_then(|x| x.as_f64()), Some(7.0));
        assert_eq!(v.get("steady"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(v.get("power_w").and_then(|x| x.as_f64()), Some(987.6));
    }
}
