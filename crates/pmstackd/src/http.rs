//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 9112 for the daemon's three surfaces: request-line +
//! headers + `Content-Length` bodies inbound; fixed-length or chunked
//! responses outbound. Every limit violation maps to a distinct status so
//! the conformance suite can pin the protocol down: unparseable framing is
//! 400, an oversized body is 413, an oversized header block is 431.

use std::io::{self, BufRead, Write};

/// Largest request body the daemon will buffer.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Largest single line (request line or one header).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection cleanly before a request line.
    Eof,
    /// The bytes do not form an HTTP/1.1 request (respond 400).
    Bad(String),
    /// Declared body exceeds [`MAX_BODY_BYTES`] (respond 413).
    BodyTooLarge(usize),
    /// Request line or a header exceeds [`MAX_LINE_BYTES`], or more than
    /// [`MAX_HEADERS`] headers (respond 431).
    HeadersTooLarge,
    /// The underlying transport failed mid-request.
    Io(io::ErrorKind),
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, e.g. `/metrics`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header pairs with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open. HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, bounded by
/// [`MAX_LINE_BYTES`]. `Ok(None)` is clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut line = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(reader, &mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Bad("unterminated line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| ParseError::Bad("line is not UTF-8".into()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(ParseError::HeadersTooLarge);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Read one request off the stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let Some(request_line) = read_line(reader)? else {
        return Err(ParseError::Eof);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::Bad(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(ParseError::Bad(format!("malformed method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad(format!("target {target:?} is not a path")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ParseError::Bad("EOF inside header block".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(ParseError::HeadersTooLarge);
        }
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad content-length {v:?}")))
        })
        .transpose()?;
    if let Some(len) = content_length {
        if len > MAX_BODY_BYTES {
            return Err(ParseError::BodyTooLarge(len));
        }
        body.resize(len, 0);
        io::Read::read_exact(reader, &mut body).map_err(|e| ParseError::Io(e.kind()))?;
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Canonical reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A fixed-length response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes (framed with `Content-Length`).
    pub body: String,
    /// Extra headers, verbatim.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A response with the given status and a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A 200 response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// Override the content type.
    pub fn with_content_type(mut self, ct: &'static str) -> Self {
        self.content_type = ct;
        self
    }

    /// Serialize with `Content-Length` framing. `close` adds
    /// `Connection: close` so the peer knows not to reuse the socket.
    pub fn write_to(&self, out: &mut impl Write, close: bool) -> io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (k, v) in &self.extra_headers {
            write!(out, "{k}: {v}\r\n")?;
        }
        if close {
            out.write_all(b"Connection: close\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

/// Start a chunked response: status line + headers, no body yet. Follow
/// with [`write_chunk`] per frame and [`finish_chunked`] to terminate.
pub fn start_chunked(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    close: bool,
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        status,
        reason(status),
        content_type
    )?;
    if close {
        out.write_all(b"Connection: close\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.flush()
}

/// Write one chunk (size line in hex, payload, CRLF).
pub fn write_chunk(out: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    write!(out, "{:x}\r\n", payload.len())?;
    out.write_all(payload)?;
    out.write_all(b"\r\n")?;
    out.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(out: &mut impl Write) -> io::Result<()> {
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req =
            parse("GET /stream?frames=2&interval_ms=5 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stream");
        assert_eq!(req.query_param("frames"), Some("2"));
        assert_eq!(req.query_param("interval_ms"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /submit HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            "BOGUS\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: soon\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::Bad(_))),
                "{raw:?} should be a 400"
            );
        }
    }

    #[test]
    fn clean_eof_is_distinguished_from_garbage() {
        assert_eq!(parse("").unwrap_err(), ParseError::Eof);
    }

    #[test]
    fn oversized_bodies_and_headers_are_rejected() {
        let big = MAX_BODY_BYTES + 1;
        let raw = format!("POST /submit HTTP/1.1\r\nContent-Length: {big}\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err(), ParseError::BodyTooLarge(big));

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 8));
        assert_eq!(parse(&long_line).unwrap_err(), ParseError::HeadersTooLarge);

        let many: String = (0..MAX_HEADERS + 1)
            .map(|i| format!("h{i}: v\r\n"))
            .collect();
        let raw = format!("GET / HTTP/1.1\r\n{many}\r\n");
        assert_eq!(parse(&raw).unwrap_err(), ParseError::HeadersTooLarge);
    }

    #[test]
    fn response_framing_is_exact() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        assert!(!text.contains("Connection: close"));

        let mut out = Vec::new();
        Response::text(404, "nope")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn chunked_framing_terminates() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/json", true).unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // ignored, must not terminate
        write_chunk(&mut out, b"{\"b\":2}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn keep_alive_parses_back_to_back_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = read_request(&mut reader).unwrap();
        let b = read_request(&mut reader).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert_eq!(read_request(&mut reader).unwrap_err(), ParseError::Eof);
    }
}
