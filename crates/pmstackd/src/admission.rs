//! The admission plane: `/submit`'s decision engine.
//!
//! One mutex-guarded [`Admission`] owns the [`PowerLedger`], the
//! [`NodePool`], and the active-job TTL queue. Request threads only ever
//! touch this struct — never the simulated platform — so admission latency
//! is a characterization lookup plus ledger arithmetic. Cap programming is
//! decoupled: `submit` queues per-host cap operations, and the step loop
//! drains them via [`Admission::tick`] before each iteration.
//!
//! Backpressure here is the middle rung of the daemon's ladder: the ledger
//! refusing even the floor reservation, or the pool running out of nodes,
//! is a 503 — distinct from the connection-queue 503 (accept loop) and the
//! in-flight 429 (server gate) above it.

use pmstack_core::{policies, JobChar, PolicyCtx, PolicyKind};
use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_obs::{StaticCounter, StaticGauge};
use pmstack_rm::{JobId, NodePool, PowerLedger};
use pmstack_simhw::{NodeId, PowerModel, Watts};
use std::collections::VecDeque;

static ADMITTED: StaticCounter = StaticCounter::new("pmstackd.submit.admitted");
static DEGRADED: StaticCounter = StaticCounter::new("pmstackd.submit.degraded");
static REJECTED_POWER: StaticCounter = StaticCounter::new("pmstackd.submit.rejected_power");
static REJECTED_NODES: StaticCounter = StaticCounter::new("pmstackd.submit.rejected_nodes");
static EXPIRED: StaticCounter = StaticCounter::new("pmstackd.submit.expired");
static UTILIZATION: StaticGauge = StaticGauge::new("pmstackd.admission.utilization");
static ACTIVE_JOBS: StaticGauge = StaticGauge::new("pmstackd.admission.active_jobs");
static FREE_NODES: StaticGauge = StaticGauge::new("pmstackd.admission.free_nodes");

/// The application classes a job spec may name, each mapping to one
/// synthetic-kernel shape from the paper's workload taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Mid-intensity, no waiting, balanced — the common case.
    Balanced,
    /// Compute-bound: high intensity vector work.
    Compute,
    /// Memory-streaming: zero FLOPs per byte.
    Memory,
    /// Power-wasteful: half the ranks polling at the barrier.
    Wasteful,
    /// Load-imbalanced: critical ranks carry 2× the work.
    Imbalanced,
}

impl AppClass {
    /// All classes, for docs and error messages.
    pub const NAMES: &'static [&'static str] =
        &["balanced", "compute", "memory", "wasteful", "imbalanced"];

    /// Parse a class name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "balanced" => Some(Self::Balanced),
            "compute" => Some(Self::Compute),
            "memory" => Some(Self::Memory),
            "wasteful" => Some(Self::Wasteful),
            "imbalanced" => Some(Self::Imbalanced),
            _ => None,
        }
    }

    /// The class name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Balanced => "balanced",
            Self::Compute => "compute",
            Self::Memory => "memory",
            Self::Wasteful => "wasteful",
            Self::Imbalanced => "imbalanced",
        }
    }

    /// The kernel configuration characterized for this class.
    pub fn kernel_config(self) -> KernelConfig {
        match self {
            Self::Balanced => KernelConfig::balanced_ymm(8.0),
            Self::Compute => KernelConfig::new(
                16.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ),
            Self::Memory => KernelConfig::new(
                0.0,
                VectorWidth::Ymm,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ),
            Self::Wasteful => KernelConfig::new(
                8.0,
                VectorWidth::Ymm,
                WaitingFraction::P50,
                Imbalance::Balanced,
            ),
            Self::Imbalanced => {
                KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P0, Imbalance::TwoX)
            }
        }
    }
}

/// Parse a policy name: the canonical Display names, case-insensitively,
/// plus the short aliases the CLI and curl examples use.
pub fn parse_policy(name: &str) -> Option<PolicyKind> {
    match name.to_ascii_lowercase().as_str() {
        "precharacterized" | "prechar" => Some(PolicyKind::Precharacterized),
        "staticcaps" | "static" => Some(PolicyKind::StaticCaps),
        "minimizewaste" | "minwaste" => Some(PolicyKind::MinimizeWaste),
        "jobadaptive" | "job" => Some(PolicyKind::JobAdaptive),
        "mixedadaptive" | "mixed" => Some(PolicyKind::MixedAdaptive),
        _ => None,
    }
}

/// A validated submit request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitRequest {
    /// Application class to characterize.
    pub app: AppClass,
    /// Nodes requested.
    pub nodes: usize,
    /// Power policy deciding the caps.
    pub policy: PolicyKind,
    /// Optional node-class preference: an index into the daemon's class
    /// table, constraining the lease to that class's id segment. `None`
    /// draws from the whole fleet (the homogeneous behaviour).
    pub class: Option<usize>,
}

/// A successful admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    /// Assigned job id.
    pub job: JobId,
    /// Leased hosts.
    pub nodes: Vec<NodeId>,
    /// Per-host caps, aligned with `nodes`, already programmed (queued).
    pub caps: Vec<Watts>,
    /// Watts actually reserved on the ledger.
    pub granted: Watts,
    /// Watts the policy asked for before any degradation.
    pub want: Watts,
    /// True when the grant was scaled down to fit the remaining budget.
    pub degraded: bool,
    /// Ticks until the reservation auto-expires.
    pub ttl_ticks: u64,
}

/// Why a request was refused (both are 503s at the HTTP layer: the system
/// is saturated, try again later).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reject {
    /// Not enough free nodes.
    NoNodes {
        /// Nodes currently free.
        free: usize,
    },
    /// The ledger cannot cover even the floor reservation.
    NoPower {
        /// Watts still unreserved.
        available: Watts,
        /// The floor that did not fit (min settable × nodes).
        floor: Watts,
    },
}

struct ActiveJob {
    id: JobId,
    nodes: Vec<NodeId>,
    expires_tick: u64,
}

/// Admission state: ledger + pool + TTL queue + pending cap programs.
pub struct Admission {
    ledger: PowerLedger,
    pool: NodePool,
    active: VecDeque<ActiveJob>,
    cap_ops: Vec<(usize, Watts)>,
    host_eps: Vec<f64>,
    model: PowerModel,
    ctx: PolicyCtx,
    next_id: u64,
    tick: u64,
    ttl_ticks: u64,
    max_nodes_per_job: usize,
    /// Node-class layout: `(name, id range)` per class, contiguous and in
    /// id order. Empty for an unclassed (homogeneous) fleet.
    classes: Vec<(String, std::ops::Range<usize>)>,
}

impl Admission {
    /// An admission plane over `hosts` nodes with the given per-host
    /// efficiency factors and total system budget. Jobs auto-expire
    /// `ttl_ticks` step-loop ticks after admission.
    pub fn new(
        model: PowerModel,
        host_eps: Vec<f64>,
        system_budget: Watts,
        ttl_ticks: u64,
        max_nodes_per_job: usize,
    ) -> Self {
        let spec = model.spec();
        let ctx = PolicyCtx {
            system_budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };
        let hosts = host_eps.len();
        Self {
            ledger: PowerLedger::new(system_budget),
            pool: NodePool::new(hosts),
            active: VecDeque::new(),
            cap_ops: Vec::new(),
            host_eps,
            model,
            ctx,
            next_id: 1,
            tick: 0,
            ttl_ticks: ttl_ticks.max(1),
            max_nodes_per_job,
            classes: Vec::new(),
        }
    }

    /// Declare the fleet's node-class layout: `(name, host count)` pairs
    /// laid out as contiguous id segments in order. The counts must sum to
    /// the fleet size exactly.
    pub fn with_classes(mut self, layout: &[(String, usize)]) -> Self {
        if layout.is_empty() {
            self.classes.clear();
            return self;
        }
        let mut next = 0;
        self.classes = layout
            .iter()
            .map(|(name, count)| {
                let range = next..next + count;
                next = range.end;
                (name.clone(), range)
            })
            .collect();
        assert_eq!(
            next,
            self.host_eps.len(),
            "class layout must cover the fleet exactly"
        );
        self
    }

    /// The class table: `(name, id range)` per class, empty when the fleet
    /// is unclassed.
    pub fn classes(&self) -> &[(String, std::ops::Range<usize>)] {
        &self.classes
    }

    /// The ledger (observability and tests).
    pub fn ledger(&self) -> &PowerLedger {
        &self.ledger
    }

    /// Admitted jobs currently holding reservations.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Nodes currently free.
    pub fn free_nodes(&self) -> usize {
        self.pool.available()
    }

    /// Largest per-job node count accepted.
    pub fn max_nodes_per_job(&self) -> usize {
        self.max_nodes_per_job
    }

    /// Decide one request. On success the per-host caps are queued for the
    /// step loop; the reservation is held until its TTL expires.
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<Grant, Reject> {
        debug_assert!(req.nodes >= 1 && req.nodes <= self.max_nodes_per_job);
        // A class preference pins the lease to that class's id segment;
        // running that segment dry is the same NoNodes rung even when the
        // rest of the fleet still has room.
        let allocated = match req.class {
            Some(c) => {
                let range = &self.classes[c].1;
                let (lo, hi) = (NodeId(range.start), NodeId(range.end));
                self.pool
                    .allocate_in(req.nodes, lo, hi)
                    .ok_or_else(|| self.pool.available_in(lo, hi))
            }
            None => self
                .pool
                .allocate(req.nodes)
                .ok_or_else(|| self.pool.available()),
        };
        let nodes = match allocated {
            Ok(nodes) => nodes,
            Err(free) => {
                REJECTED_NODES.inc();
                self.publish_gauges();
                return Err(Reject::NoNodes { free });
            }
        };

        // Characterize the job on exactly the hosts it got (memoized by
        // kernel config + eps vector, and lowest-ids-first allocation makes
        // the same vectors recur under steady load).
        let eps: Vec<f64> = nodes.iter().map(|n| self.host_eps[n.0]).collect();
        let chars = JobChar::analytic(req.app.kernel_config(), &self.model, &eps);

        // The policy allocates within what is still unreserved.
        let ctx = PolicyCtx {
            system_budget: self.ledger.available(),
            ..self.ctx
        };
        let alloc = policies::by_kind(req.policy).allocate(&ctx, &[chars]);
        let targets: Vec<Watts> = alloc.jobs[0].iter().map(|&c| ctx.clamp(c)).collect();
        let want: Watts = targets.iter().copied().sum();
        let floor = ctx.min_node * req.nodes as f64;

        let id = JobId(self.next_id);
        let granted = match self.ledger.reserve_upto(id, want, floor) {
            Ok(granted) => granted,
            Err(err) => {
                self.pool.release(nodes);
                REJECTED_POWER.inc();
                self.publish_gauges();
                return Err(Reject::NoPower {
                    available: err.available,
                    floor,
                });
            }
        };
        self.next_id += 1;

        // A partial grant is not an unnoticed clamp: scale the caps to the
        // granted total before programming anything.
        let degraded = granted < want - Watts(1e-9);
        let caps = if degraded {
            pmstack_core::allocation::proportional_fit(
                &targets,
                granted,
                ctx.min_node,
                ctx.tdp_node,
            )
        } else {
            targets
        };
        for (node, &cap) in nodes.iter().zip(&caps) {
            self.cap_ops.push((node.0, cap));
        }
        self.active.push_back(ActiveJob {
            id,
            nodes: nodes.clone(),
            expires_tick: self.tick + self.ttl_ticks,
        });

        // The invariant the load tests hammer: admission can never push the
        // ledger past the system budget.
        assert!(
            self.ledger.reserved() <= self.ledger.system_budget() + Watts(1e-6),
            "ledger oversubscribed: {} reserved of {}",
            self.ledger.reserved(),
            self.ledger.system_budget()
        );

        ADMITTED.inc();
        if degraded {
            DEGRADED.inc();
        }
        self.publish_gauges();
        Ok(Grant {
            job: id,
            nodes,
            caps,
            granted,
            want,
            degraded,
            ttl_ticks: self.ttl_ticks,
        })
    }

    /// Advance one step-loop tick: expire TTL'd jobs (their hosts return to
    /// the pool at TDP) and drain the queued cap programs for the platform.
    pub fn tick(&mut self) -> Vec<(usize, Watts)> {
        self.tick += 1;
        while let Some(front) = self.active.front() {
            if front.expires_tick > self.tick {
                break;
            }
            let job = self.active.pop_front().expect("front exists");
            self.ledger.release(job.id);
            for node in &job.nodes {
                self.cap_ops.push((node.0, self.ctx.tdp_node));
            }
            self.pool.release(job.nodes);
            EXPIRED.inc();
        }
        self.publish_gauges();
        std::mem::take(&mut self.cap_ops)
    }

    fn publish_gauges(&self) {
        UTILIZATION.set(self.ledger.utilization());
        ACTIVE_JOBS.set(self.active.len() as f64);
        FREE_NODES.set(self.pool.available() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_simhw::quartz_spec;

    fn admission(hosts: usize, budget_per_host: f64) -> Admission {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let eps: Vec<f64> = (0..hosts)
            .map(|i| 0.92 + 0.012 * ((i * 31) % 16) as f64)
            .collect();
        Admission::new(model, eps, Watts(budget_per_host * hosts as f64), 5, hosts)
    }

    fn submit(app: AppClass, nodes: usize, policy: PolicyKind) -> SubmitRequest {
        SubmitRequest {
            app,
            nodes,
            policy,
            class: None,
        }
    }

    #[test]
    fn admits_within_budget_and_caps_align_with_nodes() {
        let mut adm = admission(16, 240.0);
        let grant = adm
            .submit(&submit(AppClass::Balanced, 4, PolicyKind::MixedAdaptive))
            .unwrap();
        assert_eq!(grant.nodes.len(), 4);
        assert_eq!(grant.caps.len(), 4);
        assert!(!grant.degraded);
        assert!(grant.granted > Watts::ZERO);
        let spec_min = adm.ctx.min_node;
        let spec_tdp = adm.ctx.tdp_node;
        for &c in &grant.caps {
            assert!(c >= spec_min - Watts(1e-6) && c <= spec_tdp + Watts(1e-6));
        }
        assert_eq!(adm.active_jobs(), 1);
        assert_eq!(adm.free_nodes(), 12);
    }

    #[test]
    fn node_exhaustion_is_a_distinct_rejection() {
        let mut adm = admission(4, 240.0);
        adm.submit(&submit(AppClass::Balanced, 3, PolicyKind::StaticCaps))
            .unwrap();
        let err = adm
            .submit(&submit(AppClass::Balanced, 2, PolicyKind::StaticCaps))
            .unwrap_err();
        assert_eq!(err, Reject::NoNodes { free: 1 });
        // The failed attempt must not leak nodes or watts.
        assert_eq!(adm.free_nodes(), 1);
        let reserved = adm.ledger().reserved();
        assert!(reserved > Watts::ZERO);
    }

    #[test]
    fn power_exhaustion_degrades_then_rejects() {
        // Two hosts, 70 W/host: the 140 W total sits above the ~136 W
        // floor but far below a compute job's want, so the first 1-node
        // job gets a degraded partial grant that drains the ledger and the
        // second cannot even reach the floor.
        let mut adm = admission(2, 70.0);
        let budget = adm.ledger().system_budget();
        let floor = adm.ctx.min_node;
        assert!(budget > floor && budget < adm.ctx.tdp_node);

        let grant = adm
            .submit(&submit(AppClass::Compute, 1, PolicyKind::Precharacterized))
            .unwrap();
        assert!(grant.degraded, "scarce budget must degrade the grant");
        assert!(grant.granted < grant.want);
        assert_eq!(grant.granted, budget);
        assert_eq!(grant.caps.len(), 1);
        assert!(adm.ledger().reserved() <= budget + Watts(1e-6));

        let err = adm
            .submit(&submit(AppClass::Compute, 1, PolicyKind::Precharacterized))
            .unwrap_err();
        match err {
            Reject::NoPower {
                available,
                floor: f,
            } => {
                assert_eq!(f, floor);
                assert!(available < f);
            }
            other => panic!("expected NoPower, got {other:?}"),
        }
        // The failed attempt leaks neither watts nor nodes.
        assert_eq!(adm.free_nodes(), 1);
        assert_eq!(adm.ledger().reserved(), budget);
    }

    #[test]
    fn ttl_expiry_returns_nodes_watts_and_programs_tdp() {
        let mut adm = admission(8, 240.0);
        let grant = adm
            .submit(&submit(AppClass::Wasteful, 8, PolicyKind::JobAdaptive))
            .unwrap();
        assert_eq!(adm.free_nodes(), 0);
        // First tick drains the admission cap ops.
        let ops = adm.tick();
        assert_eq!(ops.len(), 8);
        for (host, cap) in &ops {
            assert_eq!(*cap, grant.caps[*host]);
        }
        // Ticks 2..4 expire nothing; tick 5 (the 5-tick TTL) releases.
        for _ in 0..3 {
            assert!(adm.tick().is_empty());
        }
        let ops = adm.tick();
        assert_eq!(ops.len(), 8, "expiry restores TDP on every host");
        assert!(ops.iter().all(|(_, cap)| *cap == adm.ctx.tdp_node));
        assert_eq!(adm.free_nodes(), 8);
        assert_eq!(adm.ledger().reserved(), Watts::ZERO);
        assert_eq!(adm.active_jobs(), 0);
    }

    #[test]
    fn class_and_policy_parsing() {
        assert_eq!(AppClass::parse("Compute"), Some(AppClass::Compute));
        assert_eq!(AppClass::parse("nope"), None);
        for name in AppClass::NAMES {
            let class = AppClass::parse(name).unwrap();
            assert_eq!(class.name(), *name);
            class.kernel_config().validate().unwrap();
        }
        assert_eq!(
            parse_policy("mixedadaptive"),
            Some(PolicyKind::MixedAdaptive)
        );
        assert_eq!(parse_policy("mixed"), Some(PolicyKind::MixedAdaptive));
        assert_eq!(parse_policy("StaticCaps"), Some(PolicyKind::StaticCaps));
        assert_eq!(parse_policy("slurmish"), None);
    }

    #[test]
    fn class_preference_pins_the_lease_to_the_class_segment() {
        let mut adm = admission(12, 240.0)
            .with_classes(&[("quartz".to_string(), 8), ("stout".to_string(), 4)]);
        assert_eq!(adm.classes().len(), 2);
        assert_eq!(adm.classes()[1].1, 8..12);
        // Pinned to stout (ids 8..12) even though 0..8 is entirely free.
        let grant = adm
            .submit(&SubmitRequest {
                class: Some(1),
                ..submit(AppClass::Balanced, 3, PolicyKind::MixedAdaptive)
            })
            .unwrap();
        assert!(
            grant.nodes.iter().all(|n| (8..12).contains(&n.0)),
            "{:?}",
            grant.nodes
        );
        // Unconstrained requests still take lowest ids fleet-wide.
        let grant = adm
            .submit(&submit(AppClass::Balanced, 2, PolicyKind::StaticCaps))
            .unwrap();
        assert_eq!(grant.nodes.iter().map(|n| n.0).collect::<Vec<_>>(), [0, 1]);
    }

    #[test]
    fn class_segment_exhaustion_rejects_with_segment_local_free_count() {
        let mut adm = admission(12, 240.0)
            .with_classes(&[("quartz".to_string(), 8), ("stout".to_string(), 4)]);
        adm.submit(&SubmitRequest {
            class: Some(1),
            ..submit(AppClass::Balanced, 3, PolicyKind::StaticCaps)
        })
        .unwrap();
        let err = adm
            .submit(&SubmitRequest {
                class: Some(1),
                ..submit(AppClass::Balanced, 2, PolicyKind::StaticCaps)
            })
            .unwrap_err();
        // One stout node left; eight quartz nodes free do not count.
        assert_eq!(err, Reject::NoNodes { free: 1 });
        assert_eq!(adm.free_nodes(), 9);
        // The failed attempt leaks nothing from the segment either.
        let grant = adm
            .submit(&SubmitRequest {
                class: Some(1),
                ..submit(AppClass::Balanced, 1, PolicyKind::StaticCaps)
            })
            .unwrap();
        assert_eq!(grant.nodes.len(), 1);
        assert!((8..12).contains(&grant.nodes[0].0));
    }

    #[test]
    fn every_policy_produces_a_programmable_grant() {
        for kind in PolicyKind::all() {
            let mut adm = admission(8, 200.0);
            let grant = adm.submit(&submit(AppClass::Balanced, 4, kind)).unwrap();
            assert_eq!(grant.caps.len(), 4, "{kind}");
            assert!(
                grant.granted <= adm.ledger().system_budget() + Watts(1e-6),
                "{kind}"
            );
        }
    }
}
