//! A small JSON reader/writer for the admission API.
//!
//! The workspace's `serde` dependency is an offline shim (derive markers
//! only), so the daemon frames its own JSON: a recursive-descent parser for
//! request bodies and an escaper for response strings. Full value grammar,
//! UTF-8 input, `\uXXXX` escapes limited to the BMP — everything the wire
//! protocol and its tests need.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("surrogate \\u{hex} unsupported"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "string is not UTF-8".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    if (ch as u32) < 0x20 {
                        return Err("unescaped control character".into());
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > 32 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            None => Err("empty input".into()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected , or ] at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(format!("expected , or }} at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
        }
    }
}

/// Parse one JSON document; trailing garbage is an error.
pub fn parse(input: &[u8]) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input,
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(format!("trailing bytes after value at {}", p.pos));
    }
    Ok(v)
}

/// Escape a string for embedding in JSON output (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_submit_body_shape() {
        let v = parse(br#"{"app": "compute", "nodes": 8, "policy": "MixedAdaptive"}"#).unwrap();
        assert_eq!(v.get("app").and_then(Value::as_str), Some("compute"));
        assert_eq!(v.get("nodes").and_then(Value::as_f64), Some(8.0));
        assert_eq!(
            v.get("policy").and_then(Value::as_str),
            Some("MixedAdaptive")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(br#"{"a":[1,-2.5e1,true,null],"s":"x\"\\\nA"}"#).unwrap();
        let Value::Arr(items) = v.get("a").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items[0], Value::Num(1.0));
        assert_eq!(items[1], Value::Num(-25.0));
        assert_eq!(items[2], Value::Bool(true));
        assert_eq!(items[3], Value::Null);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\"\\\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"{\"a\":}",
            b"[1,]",
            b"{\"a\":1} trailing",
            b"nul",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"",
            b"{\"a\":\x01\"x\"}",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\none \"two\"\t\\three\u{8}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(doc.as_bytes()).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }
}
